//! # gfab — Galois Field circuit ABstraction
//!
//! Umbrella crate re-exporting the GFAB workspace: a reproduction of
//! *"Equivalence Verification of Large Galois Field Arithmetic Circuits
//! using Word-Level Abstraction via Gröbner Bases"* (Pruss, Kalla, Enescu —
//! DAC 2014).
//!
//! See the individual crates for details:
//!
//! * [`field`] — `F_{2^k}` arithmetic ([`gfab_field`])
//! * [`poly`] — multivariate polynomials and Gröbner bases ([`gfab_poly`])
//! * [`netlist`] — gate-level circuit IR ([`gfab_netlist`])
//! * [`circuits`] — Mastrovito/Montgomery generators ([`gfab_circuits`])
//! * [`core`] — the word-level abstraction engine ([`gfab_core`])
//! * [`sat`] — CDCL SAT baseline ([`gfab_sat`])
//!
//! # Quickstart
//!
//! ```
//! use gfab::field::{GfContext, Gf2Poly};
//! use gfab::circuits::mastrovito_multiplier;
//! use gfab::core::extract_word_polynomial;
//!
//! // Build F_16 and a 4-bit Mastrovito multiplier, then recover Z = A*B.
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let mult = mastrovito_multiplier(&ctx);
//! let result = extract_word_polynomial(&mult, &ctx).unwrap();
//! let f = result.canonical().expect("correct circuit yields Case 1");
//! assert_eq!(format!("{}", f.display()), "A*B");
//! ```

#![forbid(unsafe_code)]

pub use gfab_circuits as circuits;
pub use gfab_core as core;
pub use gfab_field as field;
pub use gfab_netlist as netlist;
pub use gfab_poly as poly;
pub use gfab_sat as sat;
