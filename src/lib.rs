//! # gfab — Galois Field circuit ABstraction
//!
//! Umbrella crate re-exporting the GFAB workspace: a reproduction of
//! *"Equivalence Verification of Large Galois Field Arithmetic Circuits
//! using Word-Level Abstraction via Gröbner Bases"* (Pruss, Kalla, Enescu —
//! DAC 2014).
//!
//! See the individual crates for details:
//!
//! * [`field`] — `F_{2^k}` arithmetic ([`gfab_field`])
//! * [`poly`] — multivariate polynomials and Gröbner bases ([`gfab_poly`])
//! * [`netlist`] — gate-level circuit IR ([`gfab_netlist`])
//! * [`circuits`] — Mastrovito/Montgomery generators ([`gfab_circuits`])
//! * [`core`] — the word-level abstraction engine ([`gfab_core`])
//! * [`sat`] — CDCL SAT baseline ([`gfab_sat`])
//! * [`telemetry`] — phase spans, counters, gauges, histograms,
//!   per-phase memory accounting, JSONL traces and trace diffing
//!   ([`gfab_telemetry`])
//! * [`bench`] — paper-table harness utilities and benchmark result
//!   diffing ([`gfab_bench`])
//! * [`fuzz`] — deterministic fuzzing, fault injection, the
//!   cross-engine differential oracle and counterexample shrinking
//!   ([`gfab_fuzz`])
//!
//! # Quickstart
//!
//! The [`Verifier`] session API is the front door: build it once over a
//! field context, then extract or equivalence-check flat netlists and
//! hierarchical designs alike.
//!
//! ```
//! use gfab::field::{GfContext, Gf2Poly};
//! use gfab::circuits::mastrovito_multiplier;
//! use gfab::Verifier;
//!
//! // Build F_16 and a 4-bit Mastrovito multiplier, then recover Z = A*B.
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let mult = mastrovito_multiplier(&ctx);
//! let report = Verifier::new(&ctx).extract(&mult).unwrap();
//! let f = report.function().expect("correct circuit yields Case 1");
//! assert_eq!(format!("{}", f.display()), "A*B");
//! ```

#![forbid(unsafe_code)]

pub use gfab_bench as bench;
pub use gfab_circuits as circuits;
pub use gfab_core as core;
pub use gfab_field as field;
pub use gfab_fuzz as fuzz;
pub use gfab_netlist as netlist;
pub use gfab_poly as poly;
pub use gfab_sat as sat;
pub use gfab_telemetry as telemetry;

pub mod cache;
pub mod engine;
pub mod manifest;
pub mod prelude;
pub mod verifier;
pub mod version;
pub use cache::{ArtifactCache, CacheStats, CachingExtract};
pub use engine::{
    BatchOp, BatchQuery, BatchReport, Engine, EngineConfig, OwnedCircuit, QueryOutcome,
};
pub use verifier::{Circuit, ExtractOutcome, ExtractReport, Verifier};

use gfab_core::equiv::EquivReport;
use gfab_core::hier::HierExtraction;
use gfab_core::{CoreError, ExtractOptions, ExtractionResult};
use gfab_field::GfContext;
use gfab_netlist::hierarchy::HierDesign;
use gfab_netlist::Netlist;
use std::sync::Arc;

/// Extracts the word-level polynomial of a flat netlist with default
/// options.
#[deprecated(note = "use `gfab::Verifier::new(ctx).extract(&netlist)` instead")]
pub fn extract_word_polynomial(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
) -> Result<ExtractionResult, CoreError> {
    gfab_core::extract_word_polynomial(nl, ctx)
}

/// Extracts the word-level polynomial of a flat netlist with explicit
/// options.
#[deprecated(note = "use `gfab::Verifier::new(ctx).options(..).extract(&netlist)` instead")]
pub fn extract_word_polynomial_with(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<ExtractionResult, CoreError> {
    gfab_core::extract_word_polynomial_with(nl, ctx, options)
}

/// Extracts a hierarchical design block-by-block and composes at word
/// level.
#[deprecated(note = "use `gfab::Verifier::new(ctx).extract(&design)` instead")]
pub fn extract_hierarchical(
    design: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<HierExtraction, CoreError> {
    gfab_core::hier::extract_hierarchical(design, ctx, options)
}

/// Checks equivalence of two flat netlists.
#[deprecated(note = "use `gfab::Verifier::new(ctx).check(&spec, &impl_)` instead")]
pub fn check_equivalence(
    spec: &Netlist,
    impl_: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<EquivReport, CoreError> {
    gfab_core::equiv::check_equivalence(spec, impl_, ctx, options)
}

/// Checks a flat spec against a hierarchical implementation.
#[deprecated(note = "use `gfab::Verifier::new(ctx).check(&spec, &design)` instead")]
pub fn check_equivalence_hier(
    spec: &Netlist,
    impl_: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<EquivReport, CoreError> {
    gfab_core::equiv::check_equivalence_hier(spec, impl_, ctx, options)
}
