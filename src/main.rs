//! The `gfab` command-line tool: word-level abstraction and equivalence
//! checking of Galois field circuits from netlist files.
//!
//! ```text
//! gfab extract  <circuit.nl>  --k <k> [--modulus e0,e1,...]
//! gfab equiv    <spec.nl> <impl.nl> --k <k> [--modulus ...]
//! gfab sat-equiv <spec.nl> <impl.nl> [--conflicts N]
//! gfab gen      <mastrovito|montgomery|squarer|adder> --k <k> [-o out.nl]
//! gfab info     <circuit.nl>
//! ```
//!
//! Netlists use the line-oriented text format of
//! [`gfab::netlist::format`]; `gfab gen` produces them.

mod alloc;
mod live;

use gfab::circuits::{gf_adder, mastrovito_multiplier, montgomery_multiplier_hier, squarer};
use gfab::core::equiv::Verdict;
use gfab::core::ideal_membership::{spec_ring, verify_against_spec};
use gfab::core::Extraction;
use gfab::field::nist::irreducible_polynomial;
use gfab::field::{Gf2Poly, GfContext};
use gfab::netlist::{format as nlformat, Netlist};
use gfab::sat::equiv::{check_equivalence_sat_with, SatVerdict};
use gfab::Verifier;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Route every allocation through the accounting hooks so `--mem-stats`
/// can attribute memory to phases; with tracking off (the default) each
/// hook is one relaxed atomic load.
#[global_allocator]
static ALLOC: alloc::TraceAlloc = alloc::TraceAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "extract" => cmd_extract(rest),
        "verify-spec" => cmd_verify_spec(rest),
        "equiv" => cmd_equiv(rest),
        "sat-equiv" => cmd_sat_equiv(rest),
        "batch" => cmd_batch(rest),
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "trace-check" => cmd_trace_check(rest),
        "trace-diff" => cmd_trace_diff(rest),
        "trace-agg" => cmd_trace_agg(rest),
        "flame" => cmd_flame(rest),
        "report" => cmd_report(rest),
        "watch" => live::cmd_watch(rest),
        "bench-diff" => cmd_bench_diff(rest),
        "fuzz" => cmd_fuzz(rest),
        "--version" | "-V" | "version" => {
            println!("{}", gfab::version::version_string());
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `gfab help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "gfab — word-level abstraction & equivalence checking over F_2^k

COMMANDS:
  extract      word-level extraction of one netlist
  verify-spec  ideal-membership check against a spec polynomial
  equiv        word-level equivalence of two netlists (with SAT fallback)
  sat-equiv    SAT-only miter equivalence check
  batch        run a manifest of queries over a shared-cache worker pool
  gen          emit a generator netlist
  info         print netlist facts
  trace-check  validate a JSONL trace or aggregation document
  trace-diff   align two traces by phase path and diff work units
  trace-agg    aggregate many traces into mergeable per-group summaries
  flame        export a trace as a flamegraph / critical-path analysis
  report       render a run-ledger dashboard
  watch        tail-follow a run ledger as a live verdict/latency board
  bench-diff   diff two benchmark --json result files
  fuzz         deterministic differential fuzzing campaign

USAGE:
  gfab extract   <circuit.nl> --k <k> [--modulus e0,e1,...] [--threads N]
                 [--timeout D] [--trace] [--stats] [--mem-stats]
                 [--trace-json FILE] [--ledger FILE]
                 [--progress] [--events FILE|-] [--events-cap N]
  gfab verify-spec <circuit.nl> --spec 'A*B' --k <k> [--modulus ...]
  gfab equiv     <spec.nl> <impl.nl> --k <k> [--modulus ...] [--threads N]
                 [--timeout D] [--trace] [--stats] [--mem-stats]
                 [--trace-json FILE] [--ledger FILE]
                 [--progress] [--events FILE|-] [--events-cap N]
  gfab sat-equiv <spec.nl> <impl.nl> [--conflicts N] [--timeout D]
  gfab batch     <manifest.json> [--threads N] [--timeout D] [--cache-cap N]
                 [--repeat N] [--stats] [--trace-json FILE] [--ledger FILE]
                 [--progress] [--events FILE|-] [--events-cap N]
  gfab gen       <mastrovito|montgomery|squarer|adder> --k <k> [-o out.nl]
  gfab info      <circuit.nl>
  gfab trace-check <trace.jsonl | agg.jsonl>
  gfab trace-diff  <baseline.jsonl> <current.jsonl> [--threshold PCT] [--wall]
  gfab trace-agg   <trace.jsonl>... [--group-by phase|k|arch] [--json FILE]
  gfab flame       <trace.jsonl> [--out folded|speedscope] [--critical-path]
  gfab report      <ledger.jsonl> [--md]
  gfab watch       <ledger.jsonl> [--interval D] [--iterations N]
  gfab bench-diff  <baseline.json> <current.json> [--threshold PCT]
  gfab fuzz      [--seed N] [--cases N] [--threads N] [--k-min K] [--k-max K]
                 [--fault-rate PCT] [--faults a,b,...] [--corpus DIR]
                 [--timeout D] [--sat-conflicts N] [--shrink-budget N]
                 [--stats] [--ledger FILE]
                 [--progress] [--events FILE|-] [--events-cap N]
  gfab fuzz      --replay <case.json>

The field F_2^k is constructed with the NIST polynomial when k is a NIST
ECC degree, a low-weight irreducible otherwise, or an explicit
--modulus given as a comma-separated exponent list (e.g. 163,7,6,3,0).

--threads N shards extraction and simulation over N worker threads
(0 or omitted = available parallelism, 1 = fully serial); results are
bit-identical regardless of N.

--timeout D sets a wall-clock deadline per query (e.g. 500ms, 5s, 2m;
a bare number means seconds). `equiv` degrades gracefully: when the
word-level pipeline runs out of time it falls back to the SAT miter
check with the remaining budget, so the verdict is always sound.

`batch` runs a whole manifest of queries over a work-stealing worker
pool, sharing an artifact cache (canonical-netlist → extraction) and a
field-context cache across all of them; duplicate circuits and
structurally identical sub-blocks extract once per batch. One JSONL
result line per query on stdout, plus one batch-summary line per pass
with cache hit/miss/eviction counters and work units; --repeat N runs
the batch N times in-process (pass 2+ is warm), --cache-cap bounds the
artifact cache in entries, --timeout is the shared budget of each whole
pass, split fairly across its queries. Results are bit-identical to
running the queries sequentially, at any --threads value. With batch,
--stats prints a human-readable summary of each pass to stderr.

--stats prints a per-phase table (span count, total and self time, %
of wall clock); --trace prints the full span tree with counters;
--mem-stats additionally attributes live-bytes peak and allocation
totals to each phase (implies --stats); --trace-json FILE writes the
span records as JSONL (one object per span; `gfab trace-check`
validates the schema).

trace-diff aligns two JSONL traces by phase path and reports per-phase
deltas. With --threshold PCT it exits 1 when any phase's *work units*
(deterministic effort counters, identical across thread counts and
machines) grew more than PCT percent over baseline; wall time and
memory are informational, never gated (--wall adds an informational
Δwall column). bench-diff does the same for two `--json` result files
from the paper-table benchmarks.

trace-agg streams any number of JSONL traces into per-group summaries
(span counts, work units, wall-time p50/p90/p99/max from mergeable
histograms), grouped by phase path (default), field width k, or
generator architecture. Aggregating shards separately and merging
yields byte-identical output to aggregating their concatenation.
--json FILE writes the summary as a strict v4 `agg` JSONL document
that `gfab trace-check` validates.

flame folds one trace into flamegraph input on stdout: --out folded
(default) emits Brendan-Gregg collapsed stacks weighted by self time;
--out speedscope emits a speedscope.app JSON profile, one timeline per
thread. --critical-path instead reports the longest chain of
non-overlapping spans — the serial dependency bound on the run; it is
always >= the longest single span and <= the wall clock, and the gap
to the wall clock is the available parallel slack.

--ledger FILE appends one JSONL row per query (build, command
fingerprint, k, verdict, exit code, work units, wall time, peak memory
under --mem-stats) to a persistent append-only run ledger; extract,
equiv, batch and fuzz all accept it, and the same file can accumulate
rows from all of them across runs. `gfab report LEDGER` renders the
accumulated history as a dashboard — verdict mix, per-k latency
percentiles, and the work-unit drift between the two most recent runs
of each repeated command line (--md for markdown). Writes are crash-
safe at line granularity; the reader tolerates one torn final line.
`gfab watch LEDGER` tail-follows the same file while other processes
append, re-rendering a rolling verdict/latency board on change; torn
lines from a concurrent writer are skipped and counted, never fatal
(--interval sets the poll cadence, --iterations bounds the loop).

--progress renders a live status line on stderr while the query runs
(phase, work units/s, budget remaining, per-worker queries). On a real
terminal it rewrites one line in place; when piped, or with NO_COLOR
set or TERM=dumb, it degrades to periodic plain-text lines and never
emits an ANSI escape. --events FILE (or `-` for stdout) streams every
live event as strict NDJSON (`gfab trace-check` validates it, even
mid-run before the footer lands). Events ride a bounded non-blocking
channel: under backpressure they are dropped and counted (the count
appears in the stream footer and on stderr), and the computation —
work units, verdicts, exit codes — is byte-identical with live output
on or off, at any --threads value. --events-cap N resizes the queue.

`fuzz` runs a deterministic seeded campaign: specimens drawn from a
weighted architecture pool over F_2^k (k-min..k-max), a typed fault
injected into --fault-rate percent of impl sides (kinds: gate-flip,
wire-swap, stuck-const, drop-term, wrong-modulus; restrict with
--faults), every specimen judged by a three-way differential oracle
(simulation ground truth vs word-level abstraction vs SAT miter).
Failing specimens are shrunk by delta debugging and written to
--corpus as replayable JSON; `gfab fuzz --replay case.json` re-runs
one. The same seed gives byte-identical summaries and corpora at any
--threads value; --timeout only skips whole trailing cases. The
campaign summary is one canonical JSON line on stdout; --stats adds
human-readable coverage tables on stderr.

EXIT CODES:
  0  equivalent / extraction or generation succeeded
     (fuzz: campaign clean — catches only, no cross-engine findings;
      replay: the recorded classification reproduced)
  1  not equivalent / property refuted (a counterexample was found)
     (fuzz: at least one cross-engine finding; replay: no longer
      reproduces)
  2  usage error or malformed input
  3  verdict unknown (resource budget exhausted before a decision)
     (fuzz: the campaign deadline skipped at least one case)"
    );
}

/// Parses `--timeout` (`500ms`, `5s`, `2m`, or a bare number of seconds).
fn parse_timeout(rest: &[String]) -> Result<Option<std::time::Duration>, String> {
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--timeout" {
            let v = it.next().ok_or("--timeout needs a value")?;
            return parse_duration(v).map(Some);
        }
    }
    Ok(None)
}

fn parse_duration(v: &str) -> Result<std::time::Duration, String> {
    let (digits, scale_ms) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1000)
    } else if let Some(n) = v.strip_suffix('m') {
        (n, 60_000)
    } else {
        (v, 1000)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad timeout `{v}` (use e.g. 500ms, 5s, 2m)"))?;
    Ok(std::time::Duration::from_millis(n * scale_ms))
}

/// Parses `--threads` (defaults to 0 = available parallelism).
fn parse_threads(rest: &[String]) -> Result<usize, String> {
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it.next().ok_or("--threads needs a value")?;
            return v.parse().map_err(|_| format!("bad thread count: {v}"));
        }
    }
    Ok(0)
}

/// Parses `--k` / `--modulus` into a field context.
fn parse_field(rest: &[String]) -> Result<Arc<GfContext>, String> {
    let mut k: Option<usize> = None;
    let mut modulus: Option<Gf2Poly> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                k = Some(v.parse().map_err(|_| format!("bad k: {v}"))?);
            }
            "--modulus" => {
                let v = it.next().ok_or("--modulus needs a value")?;
                let exps: Result<Vec<usize>, _> = v.split(',').map(|s| s.parse()).collect();
                let exps = exps.map_err(|_| format!("bad modulus exponent list: {v}"))?;
                modulus = Some(Gf2Poly::from_exponents(&exps));
            }
            _ => {}
        }
    }
    let p = match (modulus, k) {
        (Some(p), _) => p,
        (None, Some(k)) => {
            irreducible_polynomial(k).ok_or(format!("no irreducible polynomial for k={k}"))?
        }
        (None, None) => return Err("--k or --modulus is required".into()),
    };
    GfContext::shared(p).map_err(|e| e.to_string())
}

fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    nlformat::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn positional(rest: &[String], n: usize) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            // All our flags take one value except the boolean switches.
            skip_next = !matches!(
                a.as_str(),
                "--full"
                    | "--trace"
                    | "--stats"
                    | "--mem-stats"
                    | "--critical-path"
                    | "--md"
                    | "--wall"
                    | "--progress"
            );
            continue;
        }
        out.push(a);
        if out.len() == n {
            break;
        }
    }
    out
}

/// True when the boolean switch `name` is present.
fn has_flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

/// The value of a `--flag VALUE` option, if present.
fn flag_value<'a>(rest: &'a [String], name: &str) -> Result<Option<&'a String>, String> {
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().map(Some).ok_or(format!("{name} needs a value"));
        }
    }
    Ok(None)
}

/// Telemetry-output selection shared by `extract` and `equiv`.
struct TraceArgs<'a> {
    tree: bool,
    stats: bool,
    mem: bool,
    json: Option<&'a String>,
}

impl<'a> TraceArgs<'a> {
    fn parse(rest: &'a [String]) -> Result<Self, String> {
        let mem = has_flag(rest, "--mem-stats");
        Ok(TraceArgs {
            tree: has_flag(rest, "--trace"),
            // Memory accounting without an output sink would be invisible;
            // --mem-stats therefore implies the per-phase stats table.
            stats: has_flag(rest, "--stats") || mem,
            mem,
            json: flag_value(rest, "--trace-json")?,
        })
    }

    /// Whether the query needs a telemetry collector at all.
    fn enabled(&self) -> bool {
        self.tree || self.stats || self.json.is_some()
    }

    /// Renders/writes the requested views of a query's trace.
    fn emit(&self, trace: Option<&gfab::telemetry::Trace>) -> Result<(), String> {
        let Some(trace) = trace else {
            return Ok(());
        };
        if self.stats {
            println!("{}", trace.render_table());
        }
        if self.tree {
            println!("{}", trace.render_tree());
        }
        if let Some(path) = self.json {
            // Stamp the producing build into the header so a trace file can
            // always be matched back to the binary that wrote it.
            std::fs::write(
                path,
                trace.to_jsonl_tagged(&gfab::version::version_string()),
            )
            .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} spans to {path}", trace.spans().len());
        }
        Ok(())
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64)
}

/// One query's contribution to a ledger row; the invocation-level
/// fields (run id, fingerprint, producer) come from [`LedgerArgs`].
struct QueryRecord<'a> {
    query: &'a str,
    k: u64,
    verdict: &'a str,
    exit: u8,
    work_units: u64,
    wall: std::time::Duration,
    mem_peak_bytes: Option<u64>,
}

/// `--ledger PATH` handling shared by `extract`, `equiv`, `batch` and
/// `fuzz`: one run id and command fingerprint per process invocation,
/// one appended row per query.
struct LedgerArgs {
    cmd: &'static str,
    path: Option<std::path::PathBuf>,
    run: String,
    fp: String,
}

impl LedgerArgs {
    fn parse(cmd: &'static str, rest: &[String]) -> Result<Self, String> {
        Ok(LedgerArgs {
            cmd,
            path: flag_value(rest, "--ledger")?.map(std::path::PathBuf::from),
            run: format!("{}-{}", now_ms(), std::process::id()),
            fp: gfab::telemetry::fingerprint(cmd, rest),
        })
    }

    /// Whether rows will be appended (and hence whether the query needs
    /// a telemetry collector for work-unit accounting).
    fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Appends one row; a no-op without `--ledger`.
    fn append(&self, rec: &QueryRecord) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let row = gfab::telemetry::LedgerRow {
            ts_ms: now_ms(),
            run: self.run.clone(),
            producer: gfab::version::version_string(),
            cmd: self.cmd.to_string(),
            fp: self.fp.clone(),
            query: rec.query.to_string(),
            k: rec.k,
            verdict: rec.verdict.to_string(),
            exit: u64::from(rec.exit),
            work_units: rec.work_units,
            wall_us: rec.wall.as_micros().min(u128::from(u64::MAX)) as u64,
            mem_peak_bytes: rec.mem_peak_bytes,
        };
        row.append(path)
            .map_err(|e| format!("cannot append to ledger {}: {e}", path.display()))
    }
}

/// The file stem of a netlist path, for ledger query names.
fn stem(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
}

fn cmd_extract(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("extract needs a netlist path".into());
    };
    let ctx = parse_field(rest)?;
    let threads = parse_threads(rest)?;
    let timeout = parse_timeout(rest)?;
    let tracing = TraceArgs::parse(rest)?;
    let ledger = LedgerArgs::parse("extract", rest)?;
    let reporter = live::LiveArgs::parse(rest)?.start()?;
    let nl = load(path)?;
    let t = Instant::now();
    let mut v = Verifier::new(&ctx)
        .threads(threads)
        .trace(tracing.enabled() || ledger.enabled())
        .events(reporter.bus())
        .mem_stats(tracing.mem);
    if let Some(w) = timeout {
        v = v.deadline(w);
    }
    // A budget trip in a phase with no partial result (e.g. model
    // construction) is still a TIMED OUT verdict, not a usage error.
    let report = match v.extract(&nl) {
        Ok(r) => r,
        Err(gfab::core::CoreError::BudgetExhausted {
            phase,
            block,
            reason,
        }) => {
            reporter.finish()?;
            match block {
                Some(b) => println!("TIMED OUT during {phase} (block {b}): {reason}"),
                None => println!("TIMED OUT during {phase}: {reason}"),
            }
            ledger.append(&QueryRecord {
                query: stem(path),
                k: ctx.k() as u64,
                verdict: "timeout",
                exit: 3,
                work_units: 0,
                wall: t.elapsed(),
                mem_peak_bytes: None,
            })?;
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(e.to_string()),
    };
    let elapsed = t.elapsed();
    reporter.finish()?;
    let result = report.as_flat().expect("flat netlist gives flat report");
    println!("circuit : {} ({} gates)", nl.name(), nl.num_gates());
    println!("field   : F_2^{}, P(x) = {}", ctx.k(), ctx.modulus());
    let (exit, verdict) = match &result.outcome {
        Extraction::Canonical(f) => {
            println!("function: Z = {}", f.display());
            (0u8, "extracted")
        }
        Extraction::Residual { remainder, note } => {
            println!("residual: {} terms ({note})", remainder.num_terms());
            (0, "residual")
        }
        Extraction::TimedOut { phase, reason } => {
            println!("TIMED OUT during {phase}: {reason}");
            (3, "timeout")
        }
    };
    println!(
        "effort  : {} reduction steps ({} cancellations), peak {} terms, {elapsed:?}",
        result.stats.reduction_steps, result.stats.cancellations, result.stats.peak_terms
    );
    println!(
        "phases  : model {:?}, reduce {:?}, case2 {:?}",
        result.stats.model_time, result.stats.reduce_time, result.stats.case2_time
    );
    tracing.emit(report.trace.as_ref())?;
    ledger.append(&QueryRecord {
        query: stem(path),
        k: ctx.k() as u64,
        verdict,
        exit,
        work_units: report.trace.as_ref().map_or(0, |t| t.work_units()),
        wall: elapsed,
        mem_peak_bytes: report
            .trace
            .as_ref()
            .and_then(|t| t.gauge_total(gfab::telemetry::Gauge::MemPeakBytes)),
    })?;
    Ok(ExitCode::from(exit))
}

/// Verifies a circuit against a textual specification polynomial via the
/// ideal membership test of Lv-Kalla-Enescu (reference [5] of the paper).
fn cmd_verify_spec(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("verify-spec needs a netlist path".into());
    };
    let mut spec_text: Option<&String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--spec" {
            spec_text = Some(it.next().ok_or("--spec needs an expression")?);
        }
    }
    let spec_text = spec_text.ok_or("--spec \"<expr>\" is required (e.g. --spec \"A*B\")")?;
    let ctx = parse_field(rest)?;
    let nl = load(path)?;
    let sr = spec_ring(&nl, &ctx);
    let f = gfab::poly::parse_poly(spec_text, &sr.ring).map_err(|e| e.to_string())?;
    if f.contains_var(sr.z) {
        return Err("the spec expression must not mention the output word".into());
    }
    let t = Instant::now();
    let out = verify_against_spec(&nl, &ctx, &sr, &f).map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();
    if out.verified {
        println!(
            "VERIFIED: {} implements Z = {spec_text} ({elapsed:?})",
            nl.name()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        let rem = out.remainder.expect("non-verified has remainder");
        println!(
            "REFUTED: Z + ({spec_text}) does not vanish; residual has {} terms ({elapsed:?})",
            rem.num_terms()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_equiv(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 2);
    let [spec_path, impl_path] = pos.as_slice() else {
        return Err("equiv needs two netlist paths".into());
    };
    let ctx = parse_field(rest)?;
    let threads = parse_threads(rest)?;
    let timeout = parse_timeout(rest)?;
    let tracing = TraceArgs::parse(rest)?;
    let ledger = LedgerArgs::parse("equiv", rest)?;
    let reporter = live::LiveArgs::parse(rest)?.start()?;
    let spec = load(spec_path)?;
    let impl_ = load(impl_path)?;
    let t = Instant::now();
    let mut v = Verifier::new(&ctx)
        .threads(threads)
        .trace(tracing.enabled() || ledger.enabled())
        .events(reporter.bus())
        .mem_stats(tracing.mem);
    if let Some(w) = timeout {
        v = v.deadline(w);
    }
    let report = v.check(&spec, &impl_).map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();
    reporter.finish()?;
    // When the SAT fallback rung ran, surface its full search effort —
    // the word-level stats alone say nothing about where the time went.
    if let Some(s) = &report.sat {
        println!(
            "sat     : {} vars, {} clauses; {} conflicts, {} decisions, \
             {} propagations, {} restarts",
            s.cnf_vars, s.cnf_clauses, s.conflicts, s.decisions, s.propagations, s.restarts
        );
    }
    tracing.emit(report.trace.as_ref())?;
    let (exit, verdict) = match &report.verdict {
        Verdict::Equivalent { function } => {
            println!(
                "EQUIVALENT: both circuits implement Z = {}",
                function.display()
            );
            println!("({elapsed:?})");
            (0u8, "equivalent")
        }
        Verdict::Inequivalent {
            spec,
            impl_,
            counterexample,
        } => {
            println!("INEQUIVALENT");
            println!("  spec: Z = {}", spec.display());
            println!("  impl: Z = {}", impl_.display());
            if let Some(cex) = counterexample {
                let pretty: Vec<String> = cex.iter().map(|g| g.to_string()).collect();
                println!("  counterexample: ({})", pretty.join(", "));
            }
            println!("({elapsed:?})");
            (1, "inequivalent")
        }
        Verdict::InequivalentBySimulation { counterexample } => {
            println!("INEQUIVALENT (simulation witness)");
            let pretty: Vec<String> = counterexample.iter().map(|g| g.to_string()).collect();
            println!("  counterexample: ({})", pretty.join(", "));
            println!("({elapsed:?})");
            (1, "inequivalent")
        }
        Verdict::EquivalentBySat { conflicts } => {
            println!("EQUIVALENT (SAT fallback: miter UNSAT after {conflicts} conflicts)");
            println!("({elapsed:?})");
            (0, "equivalent")
        }
        Verdict::InequivalentBySat {
            counterexample,
            conflicts,
        } => {
            println!("INEQUIVALENT (SAT fallback witness, {conflicts} conflicts)");
            let pretty: Vec<String> = counterexample.iter().map(|g| g.to_string()).collect();
            println!("  counterexample: ({})", pretty.join(", "));
            println!("({elapsed:?})");
            (1, "inequivalent")
        }
        Verdict::Unknown { reason } => {
            println!("UNKNOWN: {reason}");
            println!("({elapsed:?})");
            (3, "unknown")
        }
    };
    ledger.append(&QueryRecord {
        query: &format!("{}~{}", stem(spec_path), stem(impl_path)),
        k: ctx.k() as u64,
        verdict,
        exit,
        work_units: report.trace.as_ref().map_or(0, |t| t.work_units()),
        wall: elapsed,
        mem_peak_bytes: report
            .trace
            .as_ref()
            .and_then(|t| t.gauge_total(gfab::telemetry::Gauge::MemPeakBytes)),
    })?;
    Ok(ExitCode::from(exit))
}

fn cmd_sat_equiv(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 2);
    let [spec_path, impl_path] = pos.as_slice() else {
        return Err("sat-equiv needs two netlist paths".into());
    };
    let mut budget = 1_000_000u64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--conflicts" {
            let v = it.next().ok_or("--conflicts needs a value")?;
            budget = v.parse().map_err(|_| format!("bad conflict budget: {v}"))?;
        }
    }
    let timeout = parse_timeout(rest)?;
    let spec = load(spec_path)?;
    let impl_ = load(impl_path)?;
    let t = Instant::now();
    let report = check_equivalence_sat_with(&spec, &impl_, budget, timeout);
    let elapsed = t.elapsed();
    println!(
        "miter: {} vars, {} clauses; {} conflicts, {} decisions",
        report.cnf_vars, report.cnf_clauses, report.stats.conflicts, report.stats.decisions
    );
    match report.verdict {
        SatVerdict::Equivalent => {
            println!("EQUIVALENT (miter UNSAT, {elapsed:?})");
            Ok(ExitCode::SUCCESS)
        }
        SatVerdict::Counterexample(bits) => {
            println!("INEQUIVALENT; distinguishing input bits: {bits:?} ({elapsed:?})");
            Ok(ExitCode::FAILURE)
        }
        SatVerdict::Unknown(interrupt) => {
            println!("UNKNOWN: {interrupt} ({elapsed:?})");
            Ok(ExitCode::from(3))
        }
    }
}

/// Runs a manifest of queries through the batch [`Engine`], emitting one
/// JSONL result line per query plus a per-pass `batch-summary` line.
/// Overall exit: any usage/internal failure → 2, else any unknown → 3,
/// else any refutation → 1, else 0.
fn cmd_batch(rest: &[String]) -> Result<ExitCode, String> {
    use gfab::engine::EngineConfig;
    use gfab::telemetry::json::write_json_string;

    let pos = positional(rest, 1);
    let [manifest_path] = pos.as_slice() else {
        return Err("batch needs a manifest path".into());
    };
    let queries = gfab::manifest::load_manifest(manifest_path)?;
    let repeat: usize = match flag_value(rest, "--repeat")? {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("bad repeat count: {v}"))?,
        None => 1,
    };
    let cache_cap: usize = match flag_value(rest, "--cache-cap")? {
        Some(v) => v.parse().map_err(|_| format!("bad cache capacity: {v}"))?,
        None => EngineConfig::default().cache_capacity,
    };
    let stats = has_flag(rest, "--stats");
    let trace_json = flag_value(rest, "--trace-json")?;
    let ledger = LedgerArgs::parse("batch", rest)?;
    let reporter = live::LiveArgs::parse(rest)?.start()?;
    let engine = gfab::Engine::new(EngineConfig {
        threads: parse_threads(rest)?,
        cache_capacity: cache_cap,
        deadline: parse_timeout(rest)?,
        trace: trace_json.is_some() || ledger.enabled(),
        events: reporter.bus().clone(),
        ..EngineConfig::default()
    });
    let k_of: std::collections::BTreeMap<&str, u64> = queries
        .iter()
        .map(|q| (q.name.as_str(), q.modulus.degree().unwrap_or(0) as u64))
        .collect();

    let mut seen = [false; 4]; // seen[e] = some query exited with e
                               // Per-query traces are merged into one batch-wide trace for
                               // --trace-json: each query's spans are shifted by its pass offset
                               // plus its queue latency, so the merged timeline approximates the
                               // real concurrent schedule (what `gfab flame` visualizes).
    let mut merged_parts: Vec<(gfab::telemetry::Trace, std::time::Duration)> = Vec::new();
    let mut pass_offset = std::time::Duration::ZERO;
    for pass in 0..repeat {
        let report = engine.run_batch(&queries);
        for r in &report.results {
            let (exit, fields) = render_query_result(&r.outcome);
            seen[exit as usize] = true;
            let mut line = String::from("{\"query\":");
            write_json_string(&mut line, &r.name);
            line.push_str(&format!(
                ",{fields},\"exit\":{exit},\"queue_us\":{},\"wall_us\":{}}}",
                r.queue_us,
                r.duration.as_micros()
            ));
            println!("{line}");
            if trace_json.is_some() {
                if let Some(tr) = outcome_trace(&r.outcome) {
                    merged_parts.push((
                        tr.clone(),
                        pass_offset + std::time::Duration::from_micros(r.queue_us),
                    ));
                }
            }
            ledger.append(&QueryRecord {
                query: &r.name,
                k: k_of.get(r.name.as_str()).copied().unwrap_or(0),
                verdict: r.outcome.verdict_word(),
                exit,
                work_units: outcome_trace(&r.outcome).map_or(0, |t| t.work_units()),
                wall: r.duration,
                mem_peak_bytes: None,
            })?;
        }
        pass_offset += report.wall;
        let c = &report.cache;
        println!(
            "{{\"batch-summary\":{{\"pass\":{pass},\"queries\":{},\"work_units\":{},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},\
             \"context\":{{\"hits\":{},\"misses\":{}}},\
             \"queue_latency_us\":{{\"count\":{},\"mean\":{},\"max\":{}}},\"wall_us\":{}}}}}",
            report.results.len(),
            report.work_units,
            c.hits,
            c.misses,
            c.evictions,
            c.entries,
            report.context_hits,
            report.context_misses,
            report.queue_latency.count,
            report.queue_latency.mean() as u64,
            report.queue_latency.max,
            report.wall.as_micros()
        );
        if stats {
            eprintln!(
                "pass {pass}: {} queries in {:?}; {} work units; artifact cache \
                 {} hits / {} misses / {} evictions ({} resident); context cache \
                 {} hits / {} misses",
                report.results.len(),
                report.wall,
                report.work_units,
                c.hits,
                c.misses,
                c.evictions,
                c.entries,
                report.context_hits,
                report.context_misses
            );
        }
    }
    reporter.finish()?;
    if let Some(path) = trace_json {
        let merged =
            gfab::telemetry::Trace::merged(merged_parts.iter().map(|(t, shift)| (t, *shift)));
        std::fs::write(
            path,
            merged.to_jsonl_tagged(&gfab::version::version_string()),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} spans to {path}", merged.spans().len());
    }
    // 2 (error) dominates, then 3 (unknown), then 1 (refuted).
    let overall = if seen[2] {
        2
    } else if seen[3] {
        3
    } else if seen[1] {
        1
    } else {
        0
    };
    Ok(ExitCode::from(overall))
}

/// The telemetry trace captured for one batch query, when the engine
/// ran with tracing enabled.
fn outcome_trace(outcome: &gfab::engine::QueryOutcome) -> Option<&gfab::telemetry::Trace> {
    use gfab::engine::QueryOutcome;
    match outcome {
        QueryOutcome::Extracted(report) => report.trace(),
        QueryOutcome::Checked(report) => report.trace(),
        QueryOutcome::TimedOut(_) | QueryOutcome::Failed(_) => None,
    }
}

/// One query outcome → (exit severity, the JSON fields after `"query"`).
fn render_query_result(outcome: &gfab::engine::QueryOutcome) -> (u8, String) {
    use gfab::engine::QueryOutcome;
    use gfab::telemetry::json::write_json_string;
    let mut s = String::new();
    match outcome {
        QueryOutcome::Failed(msg) => {
            s.push_str("\"op\":\"failed\",\"error\":");
            write_json_string(&mut s, msg);
            (2, s)
        }
        QueryOutcome::TimedOut(reason) => {
            s.push_str("\"op\":\"timeout\",\"reason\":");
            write_json_string(&mut s, reason);
            (3, s)
        }
        QueryOutcome::Extracted(report) => {
            s.push_str("\"op\":\"extract\",");
            let exit = match report.as_flat().map(|r| &r.outcome) {
                None | Some(Extraction::Canonical(_)) => {
                    let f = report.function().expect("canonical outcome has a function");
                    s.push_str("\"outcome\":\"canonical\",\"function\":");
                    write_json_string(&mut s, &format!("{}", f.display()));
                    0
                }
                Some(Extraction::Residual { remainder, note }) => {
                    s.push_str(&format!(
                        "\"outcome\":\"residual\",\"terms\":{},\"note\":",
                        remainder.num_terms()
                    ));
                    write_json_string(&mut s, note);
                    0
                }
                Some(Extraction::TimedOut { phase, reason }) => {
                    s.push_str("\"outcome\":\"timeout\",\"reason\":");
                    write_json_string(&mut s, &format!("{phase}: {reason}"));
                    3
                }
            };
            (exit, s)
        }
        QueryOutcome::Checked(report) => {
            s.push_str("\"op\":\"equiv\",");
            let (verdict, method, exit) = match report.verdict() {
                Verdict::Equivalent { .. } => ("equivalent", "word", 0),
                Verdict::Inequivalent { .. } => ("inequivalent", "word", 1),
                Verdict::InequivalentBySimulation { .. } => ("inequivalent", "simulation", 1),
                Verdict::EquivalentBySat { .. } => ("equivalent", "sat", 0),
                Verdict::InequivalentBySat { .. } => ("inequivalent", "sat", 1),
                Verdict::Unknown { .. } => ("unknown", "none", 3),
            };
            s.push_str(&format!(
                "\"verdict\":\"{verdict}\",\"method\":\"{method}\""
            ));
            if let Verdict::Unknown { reason } = report.verdict() {
                s.push_str(",\"reason\":");
                write_json_string(&mut s, reason);
            }
            if let Some(cex) = report.verdict().counterexample() {
                let pretty: Vec<String> = cex.iter().map(|g| g.to_string()).collect();
                s.push_str(",\"counterexample\":");
                write_json_string(&mut s, &pretty.join(", "));
            }
            (exit, s)
        }
    }
}

fn cmd_gen(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [arch] = pos.as_slice() else {
        return Err("gen needs an architecture name".into());
    };
    let ctx = parse_field(rest)?;
    let nl = match arch.as_str() {
        "mastrovito" => mastrovito_multiplier(&ctx),
        "montgomery" => montgomery_multiplier_hier(&ctx).flatten(),
        "squarer" => squarer(&ctx),
        "adder" => gf_adder(&ctx),
        other => return Err(format!("unknown architecture `{other}`")),
    };
    let text = nlformat::emit(&nl);
    let mut out_path: Option<&String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "-o" {
            out_path = Some(it.next().ok_or("-o needs a path")?);
        }
    }
    match out_path {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} ({} gates) to {path}", nl.name(), nl.num_gates());
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_info(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("info needs a netlist path".into());
    };
    let nl = load(path)?;
    println!("name   : {}", nl.name());
    println!("gates  : {}", nl.num_gates());
    println!("nets   : {}", nl.num_nets());
    for w in nl.input_words() {
        println!("input  : {} [{} bits]", w.name, w.width());
    }
    let z = nl.output_word();
    println!("output : {} [{} bits]", z.name, z.width());
    if let Some(depth) = gfab::netlist::topo::logic_depth(&nl) {
        println!("depth  : {depth} gate levels");
    }
    Ok(ExitCode::SUCCESS)
}

/// Validates a `--trace-json` file against the JSONL trace schema (every
/// line must parse, carry exactly the documented fields, and the span ids
/// must form a well-parented tree), a `trace-agg --json` aggregation
/// document against the agg schema, or an `--events` live stream against
/// the event schema — the header line's `"type"` field decides which.
/// Exit 0 on a valid file, 2 otherwise.
fn cmd_trace_check(rest: &[String]) -> Result<ExitCode, String> {
    use gfab::telemetry::json::{parse_object, Json};
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("trace-check needs a trace file path".into());
    };
    let text =
        std::fs::read_to_string(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc_type = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| parse_object(l).ok())
        .and_then(|o| match o.get("type") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        });
    if doc_type.as_deref() == Some("agg") {
        let agg = gfab::telemetry::TraceAgg::from_jsonl(&text).map_err(|e| e.to_string())?;
        println!(
            "valid agg: {} group(s) by {}, {} span(s), {} work unit(s)",
            agg.groups.len(),
            agg.group_by().slug(),
            agg.total_spans(),
            agg.work_units()
        );
        return Ok(ExitCode::SUCCESS);
    }
    if doc_type.as_deref() == Some("events") {
        let ev = gfab::telemetry::EventStream::from_jsonl(&text).map_err(|e| e.to_string())?;
        let kinds: Vec<String> = ev
            .kind_counts()
            .iter()
            .map(|(k, n)| format!("{k}={n}"))
            .collect();
        println!(
            "valid events: {} event(s) ({}), {} dropped, {}",
            ev.events.len(),
            kinds.join(" "),
            ev.dropped.unwrap_or(0),
            if ev.complete { "complete" } else { "in-flight" }
        );
        return Ok(ExitCode::SUCCESS);
    }
    let trace = gfab::telemetry::Trace::from_jsonl(&text).map_err(|e| e.to_string())?;
    println!(
        "valid trace: {} spans, {} roots, wall {:?}",
        trace.spans().len(),
        trace.roots().count(),
        trace.wall()
    );
    Ok(ExitCode::SUCCESS)
}

/// Parses a `--threshold` percentage (`5`, `5%`, `2.5`).
fn parse_threshold(rest: &[String]) -> Result<Option<f64>, String> {
    let Some(v) = flag_value(rest, "--threshold")? else {
        return Ok(None);
    };
    let pct: f64 = v
        .trim_end_matches('%')
        .parse()
        .map_err(|_| format!("bad threshold `{v}` (use e.g. 5 or 2.5%)"))?;
    if pct < 0.0 {
        return Err(format!("threshold must be non-negative, got {v}"));
    }
    Ok(Some(pct))
}

fn load_trace(path: &str) -> Result<gfab::telemetry::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    gfab::telemetry::Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Aligns two JSONL traces by phase path and reports per-phase deltas.
/// With `--threshold PCT`, exits 1 when any phase's deterministic work
/// units grew more than PCT percent over the baseline.
fn cmd_trace_diff(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 2);
    let [a_path, b_path] = pos.as_slice() else {
        return Err("trace-diff needs two trace files: <baseline.jsonl> <current.jsonl>".into());
    };
    let threshold = parse_threshold(rest)?;
    let a = load_trace(a_path)?;
    let b = load_trace(b_path)?;
    let diff = gfab::telemetry::TraceDiff::compute(&a, &b);
    print!("{}", diff.render_opts(has_flag(rest, "--wall")));
    let Some(pct) = threshold else {
        return Ok(ExitCode::SUCCESS);
    };
    let regs = diff.regressions(pct);
    if regs.is_empty() {
        println!("OK: no phase exceeds the +{pct}% work-unit threshold");
        Ok(ExitCode::SUCCESS)
    } else {
        for r in &regs {
            println!("REGRESSION {r}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Aggregates any number of JSONL traces into per-group summaries with
/// mergeable wall-time histograms; see the usage text for the grouping
/// modes and the shards-vs-whole identity.
fn cmd_trace_agg(rest: &[String]) -> Result<ExitCode, String> {
    use gfab::telemetry::{GroupBy, TraceAgg};
    let paths = positional(rest, usize::MAX);
    if paths.is_empty() {
        return Err("trace-agg needs at least one trace file".into());
    }
    let group_by = match flag_value(rest, "--group-by")? {
        None => GroupBy::Phase,
        Some(v) => GroupBy::from_slug(v)
            .ok_or_else(|| format!("bad --group-by `{v}` (use phase, k or arch)"))?,
    };
    let mut agg = TraceAgg::new(group_by);
    for path in &paths {
        agg.add_trace(&load_trace(path)?);
    }
    print!("{}", agg.render());
    if let Some(out) = flag_value(rest, "--json")? {
        std::fs::write(out, agg.to_jsonl_tagged(&gfab::version::version_string()))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {} group(s) to {out}", agg.groups.len());
    }
    Ok(ExitCode::SUCCESS)
}

/// Exports one JSONL trace as flamegraph input (folded stacks or a
/// speedscope profile) on stdout, or reports the critical path.
fn cmd_flame(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("flame needs a trace file path".into());
    };
    let trace = load_trace(path)?;
    if has_flag(rest, "--critical-path") {
        let cp = gfab::telemetry::critical_path(&trace);
        print!(
            "{}",
            gfab::telemetry::flame::render_critical_path(&trace, &cp)
        );
        return Ok(ExitCode::SUCCESS);
    }
    match flag_value(rest, "--out")?.map(String::as_str) {
        None | Some("folded") => print!("{}", gfab::telemetry::folded(&trace)),
        Some("speedscope") => println!("{}", gfab::telemetry::speedscope(&trace, path)),
        Some(other) => return Err(format!("bad --out `{other}` (use folded or speedscope)")),
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders a run-ledger dashboard; see the usage text for the sections.
fn cmd_report(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("report needs a ledger file path".into());
    };
    let text =
        std::fs::read_to_string(path.as_str()).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Lenient parse: a report over a ledger another process is still
    // appending to should skip its torn lines, not die on them.
    let (ledger, skipped) = gfab::telemetry::Ledger::parse_lenient(&text);
    if skipped > 0 {
        eprintln!("warning: {path}: skipped {skipped} torn/unparsable line(s)");
    }
    print!("{}", ledger.render_report(has_flag(rest, "--md")));
    Ok(ExitCode::SUCCESS)
}

/// Aligns two benchmark `--json` result files by row identity and reports
/// per-field deltas; gating mirrors `trace-diff` (deterministic fields
/// only — wall time and memory never fail the gate).
fn cmd_bench_diff(rest: &[String]) -> Result<ExitCode, String> {
    let pos = positional(rest, 2);
    let [a_path, b_path] = pos.as_slice() else {
        return Err("bench-diff needs two result files: <baseline.json> <current.json>".into());
    };
    let threshold = parse_threshold(rest)?;
    let read_rows = |path: &str| -> Result<Vec<gfab::bench::diff::Row>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        gfab::bench::diff::parse_rows(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = read_rows(a_path)?;
    let b = read_rows(b_path)?;
    let diff = gfab::bench::diff::BenchDiff::compute(a, b);
    print!("{}", diff.render());
    let Some(pct) = threshold else {
        return Ok(ExitCode::SUCCESS);
    };
    let regs = diff.regressions(pct);
    if regs.is_empty() {
        println!("OK: no deterministic field exceeds the +{pct}% threshold");
        Ok(ExitCode::SUCCESS)
    } else {
        for r in &regs {
            println!("REGRESSION {r}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Parses the fuzz flags shared by campaigns and replays.
fn parse_fuzz_config(rest: &[String]) -> Result<gfab::fuzz::FuzzConfig, String> {
    use gfab::fuzz::FaultKind;
    let mut cfg = gfab::fuzz::FuzzConfig {
        producer: gfab::version::version_string(),
        threads: parse_threads(rest)?,
        deadline: parse_timeout(rest)?,
        ..gfab::fuzz::FuzzConfig::default()
    };
    let num = |name: &str, default: u64| -> Result<u64, String> {
        match flag_value(rest, name)? {
            Some(v) => v.parse().map_err(|_| format!("bad {name} value: {v}")),
            None => Ok(default),
        }
    };
    cfg.seed = num("--seed", cfg.seed)?;
    cfg.cases = num("--cases", cfg.cases as u64)? as usize;
    cfg.k_min = num("--k-min", cfg.k_min as u64)? as usize;
    cfg.k_max = num("--k-max", cfg.k_max as u64)? as usize;
    let rate = num("--fault-rate", u64::from(cfg.fault_rate_pct))?;
    if rate > 100 {
        return Err(format!("--fault-rate must be 0..=100, got {rate}"));
    }
    cfg.fault_rate_pct = rate as u32;
    cfg.sat_conflicts = num("--sat-conflicts", cfg.sat_conflicts)?;
    cfg.shrink_budget = num("--shrink-budget", cfg.shrink_budget)?;
    if let Some(v) = flag_value(rest, "--word-work-cap")? {
        let cap: u64 = v
            .parse()
            .map_err(|_| format!("bad --word-work-cap value: {v}"))?;
        cfg.word_work_cap = if cap == 0 { None } else { Some(cap) };
    }
    if let Some(list) = flag_value(rest, "--faults")? {
        let mut kinds = Vec::new();
        for name in list.split(',') {
            let kind = FaultKind::from_name(name.trim())
                .ok_or_else(|| format!("unknown fault kind `{name}` (see `gfab help`)"))?;
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        cfg.fault_kinds = kinds;
    }
    if cfg.k_min < 2 || cfg.k_max < cfg.k_min || cfg.k_max > 62 {
        return Err(format!(
            "bad degree range {}..={} (need 2 <= k-min <= k-max <= 62)",
            cfg.k_min, cfg.k_max
        ));
    }
    Ok(cfg)
}

fn cmd_fuzz(rest: &[String]) -> Result<ExitCode, String> {
    use gfab::fuzz::{replay_case, run_campaign, write_corpus, CorpusCase, ReplayVerdict};
    use gfab::telemetry::{Collector, Telemetry};

    let mut cfg = parse_fuzz_config(rest)?;

    // Replay mode: re-run one persisted corpus case under the oracle.
    if let Some(path) = flag_value(rest, "--replay")? {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let case = CorpusCase::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "replaying {} (seed {} case {}, {} over k={}, fault {})",
            path,
            case.campaign_seed,
            case.case_index,
            case.arch,
            case.k,
            case.fault_kind.as_deref().unwrap_or("none"),
        );
        return match replay_case(&case, &cfg)? {
            ReplayVerdict::Reproduced => {
                println!("REPRODUCED: {} still {}", path, case.classification);
                Ok(ExitCode::SUCCESS)
            }
            ReplayVerdict::NotReproduced(why) => {
                println!("NOT REPRODUCED: {why}");
                Ok(ExitCode::FAILURE)
            }
        };
    }

    let tracing = TraceArgs::parse(rest)?;
    let ledger = LedgerArgs::parse("fuzz", rest)?;
    let reporter = live::LiveArgs::parse(rest)?.start()?;
    let collector = Collector::new();
    if tracing.json.is_some() || tracing.tree {
        cfg.telemetry = Telemetry::attached(&collector);
    }
    cfg.telemetry = cfg.telemetry.with_events(reporter.bus());
    let report = run_campaign(&cfg);
    reporter.finish()?;

    // The canonical summary line is the *only* stdout output: scripts
    // diff it byte-for-byte across thread counts.
    println!("{}", report.summary.canonical_json(&cfg.producer));

    if let Some(dir) = flag_value(rest, "--corpus")? {
        let names = write_corpus(std::path::Path::new(dir), &report)?;
        eprintln!("wrote {} corpus case(s) to {dir}", names.len());
    }
    if tracing.json.is_some() || tracing.tree {
        let trace = collector.snapshot();
        if tracing.tree {
            eprintln!("{}", trace.render_tree());
        }
        if let Some(path) = tracing.json {
            std::fs::write(path, trace.to_jsonl_tagged(&cfg.producer))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} spans to {path}", trace.spans().len());
        }
    }
    if tracing.stats {
        let s = &report.summary;
        eprintln!(
            "campaign: {}/{} cases in {:.1}s ({} skipped), {} faulted, \
             {} caught, {} benign, {} clean, {} finding(s)",
            s.completed,
            s.cases,
            report.wall.as_secs_f64(),
            s.skipped,
            s.faulted,
            s.caught,
            s.benign,
            s.clean,
            s.findings,
        );
        eprintln!(
            "oracle: {} work units, {} word unknown(s), {} SAT cap-out(s); \
             shrink: {} candidate(s), largest shrunk pair {} gate(s)",
            s.work_units, s.word_unknown, s.sat_unknown, s.shrink_steps, s.max_shrunk_gates,
        );
        eprintln!(
            "{:<14} {:>6} {:>8} {:>7} {:>9}",
            "arch", "cases", "faulted", "caught", "findings"
        );
        for (name, row) in &s.per_arch {
            eprintln!(
                "{:<14} {:>6} {:>8} {:>7} {:>9}",
                name, row[0], row[1], row[2], row[3]
            );
        }
        eprintln!(
            "{:<14} {:>8} {:>7} {:>7} {:>9}",
            "fault", "injected", "caught", "benign", "findings"
        );
        for (name, row) in &s.per_fault {
            eprintln!(
                "{:<14} {:>8} {:>7} {:>7} {:>9}",
                name, row[0], row[1], row[2], row[3]
            );
        }
        for case in &report.cases {
            for f in &case.findings {
                eprintln!("finding case {}: {f}", case.index);
            }
        }
    }
    let (exit, verdict) = if report.summary.findings > 0 {
        (1u8, "findings")
    } else if report.summary.skipped > 0 {
        (3, "skipped")
    } else {
        (0, "clean")
    };
    // One row for the whole campaign: k is mixed across cases (0), and
    // the work units are the campaign's deterministic oracle total.
    ledger.append(&QueryRecord {
        query: &format!("campaign-seed{}", cfg.seed),
        k: 0,
        verdict,
        exit,
        work_units: report.summary.work_units,
        wall: report.wall,
        mem_peak_bytes: None,
    })?;
    Ok(ExitCode::from(exit))
}
