//! The instrumented global allocator of the `gfab` binary.
//!
//! [`TraceAlloc`] wraps the system allocator and forwards every
//! (de)allocation size to [`gfab::telemetry::mem`], which attributes live
//! bytes and allocation counts to the active telemetry span. The library
//! crate forbids `unsafe`, so the one `unsafe impl` lives here, in the
//! binary: the hooks themselves are safe functions, and when tracking is
//! off (`--mem-stats` absent) each hook is a single relaxed atomic load —
//! there is no measurable overhead on untracked runs.

use std::alloc::{GlobalAlloc, Layout, System};

/// System allocator plus [`gfab::telemetry::mem`] accounting hooks.
pub struct TraceAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the accounting hooks allocate nothing and only
// touch atomics / plain thread-locals, so they cannot re-enter the
// allocator or unwind.
unsafe impl GlobalAlloc for TraceAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            gfab::telemetry::mem::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        gfab::telemetry::mem::on_dealloc(layout.size());
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            gfab::telemetry::mem::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            gfab::telemetry::mem::on_dealloc(layout.size());
            gfab::telemetry::mem::on_alloc(new_size);
        }
        p
    }
}
