//! The cross-query artifact cache behind [`crate::Engine`].
//!
//! A batch of verification queries re-derives the same expensive
//! artifacts over and over: the same spec netlist extracted once per
//! query it appears in, structurally identical hierarchical sub-blocks
//! extracted once per instance, the same field context Rabin-tested per
//! query. [`ArtifactCache`] is the shared store that collapses that
//! repetition, and [`CachingExtract`] is the [`ExtractProvider`] that
//! plugs it into every extraction site of `gfab-core`.
//!
//! # Keying and poisoning safety
//!
//! Entries are keyed by *content*: the modulus polynomial's limbs
//! concatenated with the netlist's canonical encoding
//! ([`gfab_netlist::canon::canonical_bytes`]), bucketed by the 64-bit
//! FNV-1a digest of those bytes. A 64-bit digest can collide, so the
//! digest is only a bucket index — every entry keeps its full key bytes
//! and a lookup compares them byte-for-byte before returning a value.
//! A collision therefore costs one memcmp and a recomputation, never a
//! wrong answer.
//!
//! # Eviction
//!
//! Capacity is bounded in entries; over capacity, the least-recently
//! used entry goes first. Eviction only ever removes memoized values —
//! a re-miss recomputes the same deterministic result — so verdicts are
//! sound at any capacity, including zero-effective-capacity thrashing.
//!
//! # Determinism
//!
//! Only *completed* extractions are stored: results that timed out or
//! carry a budget-exhaustion note are returned to the caller but never
//! inserted, because they depend on wall clocks, not content. Stored
//! results are exactly what [`DirectExtract`] would recompute (the
//! pipeline is deterministic absent budget trips), so a cache hit is
//! observationally identical to a fresh extraction.

use crate::core::{CoreError, DirectExtract, ExtractOptions, ExtractProvider, ExtractionResult};
use crate::field::budget::Budget;
use crate::field::GfContext;
use crate::netlist::canon::{canonical_bytes, fnv1a};
use crate::netlist::Netlist;
use crate::telemetry::{Counter, Phase};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counters describing a cache's behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (full key bytes verified).
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry<V> {
    key: Arc<[u8]>,
    value: V,
    used: u64,
}

struct Store<V> {
    buckets: HashMap<u64, Vec<Entry<V>>>,
    len: usize,
    stamp: u64,
}

/// A concurrent, size-bounded, byte-verified content-addressed cache
/// (see module docs).
pub struct ArtifactCache<V> {
    store: Mutex<Store<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ArtifactCache<V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> ArtifactCache<V> {
        ArtifactCache {
            store: Mutex::new(Store {
                buckets: HashMap::new(),
                len: 0,
                stamp: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up the value stored under (`hash`, `key`). The hash picks
    /// the bucket; the key bytes must match in full — a colliding hash
    /// with different bytes is a miss, never a wrong value.
    pub fn lookup(&self, hash: u64, key: &[u8]) -> Option<V> {
        let mut s = self.store.lock().expect("artifact cache lock");
        s.stamp += 1;
        let stamp = s.stamp;
        if let Some(bucket) = s.buckets.get_mut(&hash) {
            if let Some(e) = bucket.iter_mut().find(|e| *e.key == *key) {
                e.used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.value.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a value, evicting least-recently-used entries while over
    /// capacity. Re-inserting an existing key replaces its value.
    pub fn insert(&self, hash: u64, key: Arc<[u8]>, value: V) {
        let mut s = self.store.lock().expect("artifact cache lock");
        s.stamp += 1;
        let stamp = s.stamp;
        let bucket = s.buckets.entry(hash).or_default();
        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            e.value = value;
            e.used = stamp;
            return;
        }
        bucket.push(Entry {
            key,
            value,
            used: stamp,
        });
        s.len += 1;
        while s.len > self.capacity {
            // LRU over all buckets. O(entries), but capacity pressure is
            // the rare path and capacities are small (hundreds).
            let (&h, _) = s
                .buckets
                .iter()
                .min_by_key(|(_, b)| b.iter().map(|e| e.used).min().unwrap_or(u64::MAX))
                .expect("over-capacity store is non-empty");
            let bucket = s.buckets.get_mut(&h).expect("bucket exists");
            let i = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
                .expect("non-empty bucket");
            bucket.remove(i);
            if bucket.is_empty() {
                s.buckets.remove(&h);
            }
            s.len -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.store.lock().expect("artifact cache lock").len,
        }
    }
}

/// The cache key of one flat extraction: modulus limbs + canonical
/// netlist bytes, plus its FNV-1a digest.
#[must_use]
pub fn extraction_key(nl: &Netlist, ctx: &GfContext) -> (u64, Vec<u8>) {
    let limbs = ctx.modulus().limbs();
    let mut key = Vec::with_capacity(8 + limbs.len() * 8 + 16 + nl.num_gates() * 13);
    key.extend_from_slice(&(limbs.len() as u32).to_le_bytes());
    for l in limbs {
        key.extend_from_slice(&l.to_le_bytes());
    }
    key.extend_from_slice(&canonical_bytes(nl));
    let hash = fnv1a(&key);
    (hash, key)
}

/// An [`ExtractProvider`] that memoizes completed flat extractions in an
/// [`ArtifactCache`] — the provider `gfab::Engine` threads through every
/// per-side and per-block extraction of a batch.
pub struct CachingExtract {
    cache: ArtifactCache<ExtractionResult>,
    /// Work units (reduction steps + gates modelled) actually computed
    /// by cache misses — what a warm run must strictly undercut.
    computed_work: AtomicU64,
}

impl CachingExtract {
    /// A caching provider over a fresh cache of the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> CachingExtract {
        CachingExtract {
            cache: ArtifactCache::new(capacity),
            computed_work: AtomicU64::new(0),
        }
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Total extraction work units computed so far (cache hits add
    /// nothing — that is the point).
    pub fn computed_work(&self) -> u64 {
        self.computed_work.load(Ordering::Relaxed)
    }

    fn cacheable(result: &ExtractionResult) -> bool {
        // Timed-out and budget-marked results reflect a wall clock, not
        // the circuit; caching them would let one query's deadline decide
        // another's verdict.
        !matches!(result.outcome, crate::core::Extraction::TimedOut { .. })
            && result.stats.budget_exhausted.is_none()
    }
}

impl ExtractProvider for CachingExtract {
    fn extract(
        &self,
        nl: &Netlist,
        ctx: &Arc<GfContext>,
        options: &ExtractOptions,
        budget: &Budget,
    ) -> Result<ExtractionResult, CoreError> {
        let (hash, key) = extraction_key(nl, ctx);
        let mut probe = options.telemetry.span(Phase::CacheLookup);
        if let Some(hit) = self.cache.lookup(hash, &key) {
            probe.counter(Counter::CacheHits, 1);
            let _ = probe.finish();
            return Ok(hit);
        }
        probe.counter(Counter::CacheMisses, 1);
        let _ = probe.finish();
        let result = DirectExtract.extract(nl, ctx, options, budget)?;
        self.computed_work.fetch_add(
            result.stats.reduction_steps + result.stats.gates as u64,
            Ordering::Relaxed,
        );
        if Self::cacheable(&result) {
            self.cache.insert(hash, key.into(), result.clone());
        }
        Ok(result)
    }
}

impl std::fmt::Debug for CachingExtract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingExtract")
            .field("stats", &self.stats())
            .field("computed_work", &self.computed_work())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_verifies_full_key_bytes_not_just_the_hash() {
        // Two distinct keys filed under the SAME hash (a forced
        // collision): the second lookup must miss, not return the first
        // value — the cache-poisoning guard.
        let cache: ArtifactCache<u32> = ArtifactCache::new(8);
        let ka: Arc<[u8]> = Arc::from(&b"netlist-a"[..]);
        let kb: Arc<[u8]> = Arc::from(&b"netlist-b"[..]);
        cache.insert(42, Arc::clone(&ka), 1);
        assert_eq!(cache.lookup(42, &ka), Some(1));
        assert_eq!(cache.lookup(42, &kb), None);
        cache.insert(42, Arc::clone(&kb), 2);
        assert_eq!(cache.lookup(42, &ka), Some(1));
        assert_eq!(cache.lookup(42, &kb), Some(2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (3, 1, 2));
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(2);
        let k = |s: &str| -> Arc<[u8]> { Arc::from(s.as_bytes()) };
        cache.insert(1, k("a"), 10);
        cache.insert(2, k("b"), 20);
        assert_eq!(cache.lookup(1, b"a"), Some(10)); // refresh "a"
        cache.insert(3, k("c"), 30); // evicts "b"
        assert_eq!(cache.lookup(2, b"b"), None);
        assert_eq!(cache.lookup(1, b"a"), Some(10));
        assert_eq!(cache.lookup(3, b"c"), Some(30));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(2);
        let key: Arc<[u8]> = Arc::from(&b"k"[..]);
        cache.insert(7, Arc::clone(&key), 1);
        cache.insert(7, Arc::clone(&key), 2);
        assert_eq!(cache.lookup(7, b"k"), Some(2));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn extraction_keys_separate_fields_and_structures() {
        use crate::circuits::mastrovito_multiplier;
        use crate::field::nist::irreducible_polynomial;
        let c4 = GfContext::shared(irreducible_polynomial(4).unwrap()).unwrap();
        let c8 = GfContext::shared(irreducible_polynomial(8).unwrap()).unwrap();
        let m4 = mastrovito_multiplier(&c4);
        let m8 = mastrovito_multiplier(&c8);
        let (h44, k44) = extraction_key(&m4, &c4);
        let (h48, k48) = extraction_key(&m4, &c8);
        let (h88, k88) = extraction_key(&m8, &c8);
        assert_ne!(k44, k48, "same netlist, different modulus");
        assert_ne!(k48, k88, "different netlist, same modulus");
        assert_ne!(h44, h48);
        assert_ne!(h48, h88);
        // Stable across calls.
        assert_eq!(extraction_key(&m4, &c4), (h44, k44));
    }
}
