//! Batch manifest loading for `gfab batch`.
//!
//! A manifest is one JSON document (parsed by the in-repo strict parser,
//! [`gfab_telemetry::json::parse_document`]) describing a default field
//! and a list of queries:
//!
//! ```json
//! {
//!   "field": {"k": 4},
//!   "queries": [
//!     {"name": "mont-vs-mastrovito", "op": "equiv",
//!      "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
//!     {"name": "squarer-8", "op": "extract",
//!      "circuit": "squarer8.nl", "field": {"modulus": [8, 4, 3, 1, 0]}}
//!   ]
//! }
//! ```
//!
//! * `field` — `{"k": n}` (NIST / low-weight irreducible for degree `n`)
//!   or `{"modulus": [e0, e1, …]}` (explicit exponent list). The
//!   top-level entry is the default; each query may override it.
//! * `op` — `"equiv"` (needs `spec` and `impl`) or `"extract"` (needs
//!   `circuit`).
//! * A circuit is either a netlist file path (resolved relative to the
//!   manifest's directory) or `{"gen": "mastrovito" | "montgomery" |
//!   "squarer" | "adder"}`. `montgomery` generates the hierarchical
//!   four-block design (flattened where a flat spec is required).
//!
//! Unknown keys are rejected — a typo should fail loudly, not silently
//! change what gets verified.

use crate::engine::{BatchOp, BatchQuery, OwnedCircuit};
use crate::field::nist::irreducible_polynomial;
use crate::field::{ContextCache, Gf2Poly};
use crate::netlist::format as nlformat;
use crate::netlist::Netlist;
use crate::telemetry::json::{parse_document, Json, Obj};
use std::path::Path;

/// Reads and parses a manifest file. Relative circuit paths inside the
/// manifest resolve against the manifest's own directory.
///
/// # Errors
///
/// I/O failure, JSON syntax errors, or any schema violation — all as a
/// human-readable message naming the offending query.
pub fn load_manifest(path: &str) -> Result<Vec<BatchQuery>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let base = Path::new(path).parent().unwrap_or(Path::new("."));
    parse_manifest(&text, base).map_err(|e| format!("{path}: {e}"))
}

/// Parses manifest text; `base_dir` anchors relative circuit paths.
///
/// # Errors
///
/// As [`load_manifest`], minus the I/O.
pub fn parse_manifest(text: &str, base_dir: &Path) -> Result<Vec<BatchQuery>, String> {
    let doc = parse_document(text)?;
    for (key, _) in &doc.0 {
        if !matches!(key.as_str(), "field" | "queries") {
            return Err(format!("unknown top-level key {key:?}"));
        }
    }
    let default_field = doc.get("field").map(parse_field).transpose()?;
    let Some(Json::Arr(entries)) = doc.get("queries") else {
        return Err("manifest needs a \"queries\" array".into());
    };
    // Generator circuits need a constructed context; share construction
    // across queries of the same field while loading.
    let contexts = ContextCache::new(16);
    let mut queries = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let Json::Obj(pairs) = entry else {
            return Err(format!("query #{i} is not an object"));
        };
        let q = Obj(pairs.clone());
        let name = match q.get("name") {
            Some(Json::Str(s)) => s.clone(),
            None => format!("q{i}"),
            Some(_) => return Err(format!("query #{i}: \"name\" must be a string")),
        };
        parse_query(&q, &name, default_field.as_ref(), base_dir, &contexts)
            .map(|bq| queries.push(bq))
            .map_err(|e| format!("query {name:?}: {e}"))?;
    }
    if queries.is_empty() {
        return Err("manifest has no queries".into());
    }
    Ok(queries)
}

fn parse_query(
    q: &Obj,
    name: &str,
    default_field: Option<&Gf2Poly>,
    base_dir: &Path,
    contexts: &ContextCache,
) -> Result<BatchQuery, String> {
    let Some(Json::Str(op)) = q.get("op") else {
        return Err("needs an \"op\" of \"equiv\" or \"extract\"".into());
    };
    let modulus = match q.get("field") {
        Some(f) => parse_field(f)?,
        None => default_field
            .cloned()
            .ok_or("no \"field\" here and no top-level default")?,
    };
    let allowed: &[&str] = match op.as_str() {
        "equiv" => &["name", "op", "field", "spec", "impl"],
        "extract" => &["name", "op", "field", "circuit"],
        other => return Err(format!("unknown op {other:?}")),
    };
    for (key, _) in &q.0 {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?} for op {op:?}"));
        }
    }
    let circuit = |key: &str| -> Result<OwnedCircuit, String> {
        let spec = q.get(key).ok_or(format!("op {op:?} needs {key:?}"))?;
        parse_circuit(spec, &modulus, base_dir, contexts).map_err(|e| format!("{key}: {e}"))
    };
    let op = match op.as_str() {
        "extract" => BatchOp::Extract(circuit("circuit")?),
        _ => BatchOp::Equiv {
            spec: match circuit("spec")? {
                OwnedCircuit::Flat(nl) => nl,
                // The checker's spec side is flat by construction.
                OwnedCircuit::Hier(d) => d.flatten(),
            },
            impl_: circuit("impl")?,
        },
    };
    Ok(BatchQuery {
        name: name.to_string(),
        modulus,
        op,
    })
}

/// `{"k": n}` or `{"modulus": [e0, e1, …]}` → the field's modulus.
fn parse_field(value: &Json) -> Result<Gf2Poly, String> {
    let Json::Obj(pairs) = value else {
        return Err("\"field\" must be an object".into());
    };
    let f = Obj(pairs.clone());
    match (f.get("k"), f.get("modulus"), pairs.len()) {
        (Some(Json::Num(k)), None, 1) => {
            let k = usize::try_from(*k).map_err(|_| format!("k={k} out of range"))?;
            irreducible_polynomial(k).ok_or(format!("no irreducible polynomial for k={k}"))
        }
        (None, Some(Json::Arr(exps)), 1) => {
            let exps: Result<Vec<usize>, String> = exps
                .iter()
                .map(|e| match e {
                    Json::Num(n) => usize::try_from(*n).map_err(|_| format!("exponent {n}")),
                    other => Err(format!("non-integer exponent {other:?}")),
                })
                .collect();
            Ok(Gf2Poly::from_exponents(&exps?))
        }
        _ => Err("\"field\" must be exactly {\"k\": n} or {\"modulus\": [e0, e1, ...]}".into()),
    }
}

fn parse_circuit(
    value: &Json,
    modulus: &Gf2Poly,
    base_dir: &Path,
    contexts: &ContextCache,
) -> Result<OwnedCircuit, String> {
    match value {
        Json::Str(path) => {
            let full = base_dir.join(path);
            let text = std::fs::read_to_string(&full)
                .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
            let nl: Netlist = nlformat::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok(OwnedCircuit::Flat(nl))
        }
        Json::Obj(pairs) => {
            let o = Obj(pairs.clone());
            let (Some(Json::Str(gen)), 1) = (o.get("gen"), pairs.len()) else {
                return Err("a generated circuit is exactly {\"gen\": \"<arch>\"}".into());
            };
            let ctx = contexts.get(modulus).map_err(|e| e.to_string())?;
            match gen.as_str() {
                "mastrovito" => Ok(OwnedCircuit::Flat(crate::circuits::mastrovito_multiplier(
                    &ctx,
                ))),
                "montgomery" => Ok(OwnedCircuit::Hier(
                    crate::circuits::montgomery_multiplier_hier(&ctx),
                )),
                "squarer" => Ok(OwnedCircuit::Flat(crate::circuits::squarer(&ctx))),
                "adder" => Ok(OwnedCircuit::Flat(crate::circuits::gf_adder(&ctx))),
                other => Err(format!("unknown generator {other:?}")),
            }
        }
        other => Err(format!(
            "a circuit is a netlist path or {{\"gen\": …}}, got {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BatchOp, OwnedCircuit};

    #[test]
    fn generated_manifest_round_trips() {
        let text = r#"{
            "field": {"k": 4},
            "queries": [
                {"name": "eq", "op": "equiv",
                 "spec": {"gen": "mastrovito"}, "impl": {"gen": "montgomery"}},
                {"op": "extract", "circuit": {"gen": "squarer"},
                 "field": {"modulus": [8, 4, 3, 1, 0]}}
            ]
        }"#;
        let qs = parse_manifest(text, Path::new(".")).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].name, "eq");
        assert!(matches!(
            qs[0].op,
            BatchOp::Equiv {
                impl_: OwnedCircuit::Hier(_),
                ..
            }
        ));
        assert_eq!(qs[1].name, "q1");
        assert_eq!(qs[1].modulus.degree(), Some(8));
    }

    #[test]
    fn typos_fail_loudly() {
        let base = Path::new(".");
        let no_field = r#"{"queries": [{"op": "extract", "circuit": {"gen": "adder"}}]}"#;
        assert!(parse_manifest(no_field, base)
            .unwrap_err()
            .contains("no top-level default"));
        let bad_key = r#"{"field": {"k": 4},
            "queries": [{"op": "extract", "circut": {"gen": "adder"}}]}"#;
        assert!(parse_manifest(bad_key, base)
            .unwrap_err()
            .contains("circut"));
        let bad_gen = r#"{"field": {"k": 4},
            "queries": [{"op": "extract", "circuit": {"gen": "karatsuba"}}]}"#;
        assert!(parse_manifest(bad_gen, base)
            .unwrap_err()
            .contains("karatsuba"));
        let empty = r#"{"field": {"k": 4}, "queries": []}"#;
        assert!(parse_manifest(empty, base)
            .unwrap_err()
            .contains("no queries"));
    }
}
