//! The multi-query batch verification engine.
//!
//! [`Engine`] runs a whole manifest of extraction / equivalence queries
//! over a work-stealing pool of verification workers, sharing two
//! caches across every query:
//!
//! * an [`ArtifactCache`](crate::ArtifactCache) of completed flat
//!   extractions (via [`CachingExtract`]) — duplicate circuits and
//!   structurally identical hierarchical sub-blocks extract once per
//!   batch, not once per occurrence;
//! * a [`ContextCache`] of constructed field contexts — each distinct
//!   modulus is Rabin-tested once.
//!
//! # Determinism
//!
//! Every query runs through the exact same [`Verifier`] ladder as a
//! standalone `Verifier::check`/`extract` call; the only batch-level
//! sharing is through providers bound by the
//! [`ExtractProvider`](crate::core::ExtractProvider) determinism
//! contract. Batch results are therefore bit-identical to running the
//! queries sequentially, at any worker count — the scheduler decides
//! *when* a query runs, never *what* it computes. (A shared wall-clock
//! deadline is the one intentional exception, exactly as it is for
//! sequential runs under a deadline.)
//!
//! # Scheduling
//!
//! Queries run over the shared work-stealing scheduler in
//! [`gfab_core::pool`] (round-robin deal onto per-worker deques, idle
//! workers steal from the back of their neighbours' deques). When a
//! batch-wide deadline is configured, each dequeue grants the query its
//! fair share of the *remaining* wall clock
//! (`remaining_wall / unstarted_queries`), so early finishers donate
//! their slack to later queries instead of stranding it.

use crate::cache::{CacheStats, CachingExtract};
use crate::core::equiv::{EquivReport, Verdict};
use crate::core::{pool, CoreError, ExtractProvider, Extraction};
use crate::field::{ContextCache, Gf2Poly};
use crate::netlist::hierarchy::HierDesign;
use crate::netlist::Netlist;
use crate::telemetry::{EventBus, EventKind, HistData};
use crate::verifier::{Circuit, ExtractReport, Verifier};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Verification workers (`0` = available parallelism). With more
    /// than one worker, each query runs single-threaded internally;
    /// with one worker, queries keep their internal thread budget.
    pub threads: usize,
    /// Artifact-cache capacity in entries.
    pub cache_capacity: usize,
    /// Shared wall-clock budget for the whole batch, split fairly
    /// across queries at dequeue time. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Conflict cap of each query's SAT fallback rung.
    pub sat_conflicts: u64,
    /// Record a per-query telemetry span tree on each result.
    pub trace: bool,
    /// Live event bus the batch publishes into: per-query lifecycle
    /// (which worker picked up which query, how each ended) plus every
    /// in-flight phase/progress/budget event of the queries themselves.
    /// Disabled by default; publishing never blocks workers.
    pub events: EventBus,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_capacity: 256,
            deadline: None,
            sat_conflicts: 1_000_000,
            trace: false,
            events: EventBus::default(),
        }
    }
}

/// An owned circuit in a batch query (the owning twin of
/// [`Circuit`], which borrows).
#[derive(Debug, Clone)]
pub enum OwnedCircuit {
    /// A flat gate-level netlist.
    Flat(Netlist),
    /// A hierarchical design.
    Hier(HierDesign),
}

impl OwnedCircuit {
    /// Borrows as the [`Verifier`]-facing [`Circuit`] view.
    #[must_use]
    pub fn as_circuit(&self) -> Circuit<'_> {
        match self {
            OwnedCircuit::Flat(nl) => Circuit::Flat(nl),
            OwnedCircuit::Hier(d) => Circuit::Hier(d),
        }
    }
}

/// What one batch query asks for.
#[derive(Debug, Clone)]
pub enum BatchOp {
    /// Abstract the circuit to its word-level polynomial.
    Extract(OwnedCircuit),
    /// Check a flat spec against an implementation.
    Equiv {
        /// The specification netlist.
        spec: Netlist,
        /// The implementation (flat or hierarchical).
        impl_: OwnedCircuit,
    },
}

/// One query of a batch: a name for reporting, the field modulus, and
/// the operation.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    /// Name echoed on the query's result line.
    pub name: String,
    /// Irreducible modulus defining the query's field.
    pub modulus: Gf2Poly,
    /// What to do.
    pub op: BatchOp,
}

/// How one query ended.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// An extraction query completed (possibly with a Case-2 residual).
    Extracted(Box<ExtractReport>),
    /// An equivalence query completed (the verdict may be `Unknown`).
    Checked(Box<EquivReport>),
    /// The query's budget ran out before any verdict-bearing report
    /// existed (e.g. during model construction) — the batch-level
    /// analogue of a standalone TIMED OUT run, distinct from an error.
    TimedOut(String),
    /// The query failed outright (bad field, malformed design, internal
    /// error). Failure of one query never aborts the rest of the batch.
    Failed(String),
}

impl QueryOutcome {
    /// The one-word verdict used on result lines, in ledger rows and in
    /// live `query-done` events: `extracted`, `residual`, `equivalent`,
    /// `inequivalent`, `unknown`, `timeout` or `failed`.
    #[must_use]
    pub fn verdict_word(&self) -> &'static str {
        match self {
            QueryOutcome::Failed(_) => "failed",
            QueryOutcome::TimedOut(_) => "timeout",
            QueryOutcome::Extracted(report) => match report.as_flat().map(|r| &r.outcome) {
                None | Some(Extraction::Canonical(_)) => "extracted",
                Some(Extraction::Residual { .. }) => "residual",
                Some(Extraction::TimedOut { .. }) => "timeout",
            },
            QueryOutcome::Checked(report) => match report.verdict() {
                Verdict::Equivalent { .. } | Verdict::EquivalentBySat { .. } => "equivalent",
                Verdict::Inequivalent { .. }
                | Verdict::InequivalentBySimulation { .. }
                | Verdict::InequivalentBySat { .. } => "inequivalent",
                Verdict::Unknown { .. } => "unknown",
            },
        }
    }

    /// The process-exit severity the outcome maps to under the CLI's
    /// batch aggregation contract (0 ok / 1 inequivalent / 2 failure /
    /// 3 resource-exhausted).
    #[must_use]
    pub fn exit_severity(&self) -> u8 {
        match self.verdict_word() {
            "failed" => 2,
            "timeout" | "unknown" => 3,
            "inequivalent" => 1,
            _ => 0,
        }
    }
}

/// One query's result within a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query's name, as given.
    pub name: String,
    /// How it ended.
    pub outcome: QueryOutcome,
    /// Time the query spent queued before a worker picked it up, µs.
    pub queue_us: u64,
    /// Wall-clock time of the query itself.
    pub duration: Duration,
}

/// The result of [`Engine::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query results, indexed exactly like the submitted queries.
    pub results: Vec<QueryResult>,
    /// Artifact-cache counters after this pass (cumulative across the
    /// engine's lifetime).
    pub cache: CacheStats,
    /// Field-context cache hits so far (cumulative).
    pub context_hits: u64,
    /// Field-context cache misses so far (cumulative).
    pub context_misses: u64,
    /// Extraction work units (reduction steps + gates modelled) actually
    /// computed during *this* pass — a warm repeat of the same batch
    /// must come out strictly lower than its cold pass.
    pub work_units: u64,
    /// Queue-latency histogram over this pass
    /// ([`Hist::QueueLatencyUs`](crate::telemetry::Hist) semantics).
    pub queue_latency: HistData,
    /// Wall-clock time of the whole pass.
    pub wall: Duration,
}

/// A batch verification engine: a work-stealing worker pool plus
/// cross-query artifact and field-context caches (see module docs).
/// Caches persist across [`run_batch`](Engine::run_batch) calls, so a
/// repeated batch runs warm.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    provider: Arc<CachingExtract>,
    contexts: ContextCache,
}

impl Engine {
    /// Builds an engine from its configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Engine {
        let provider = Arc::new(CachingExtract::new(config.cache_capacity));
        Engine {
            config,
            provider,
            contexts: ContextCache::new(16),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Artifact-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.provider.stats()
    }

    /// Runs every query and returns their results in submission order.
    /// Individual query failures are captured as
    /// [`QueryOutcome::Failed`]; this method itself never fails.
    pub fn run_batch(&self, queries: &[BatchQuery]) -> BatchReport {
        let start = Instant::now();
        let work_before = self.provider.computed_work();
        let n = queries.len();
        let workers = self.resolve_workers(n);
        let inner_threads = if workers > 1 { 1 } else { self.config.threads };
        let unstarted = AtomicUsize::new(n);

        let results: Vec<QueryResult> = pool::run_indexed(workers, n, |w, i| {
            let queue_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let left = unstarted.fetch_sub(1, Ordering::Relaxed).max(1);
            let deadline = self
                .config
                .deadline
                .map(|d| d.saturating_sub(start.elapsed()) / left as u32);
            self.config.events.publish(EventKind::QueryStart {
                query: queries[i].name.clone(),
                worker: w as u64,
            });
            let q_start = Instant::now();
            let outcome = self.run_query(&queries[i], deadline, inner_threads);
            let duration = q_start.elapsed();
            self.config.events.publish(EventKind::QueryDone {
                query: queries[i].name.clone(),
                verdict: outcome.verdict_word().to_string(),
                exit: u64::from(outcome.exit_severity()),
                wall_us: duration.as_micros().min(u128::from(u64::MAX)) as u64,
                worker: w as u64,
            });
            QueryResult {
                name: queries[i].name.clone(),
                outcome,
                queue_us,
                duration,
            }
        });

        let mut queue_latency = HistData::new();
        for r in &results {
            queue_latency.record(r.queue_us);
        }
        BatchReport {
            results,
            cache: self.provider.stats(),
            context_hits: self.contexts.hits(),
            context_misses: self.contexts.misses(),
            work_units: self.provider.computed_work() - work_before,
            queue_latency,
            wall: start.elapsed(),
        }
    }

    fn resolve_workers(&self, n: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let t = if self.config.threads == 0 {
            hw()
        } else {
            self.config.threads
        };
        t.min(n).max(1)
    }

    fn run_query(
        &self,
        q: &BatchQuery,
        deadline: Option<Duration>,
        inner_threads: usize,
    ) -> QueryOutcome {
        let ctx = match self.contexts.get(&q.modulus) {
            Ok(ctx) => ctx,
            Err(e) => return QueryOutcome::Failed(format!("field construction: {e}")),
        };
        let mut v = Verifier::new(&ctx)
            .threads(inner_threads)
            .sat_conflicts(self.config.sat_conflicts)
            .trace(self.config.trace)
            .events(&self.config.events)
            .extract_provider(Arc::clone(&self.provider) as Arc<dyn ExtractProvider>);
        if let Some(d) = deadline {
            v = v.deadline(d);
        }
        // Budget exhaustion is a verdictless timeout, not an error —
        // same split the standalone CLI makes (exit 3, not 2).
        let classify = |e: CoreError| match e {
            CoreError::BudgetExhausted { .. } => QueryOutcome::TimedOut(e.to_string()),
            other => QueryOutcome::Failed(other.to_string()),
        };
        match &q.op {
            BatchOp::Extract(c) => match v.extract(c.as_circuit()) {
                Ok(report) => QueryOutcome::Extracted(Box::new(report)),
                Err(e) => classify(e),
            },
            BatchOp::Equiv { spec, impl_ } => match v.check(spec, impl_.as_circuit()) {
                Ok(report) => QueryOutcome::Checked(Box::new(report)),
                Err(e) => classify(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
    use crate::field::nist::irreducible_polynomial;
    use crate::field::GfContext;

    fn mastrovito_query(name: &str, k: usize) -> BatchQuery {
        let m = irreducible_polynomial(k).unwrap();
        let ctx = GfContext::shared(m.clone()).unwrap();
        BatchQuery {
            name: name.to_string(),
            modulus: m,
            op: BatchOp::Extract(OwnedCircuit::Flat(mastrovito_multiplier(&ctx))),
        }
    }

    #[test]
    fn duplicate_queries_hit_the_cache() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let queries = vec![
            mastrovito_query("a", 4),
            mastrovito_query("b", 4),
            mastrovito_query("c", 4),
        ];
        let report = engine.run_batch(&queries);
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            let QueryOutcome::Extracted(e) = &r.outcome else {
                panic!("{}: {:?}", r.name, r.outcome)
            };
            assert_eq!(format!("{}", e.function().unwrap().display()), "A*B");
        }
        assert_eq!(report.cache.misses, 1, "one structure extracts once");
        assert_eq!(report.cache.hits, 2);
        assert_eq!(report.context_misses, 1, "one field, one Rabin test");
        assert_eq!(report.queue_latency.count, 3);
    }

    #[test]
    fn shared_sub_blocks_extract_once_within_one_design() {
        // Montgomery's four blocks contain two structurally identical
        // MonPro pairs → 4 lookups but fewer distinct extractions.
        let engine = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let m = irreducible_polynomial(4).unwrap();
        let ctx = GfContext::shared(m.clone()).unwrap();
        let queries = vec![BatchQuery {
            name: "mont".into(),
            modulus: m,
            op: BatchOp::Extract(OwnedCircuit::Hier(montgomery_multiplier_hier(&ctx))),
        }];
        let report = engine.run_batch(&queries);
        let QueryOutcome::Extracted(e) = &report.results[0].outcome else {
            panic!("{:?}", report.results[0].outcome)
        };
        assert_eq!(format!("{}", e.function().unwrap().display()), "A*B");
        assert_eq!(report.cache.hits + report.cache.misses, 4);
        assert!(
            report.cache.hits >= 1,
            "identical MonPro blocks must share an extraction: {:?}",
            report.cache
        );
    }

    #[test]
    fn warm_pass_does_strictly_less_work() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let queries = vec![mastrovito_query("a", 4), mastrovito_query("b", 5)];
        let cold = engine.run_batch(&queries);
        let warm = engine.run_batch(&queries);
        assert!(cold.work_units > 0);
        assert_eq!(warm.work_units, 0, "fully warm pass recomputes nothing");
    }

    #[test]
    fn failures_are_isolated_per_query() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        let mut bad = mastrovito_query("bad", 4);
        bad.modulus = Gf2Poly::from_exponents(&[4, 0]); // reducible
        let queries = vec![bad, mastrovito_query("good", 4)];
        let report = engine.run_batch(&queries);
        assert!(matches!(report.results[0].outcome, QueryOutcome::Failed(_)));
        assert!(matches!(
            report.results[1].outcome,
            QueryOutcome::Extracted(_)
        ));
    }
}
