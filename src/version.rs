//! The build's version identity.
//!
//! Combines the Cargo package version with the git-describe revision
//! embedded at compile time (see `build.rs`). The resulting string is
//! what `gfab --version` prints, what [`Trace::to_jsonl_tagged`]
//! (`crate::telemetry::Trace`) stamps into trace JSONL headers, and what
//! the fuzz corpus records as each case file's `producer` — so every
//! persisted artifact names the exact build that wrote it.

/// The git-describe output captured at build time (`--always --dirty
/// --tags`), or `"unknown"` when the build did not run inside a git
/// checkout.
pub const GIT_DESCRIBE: &str = env!("GFAB_GIT_DESCRIBE");

/// The full version string, e.g. `gfab 0.3.0+249652a` (or plain
/// `gfab 0.3.0` when no git metadata was available at build time).
#[must_use]
pub fn version_string() -> String {
    if GIT_DESCRIBE == "unknown" {
        format!("gfab {}", env!("CARGO_PKG_VERSION"))
    } else {
        format!("gfab {}+{}", env!("CARGO_PKG_VERSION"), GIT_DESCRIBE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_string_names_the_package_version() {
        let v = version_string();
        assert!(v.starts_with(&format!("gfab {}", env!("CARGO_PKG_VERSION"))));
        assert!(!GIT_DESCRIBE.is_empty());
    }
}
