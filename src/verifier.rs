//! The unified verification session API.
//!
//! [`Verifier`] is a small builder that bundles a field context with an
//! [`ExtractOptions`] configuration (thread budget, Case-2 completion
//! limits, …) and exposes the whole abstraction/equivalence surface behind
//! two methods:
//!
//! * [`Verifier::extract`] — gate-level → word-level abstraction of a flat
//!   netlist or a hierarchical design (hierarchy is dispatched on the
//!   argument type, no separate entry point needed);
//! * [`Verifier::check`] — equivalence of a flat spec against a flat or
//!   hierarchical implementation, again dispatched on the argument type.
//!
//! ```
//! use gfab::field::{GfContext, Gf2Poly};
//! use gfab::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
//! use gfab::Verifier;
//!
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let v = Verifier::new(&ctx).threads(2);
//!
//! // Extraction: flat netlists and hierarchical designs take the same call.
//! let mult = mastrovito_multiplier(&ctx);
//! let f = v.extract(&mult).unwrap();
//! assert_eq!(format!("{}", f.function().unwrap().display()), "A*B");
//!
//! let mont = montgomery_multiplier_hier(&ctx);
//! let g = v.extract(&mont).unwrap();
//! assert!(f.function().unwrap().matches(g.function().unwrap()));
//!
//! // Equivalence: Mastrovito spec vs. hierarchical Montgomery impl.
//! let report = v.check(&mult, &mont).unwrap();
//! assert!(report.verdict.is_equivalent());
//! ```

use crate::core::equiv::SatStats;
use crate::core::equiv::{
    check_equivalence_budgeted_with, check_equivalence_hier_budgeted_with, EquivReport, Verdict,
};
use crate::core::hier::{extract_hierarchical_budgeted_with, HierExtraction};
use crate::core::{
    CoreError, DirectExtract, ExtractOptions, ExtractProvider, ExtractionResult, ExtractionStats,
    WordFunction,
};
use crate::field::budget::{Budget, BudgetObserver, BudgetSpec};
use crate::field::{Gf, GfContext};
use crate::netlist::hierarchy::HierDesign;
use crate::netlist::Netlist;
use crate::sat::equiv::{check_equivalence_sat_traced, SatVerdict};
use crate::telemetry::{Collector, EventBus, EventKind, Phase, Telemetry, Trace};
use std::sync::Arc;
use std::time::Duration;

/// Work-unit cadence of live budget-drain events: one
/// [`EventKind::BudgetTick`] each time the query's charged work crosses
/// a multiple of this stride.
const BUDGET_EVENT_STRIDE: u64 = 2048;

/// The [`BudgetObserver`] → [`EventBus`] adapter. It lives here rather
/// than in `gfab_field` because both `gfab-field` and `gfab-telemetry`
/// are deliberately dependency-free leaf crates; the binary layer is
/// the first place that sees both.
struct BudgetEvents(EventBus);

impl BudgetObserver for BudgetEvents {
    fn budget_tick(&self, work_done: u64, remaining: Option<Duration>) {
        self.0.publish(EventKind::BudgetTick {
            work_done,
            remaining_us: remaining.map(|r| r.as_micros().min(u128::from(u64::MAX)) as u64),
        });
    }
}

/// A circuit that can be handed to [`Verifier::extract`] or appear as the
/// implementation side of [`Verifier::check`]: either a flat gate-level
/// netlist or a hierarchical block design.
#[derive(Debug, Clone, Copy)]
pub enum Circuit<'a> {
    /// A flat gate-level netlist.
    Flat(&'a Netlist),
    /// A hierarchical design (per-block extraction + word-level composition).
    Hier(&'a HierDesign),
}

impl<'a> From<&'a Netlist> for Circuit<'a> {
    fn from(nl: &'a Netlist) -> Self {
        Circuit::Flat(nl)
    }
}

impl<'a> From<&'a HierDesign> for Circuit<'a> {
    fn from(design: &'a HierDesign) -> Self {
        Circuit::Hier(design)
    }
}

/// The extraction outcome of [`Verifier::extract`], covering both the
/// flat and the hierarchical flow.
#[derive(Debug, Clone)]
pub enum ExtractOutcome {
    /// Result of extracting a flat netlist (may be a Case-2 residual).
    /// Boxed: flat results carry the full residual/stats payload and would
    /// otherwise dwarf the hierarchical variant.
    Flat(Box<ExtractionResult>),
    /// Result of extracting a hierarchical design (always canonical —
    /// composition requires canonical block polynomials).
    Hier(HierExtraction),
}

/// The result of [`Verifier::extract`]: the extraction outcome plus, when
/// the session has [`Verifier::trace`] enabled, the telemetry span tree
/// of the query.
#[derive(Debug, Clone)]
pub struct ExtractReport {
    /// What the extraction produced.
    pub outcome: ExtractOutcome,
    /// The query's span tree (`None` unless tracing is enabled).
    pub trace: Option<Trace>,
}

impl ExtractReport {
    /// The canonical word-level function `Z = F(A, B, …)`, if one was
    /// reached (`None` when a flat extraction ended in a Case-2 residual).
    pub fn function(&self) -> Option<&WordFunction> {
        match &self.outcome {
            ExtractOutcome::Flat(r) => r.canonical(),
            ExtractOutcome::Hier(h) => Some(&h.function),
        }
    }

    /// Extraction statistics: the flat stats, or the aggregate over all
    /// blocks of a hierarchical design.
    pub fn stats(&self) -> ExtractionStats {
        match &self.outcome {
            ExtractOutcome::Flat(r) => r.stats.clone(),
            ExtractOutcome::Hier(h) => {
                let mut agg = ExtractionStats::default();
                for (_, _, s) in &h.blocks {
                    agg.gates += s.gates;
                    agg.reduction_steps += s.reduction_steps;
                    agg.cancellations += s.cancellations;
                    agg.peak_terms = agg.peak_terms.max(s.peak_terms);
                    agg.duration += s.duration;
                    agg.model_time += s.model_time;
                    agg.reduce_time += s.reduce_time;
                    agg.case2_time += s.case2_time;
                    if agg.budget_exhausted.is_none() {
                        agg.budget_exhausted = s.budget_exhausted.clone();
                    }
                }
                agg.duration += h.compose_time;
                agg
            }
        }
    }

    /// The flat extraction result, if this report came from a flat netlist.
    pub fn as_flat(&self) -> Option<&ExtractionResult> {
        match &self.outcome {
            ExtractOutcome::Flat(r) => Some(r),
            ExtractOutcome::Hier(_) => None,
        }
    }

    /// The hierarchical extraction, if this report came from a design.
    pub fn as_hier(&self) -> Option<&HierExtraction> {
        match &self.outcome {
            ExtractOutcome::Flat(_) => None,
            ExtractOutcome::Hier(h) => Some(h),
        }
    }

    /// The query's telemetry span tree (`None` unless the session has
    /// [`Verifier::trace`] enabled) — the accessor twin of the `trace`
    /// field, uniform with [`EquivReport::trace`].
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

/// A verification session: a field context plus extraction configuration,
/// built in fluent style and reused across any number of
/// [`extract`](Verifier::extract) / [`check`](Verifier::check) calls.
#[derive(Clone)]
pub struct Verifier {
    ctx: Arc<GfContext>,
    options: ExtractOptions,
    sat_conflicts: u64,
    trace: bool,
    mem_stats: bool,
    events: EventBus,
    provider: Option<Arc<dyn ExtractProvider>>,
}

impl std::fmt::Debug for Verifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("ctx", &self.ctx)
            .field("options", &self.options)
            .field("sat_conflicts", &self.sat_conflicts)
            .field("trace", &self.trace)
            .field("mem_stats", &self.mem_stats)
            .field("events", &self.events.is_enabled())
            .field("provider", &self.provider.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl Verifier {
    /// Starts a session over the given field with default options
    /// (thread count = available parallelism, no resource budget,
    /// tracing off).
    pub fn new(ctx: &Arc<GfContext>) -> Self {
        Verifier {
            ctx: ctx.clone(),
            options: ExtractOptions::default(),
            sat_conflicts: 1_000_000,
            trace: false,
            mem_stats: false,
            events: EventBus::default(),
            provider: None,
        }
    }

    /// Publishes live events (phase enter/exit, periodic work-unit
    /// progress, budget-drain ticks) into `bus` while queries run — the
    /// channel behind `--progress` and `--events`. Publishing is
    /// non-blocking and display-only: it never perturbs deterministic
    /// work-unit counters or verdicts. Off by default.
    #[must_use]
    pub fn events(mut self, bus: &EventBus) -> Self {
        self.events = bus.clone();
        self
    }

    /// Enables per-query telemetry: every [`extract`](Verifier::extract) /
    /// [`check`](Verifier::check) call records a span tree (phase
    /// durations, per-block spans, effort counters) surfaced on the
    /// report's `trace` field. Off by default — the disabled path is a
    /// single branch per phase, so untraced runs pay nothing.
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Enables per-phase memory accounting for traced queries: every span
    /// additionally records live-bytes peak, total bytes allocated and
    /// allocation count as gauges (shown by `--stats`/`--trace` and
    /// serialized into the JSONL trace).
    ///
    /// Accounting needs the process's global allocator to be instrumented
    /// (the `gfab` binary installs [`telemetry::mem`]-aware hooks; see
    /// `gfab::telemetry::mem`). Without such hooks this knob records
    /// all-zero gauges. It has no effect unless [`trace`](Verifier::trace)
    /// is also enabled, and untracked runs pay a single relaxed atomic
    /// load per allocation — nothing else.
    #[must_use]
    pub fn mem_stats(mut self, enabled: bool) -> Self {
        self.mem_stats = enabled;
        self
    }

    /// Sets the worker-thread budget (`0` = available parallelism, `1` =
    /// fully serial). Parallel runs produce bit-identical results to
    /// serial ones.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Sets a wall-clock deadline per [`check`](Verifier::check) /
    /// [`extract`](Verifier::extract) query. The clock starts when the
    /// query starts, and every pipeline phase (guided reduction, Case-2
    /// completion, hierarchical blocks, simulation sweeps, the SAT
    /// fallback) polls it cooperatively. In [`check`](Verifier::check),
    /// the word-level phase is given *half* the deadline so the SAT
    /// fallback rung is guaranteed room to run.
    #[must_use]
    pub fn deadline(mut self, wall: Duration) -> Self {
        self.options.budget.wall = Some(wall);
        self
    }

    /// Caps the word-level algebraic work per query, measured in division
    /// iterations / Gröbner pair reductions. Unlike a wall-clock deadline,
    /// a work cap is fully deterministic: whether it trips depends only on
    /// the total work a query needs, never on thread count or machine
    /// speed.
    #[must_use]
    pub fn work_cap(mut self, units: u64) -> Self {
        self.options.budget.work = Some(units);
        self
    }

    /// Sets the conflict cap of the SAT fallback rung of
    /// [`check`](Verifier::check) (default one million, matching the
    /// `gfab sat-equiv` CLI default).
    #[must_use]
    pub fn sat_conflicts(mut self, conflicts: u64) -> Self {
        self.sat_conflicts = conflicts;
        self
    }

    /// Replaces the whole [`ExtractOptions`] block (Case-2 completion
    /// limits, simulation fallbacks, …) for full control.
    #[must_use]
    pub fn options(mut self, options: ExtractOptions) -> Self {
        self.options = options;
        self
    }

    /// Routes every flat extraction (per side, per hierarchical block)
    /// through the given [`ExtractProvider`] — the hook `gfab::Engine`
    /// uses to share an artifact cache across a whole batch. Providers
    /// must honour the determinism contract documented on the trait;
    /// `None` (the default) extracts directly.
    #[must_use]
    pub fn extract_provider(mut self, provider: Arc<dyn ExtractProvider>) -> Self {
        self.provider = Some(provider);
        self
    }

    /// The session's field context.
    pub fn ctx(&self) -> &Arc<GfContext> {
        &self.ctx
    }

    /// The session's extraction options.
    pub fn extract_options(&self) -> &ExtractOptions {
        &self.options
    }

    /// Starts a fresh per-query collector when tracing is enabled; returns
    /// the collector (for the final snapshot), the options to run the
    /// query with, and — when memory accounting is on — the RAII guard
    /// that keeps allocator tracking alive for the query's duration.
    fn query_setup(
        &self,
    ) -> (
        Option<Arc<Collector>>,
        ExtractOptions,
        Option<crate::telemetry::mem::MemGuard>,
    ) {
        if self.trace {
            let collector = Collector::new();
            let options = self
                .options
                .clone()
                .with_telemetry(Telemetry::attached(&collector).with_events(&self.events));
            let mem = self.mem_stats.then(crate::telemetry::mem::track);
            (Some(collector), options, mem)
        } else if self.events.is_enabled() {
            // Events without tracing: spans still open (for live
            // phase/progress publishing) but record nothing.
            let options = self
                .options
                .clone()
                .with_telemetry(Telemetry::disabled().with_events(&self.events));
            (None, options, None)
        } else {
            (None, self.options.clone(), None)
        }
    }

    /// Attaches the live budget-drain observer to a freshly started
    /// query budget when events are on (the identity otherwise).
    fn observed(&self, budget: Budget) -> Budget {
        if self.events.is_enabled() {
            budget.with_observer(
                Arc::new(BudgetEvents(self.events.clone())),
                BUDGET_EVENT_STRIDE,
            )
        } else {
            budget
        }
    }

    /// Abstracts a circuit to its word-level polynomial. Accepts a flat
    /// [`Netlist`] or a hierarchical [`HierDesign`] (blocks extracted
    /// concurrently, then composed at word level).
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] from the underlying extraction.
    pub fn extract<'a>(&self, circuit: impl Into<Circuit<'a>>) -> Result<ExtractReport, CoreError> {
        let circuit = circuit.into();
        let (collector, mut options, _mem) = self.query_setup();
        let name = match circuit {
            Circuit::Flat(nl) => nl.name().to_string(),
            Circuit::Hier(design) => design.name.clone(),
        };
        let root = options.telemetry.span_labeled(Phase::Extract, &name);
        options.telemetry = root.telemetry();
        let provider = self.provider.as_deref().unwrap_or(&DirectExtract);
        let budget = self.observed(options.budget.start());
        let outcome = match circuit {
            Circuit::Flat(nl) => provider
                .extract(nl, &self.ctx, &options, &budget)
                .map(|r| ExtractOutcome::Flat(Box::new(r))),
            Circuit::Hier(design) => {
                extract_hierarchical_budgeted_with(provider, design, &self.ctx, &options, &budget)
                    .map(ExtractOutcome::Hier)
            }
        };
        let _ = root.finish();
        let outcome = outcome?;
        Ok(ExtractReport {
            outcome,
            trace: collector.map(|c| c.snapshot()),
        })
    }

    /// Checks a flat spec netlist against a flat or hierarchical
    /// implementation. The two sides are extracted concurrently when the
    /// thread budget allows, and the verdict carries counterexamples on
    /// inequivalence.
    ///
    /// When the word-level pipeline cannot decide — a Case-2 residual on a
    /// large field, or budget exhaustion — the query automatically falls
    /// back to the SAT miter check with whatever wall clock remains of the
    /// session budget, so every query yields a *sound* verdict: proven
    /// equivalent, refuted with a counterexample, or `Unknown` naming the
    /// exhausted resource.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] from the underlying extraction (budget exhaustion
    /// is *not* an error here: it degrades into the SAT fallback).
    pub fn check<'a>(
        &self,
        spec: &Netlist,
        impl_: impl Into<Circuit<'a>>,
    ) -> Result<EquivReport, CoreError> {
        let impl_ = impl_.into();
        let (collector, mut options, _mem) = self.query_setup();
        let root = options.telemetry.span_labeled(Phase::Check, spec.name());
        options.telemetry = root.telemetry();
        let snapshot = |root: crate::telemetry::Span| {
            let _ = root.finish();
            collector.as_ref().map(|c| c.snapshot())
        };
        // The full budget spans the whole ladder; the word-level phase is
        // run under half the wall clock so the SAT fallback always has
        // room. Work caps bound only the word-level algebra (the SAT rung
        // polls wall/cancellation, keeping work-cap runs deterministic).
        let spec_budget = self.options.budget;
        // The SAT rung shares the wall clock but gets its own cancellation
        // flag and no work cap: a tripped word-level cap must not poison
        // the fallback that exists to absorb it.
        let sat_budget = self.observed(
            BudgetSpec {
                work: None,
                ..spec_budget
            }
            .start(),
        );
        let word_budget = self.observed(match spec_budget.wall {
            Some(w) => BudgetSpec {
                wall: Some(w / 2),
                ..spec_budget
            }
            .start(),
            None => spec_budget.start(),
        });
        let provider = self.provider.as_deref().unwrap_or(&DirectExtract);
        let word = match impl_ {
            Circuit::Flat(nl) => check_equivalence_budgeted_with(
                provider,
                spec,
                nl,
                &self.ctx,
                &options,
                &word_budget,
            ),
            Circuit::Hier(design) => check_equivalence_hier_budgeted_with(
                provider,
                spec,
                design,
                &self.ctx,
                &options,
                &word_budget,
            ),
        };
        let (word_report, reason) = match word {
            Ok(mut r) => match &r.verdict {
                Verdict::Unknown { reason } => {
                    let reason = reason.clone();
                    (Some(r), reason)
                }
                _ => {
                    r.trace = snapshot(root);
                    return Ok(r);
                }
            },
            Err(e @ CoreError::BudgetExhausted { .. }) => (None, e.to_string()),
            Err(e) => return Err(e),
        };
        // SAT fallback rung: the miter decides what the word level could
        // not, on flattened netlists, under the remaining wall clock.
        let flat_impl;
        let impl_nl: &Netlist = match impl_ {
            Circuit::Flat(nl) => nl,
            Circuit::Hier(design) => {
                flat_impl = design.flatten();
                &flat_impl
            }
        };
        let sat = check_equivalence_sat_traced(
            spec,
            impl_nl,
            self.sat_conflicts,
            &sat_budget,
            &options.telemetry,
        );
        let verdict = match sat.verdict {
            SatVerdict::Equivalent => Verdict::EquivalentBySat {
                conflicts: sat.stats.conflicts,
            },
            SatVerdict::Counterexample(bits) => Verdict::InequivalentBySat {
                counterexample: input_words_from_bits(&self.ctx, spec, &bits),
                conflicts: sat.stats.conflicts,
            },
            SatVerdict::Unknown(i) => Verdict::Unknown {
                reason: format!("{reason}; SAT fallback also inconclusive: {i}"),
            },
        };
        let (spec_stats, impl_stats) = match word_report {
            Some(r) => (r.spec_stats, r.impl_stats),
            None => Default::default(),
        };
        Ok(EquivReport {
            verdict,
            spec_stats,
            impl_stats,
            sat: Some(SatStats {
                conflicts: sat.stats.conflicts,
                decisions: sat.stats.decisions,
                propagations: sat.stats.propagations,
                restarts: sat.stats.restarts,
                learned: sat.stats.learned,
                cnf_vars: sat.cnf_vars as usize,
                cnf_clauses: sat.cnf_clauses,
            }),
            trace: snapshot(root),
        })
    }
}

/// Decodes a SAT counterexample (all primary input bits, word declaration
/// order, LSB first) into one field element per input word.
fn input_words_from_bits(ctx: &GfContext, spec: &Netlist, bits: &[bool]) -> Vec<Gf> {
    let mut out = Vec::new();
    let mut off = 0;
    for w in spec.input_words() {
        out.push(ctx.from_bits(&bits[off..off + w.width()]));
        off += w.width();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
    use crate::field::nist::irreducible_polynomial;
    use crate::netlist::mutate::inject_random_bug;

    fn f16() -> Arc<GfContext> {
        GfContext::shared(irreducible_polynomial(4).unwrap()).unwrap()
    }

    #[test]
    fn extract_dispatches_on_argument_type() {
        let ctx = f16();
        let v = Verifier::new(&ctx);
        let flat = v.extract(&mastrovito_multiplier(&ctx)).unwrap();
        assert!(flat.as_flat().is_some());
        assert_eq!(format!("{}", flat.function().unwrap().display()), "A*B");
        let hier = v.extract(&montgomery_multiplier_hier(&ctx)).unwrap();
        assert!(hier.as_hier().is_some());
        assert_eq!(format!("{}", hier.function().unwrap().display()), "A*B");
    }

    #[test]
    fn check_flat_and_hier() {
        let ctx = f16();
        let v = Verifier::new(&ctx).threads(2);
        let spec = mastrovito_multiplier(&ctx);
        let report = v.check(&spec, &montgomery_multiplier_hier(&ctx)).unwrap();
        assert!(report.verdict.is_equivalent());
        let (buggy, _) = inject_random_bug(&spec, 1);
        let report = v.check(&spec, &buggy).unwrap();
        assert!(!report.verdict.is_equivalent());
    }

    #[test]
    fn hier_stats_aggregate_blocks() {
        let ctx = f16();
        let report = Verifier::new(&ctx)
            .extract(&montgomery_multiplier_hier(&ctx))
            .unwrap();
        let stats = report.stats();
        assert!(stats.gates > 0);
        assert!(stats.reduction_steps > 0);
    }
}
