//! The one-line import for typical GFAB use:
//!
//! ```
//! use gfab::prelude::*;
//!
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let mult = gfab::circuits::mastrovito_multiplier(&ctx);
//! let report = Verifier::new(&ctx).extract(&mult).unwrap();
//! assert_eq!(format!("{}", report.function().unwrap().display()), "A*B");
//! ```
//!
//! Re-exports the session API ([`Verifier`]), the batch engine
//! ([`Engine`] and its query/report types), the circuit views, the
//! report types with their verdicts, and the two field primitives
//! everything starts from ([`GfContext`], [`Gf2Poly`]).

pub use crate::core::equiv::{EquivReport, Verdict};
pub use crate::core::hier::HierExtraction;
pub use crate::core::{
    ExtractOptions, Extraction, ExtractionResult, ExtractionStats, WordFunction,
};
pub use crate::engine::{
    BatchOp, BatchQuery, BatchReport, Engine, EngineConfig, OwnedCircuit, QueryOutcome, QueryResult,
};
pub use crate::field::{Gf, Gf2Poly, GfContext};
pub use crate::netlist::hierarchy::HierDesign;
pub use crate::netlist::Netlist;
pub use crate::verifier::{Circuit, ExtractOutcome, ExtractReport, Verifier};
