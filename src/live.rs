//! Live event streaming for the CLI: the `--progress` board, the
//! `--events` NDJSON tap, and the `gfab watch` ledger follower.
//!
//! The hot path publishes into a bounded [`EventBus`] and never blocks;
//! everything here runs on a dedicated reporter thread that drains the
//! receiving half. Rendering cadence is pure wall clock — events carry
//! deterministic work-unit totals, but *when* the board repaints has no
//! effect on any counter or verdict.

use gfab::telemetry::events::{events_footer, events_header};
use gfab::telemetry::{EventBus, EventKind, EventReceiver, Recv};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on the in-flight event queue. Deep enough that a
/// healthy reporter never drops, small enough that a wedged one cannot
/// buffer unbounded memory; override with `--events-cap`.
const DEFAULT_EVENT_CAP: usize = 4096;

/// How often the reporter repaints, and the drain-poll granularity.
const RENDER_EVERY_ANSI: Duration = Duration::from_millis(100);
const RENDER_EVERY_PLAIN: Duration = Duration::from_millis(250);
const POLL: Duration = Duration::from_millis(50);

/// The live-output selection shared by `extract`, `equiv`, `batch` and
/// `fuzz`: `--progress`, `--events FILE|-`, `--events-cap N`.
pub struct LiveArgs {
    progress: bool,
    events: Option<String>,
    cap: usize,
}

impl LiveArgs {
    pub fn parse(rest: &[String]) -> Result<LiveArgs, String> {
        let cap = match crate::flag_value(rest, "--events-cap")? {
            Some(v) => v
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --events-cap value: {v}"))?,
            None => DEFAULT_EVENT_CAP,
        };
        Ok(LiveArgs {
            progress: crate::has_flag(rest, "--progress"),
            events: crate::flag_value(rest, "--events")?.cloned(),
            cap,
        })
    }

    /// Whether any live sink was requested.
    pub fn enabled(&self) -> bool {
        self.progress || self.events.is_some()
    }

    /// Builds the event channel and starts the reporter thread; with
    /// neither flag the reporter is an inert no-op carrying a disabled
    /// bus (the hot path pays one `Option` branch).
    pub fn start(&self) -> Result<LiveReporter, String> {
        if !self.enabled() {
            return Ok(LiveReporter {
                bus: EventBus::disabled(),
                state: None,
            });
        }
        let sink = match self.events.as_deref() {
            None => None,
            Some("-") => Some(EventSink::stdout()),
            Some(path) => Some(EventSink::file(path)?),
        };
        let board = self.progress.then(Board::new);
        let (bus, rx) = EventBus::bounded(self.cap);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gfab-live".into())
            .spawn(move || report_loop(&rx, sink, board, &thread_stop))
            .map_err(|e| format!("cannot spawn reporter thread: {e}"))?;
        Ok(LiveReporter {
            bus,
            state: Some(ReporterState { stop, handle }),
        })
    }
}

struct ReporterState {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Result<u64, String>>,
}

/// Owns the reporter thread for one query/command lifetime. Callers
/// clone [`LiveReporter::bus`] into the library layer, run the work,
/// then call [`LiveReporter::finish`] to drain and shut down.
pub struct LiveReporter {
    bus: EventBus,
    state: Option<ReporterState>,
}

impl LiveReporter {
    /// The publishing half to hand to the library layer (disabled when
    /// no live sink was requested).
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Stops the reporter after it drains everything already published.
    /// Reports the backpressure drop count on stderr when non-zero —
    /// the stream's footer records the same number.
    pub fn finish(self) -> Result<(), String> {
        let Some(st) = self.state else {
            return Ok(());
        };
        // Shutdown is flag-based, not disconnect-based: library structs
        // (Verifier, EngineConfig, FuzzConfig) hold bus clones that
        // outlive the query, so the channel never disconnects here.
        st.stop.store(true, Ordering::Relaxed);
        st.handle
            .join()
            .map_err(|_| "event reporter thread panicked".to_string())??;
        let dropped = self.bus.dropped();
        if dropped > 0 {
            eprintln!("events: {dropped} event(s) dropped under backpressure (raise --events-cap)");
        }
        Ok(())
    }
}

/// The reporter thread: drain events into the NDJSON sink and/or the
/// progress board until the stop flag is raised and the queue is dry.
/// Returns the number of event lines written.
fn report_loop(
    rx: &EventReceiver,
    mut sink: Option<EventSink>,
    mut board: Option<Board>,
    stop: &AtomicBool,
) -> Result<u64, String> {
    if let Some(s) = &mut sink {
        s.line(&events_header(Some(&gfab::version::version_string())))?;
    }
    let mut written = 0u64;
    loop {
        match rx.recv_timeout(POLL) {
            Recv::Event(ev) => {
                if let Some(s) = &mut sink {
                    s.line(&ev.to_json_line())?;
                    written += 1;
                }
                if let Some(b) = &mut board {
                    b.update(&ev);
                    b.maybe_render();
                }
            }
            // A full poll interval of silence after the stop flag went
            // up means the publisher is done and the queue is drained.
            Recv::Timeout => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(b) = &mut board {
                    b.maybe_render();
                }
            }
            Recv::Closed => break,
        }
    }
    if let Some(s) = &mut sink {
        s.line(&events_footer(written, rx.dropped()))?;
        s.flush()?;
    }
    if let Some(b) = &mut board {
        b.close();
    }
    Ok(written)
}

/// Where `--events` lines go: a buffered file or stdout.
enum EventSink {
    File(std::io::BufWriter<std::fs::File>),
    Stdout,
}

impl EventSink {
    fn file(path: &str) -> Result<EventSink, String> {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        Ok(EventSink::File(std::io::BufWriter::new(f)))
    }

    fn stdout() -> EventSink {
        EventSink::Stdout
    }

    fn line(&mut self, s: &str) -> Result<(), String> {
        let io = |e: std::io::Error| format!("cannot write event stream: {e}");
        match self {
            EventSink::File(w) => writeln!(w, "{s}").map_err(io),
            // One writeln per line under the lock keeps event lines
            // whole even when results interleave on the same stream.
            EventSink::Stdout => writeln!(std::io::stdout().lock(), "{s}").map_err(io),
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        let io = |e: std::io::Error| format!("cannot write event stream: {e}");
        match self {
            EventSink::File(w) => w.flush().map_err(io),
            EventSink::Stdout => std::io::stdout().lock().flush().map_err(io),
        }
    }
}

/// Whether the progress board may use ANSI escapes: both stdio streams
/// must be real terminals, `NO_COLOR` must be unset (or empty), and
/// `TERM` must not be `dumb`. Anything else degrades to plain text.
fn ansi_allowed() -> bool {
    use std::io::IsTerminal;
    if !std::io::stdout().is_terminal() || !std::io::stderr().is_terminal() {
        return false;
    }
    if std::env::var_os("NO_COLOR").is_some_and(|v| !v.is_empty()) {
        return false;
    }
    if std::env::var_os("TERM").is_some_and(|v| v == "dumb") {
        return false;
    }
    true
}

const SPINNER: [char; 4] = ['|', '/', '-', '\\'];

/// The `--progress` renderer: one status line on stderr, rewritten in
/// place at ~10 Hz on a terminal, or appended as periodic plain-text
/// lines (never an escape byte) when piped / `NO_COLOR` / `TERM=dumb`.
struct Board {
    ansi: bool,
    started: Instant,
    last_render: Option<Instant>,
    spin: usize,
    dirty: bool,
    /// Innermost open phase label per publishing thread.
    stack: BTreeMap<u64, Vec<String>>,
    /// Work units banked by closed spans.
    done_work: u64,
    /// Last in-flight progress snapshot per (thread, phase slug).
    live_work: BTreeMap<(u64, &'static str), u64>,
    budget_remaining_us: Option<u64>,
    /// Current query per worker, and finished-query tally.
    running: BTreeMap<u64, String>,
    queries_done: u64,
    /// Which thread updated a phase most recently (display pick).
    last_thread: u64,
}

impl Board {
    fn new() -> Board {
        Board {
            ansi: ansi_allowed(),
            started: Instant::now(),
            last_render: None,
            spin: 0,
            dirty: false,
            stack: BTreeMap::new(),
            done_work: 0,
            live_work: BTreeMap::new(),
            budget_remaining_us: None,
            running: BTreeMap::new(),
            queries_done: 0,
            last_thread: 0,
        }
    }

    fn update(&mut self, ev: &gfab::telemetry::Event) {
        self.dirty = true;
        let t = ev.thread;
        // The board never writes back into the computation: everything
        // below is display state.
        match &ev.kind {
            EventKind::PhaseEnter { phase, label } => {
                let name = match label {
                    Some(l) => format!("{} [{l}]", phase.slug()),
                    None => phase.slug().to_string(),
                };
                self.stack.entry(t).or_default().push(name);
                self.last_thread = t;
            }
            EventKind::PhaseExit {
                phase, work_units, ..
            } => {
                if let Some(stack) = self.stack.get_mut(&t) {
                    stack.pop();
                }
                self.live_work.remove(&(t, phase.slug()));
                self.done_work += work_units;
            }
            EventKind::Progress { phase, work_units } => {
                self.live_work.insert((t, phase.slug()), *work_units);
                self.last_thread = t;
            }
            EventKind::BudgetTick { remaining_us, .. } => {
                self.budget_remaining_us = *remaining_us;
            }
            EventKind::QueryStart { query, worker } => {
                self.running.insert(*worker, query.clone());
            }
            EventKind::QueryDone { worker, .. } => {
                self.running.remove(worker);
                self.queries_done += 1;
            }
        }
    }

    fn maybe_render(&mut self) {
        if !self.dirty {
            return;
        }
        let every = if self.ansi {
            RENDER_EVERY_ANSI
        } else {
            RENDER_EVERY_PLAIN
        };
        if self.last_render.is_some_and(|t| t.elapsed() < every) {
            return;
        }
        self.last_render = Some(Instant::now());
        self.dirty = false;
        let line = self.status_line();
        if self.ansi {
            self.spin = (self.spin + 1) % SPINNER.len();
            let clipped: String = line.chars().take(118).collect();
            eprint!("\r\x1b[2K{} {clipped}", SPINNER[self.spin]);
            let _ = std::io::stderr().flush();
        } else {
            eprintln!("progress: {line}");
        }
    }

    /// The current status, without any cursor control.
    fn status_line(&self) -> String {
        let work: u64 = self.done_work + self.live_work.values().sum::<u64>();
        let secs = self.started.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { work as f64 / secs } else { 0.0 };
        let phase = self
            .stack
            .get(&self.last_thread)
            .and_then(|s| s.last())
            .or_else(|| self.stack.values().find_map(|s| s.last()))
            .map_or("idle", String::as_str);
        let mut out = format!("{phase} | work {work} ({rate:.0}/s)");
        if let Some(us) = self.budget_remaining_us {
            out.push_str(&format!(" | budget {:.1}s left", us as f64 / 1e6));
        }
        if self.queries_done > 0 || !self.running.is_empty() {
            out.push_str(&format!(" | {} done", self.queries_done));
            for (w, q) in self.running.iter().take(4) {
                out.push_str(&format!(" w{w}:{q}"));
            }
            if self.running.len() > 4 {
                out.push_str(&format!(" (+{})", self.running.len() - 4));
            }
        }
        out
    }

    /// Final repaint: leave the terminal on a fresh line (ANSI) or emit
    /// one closing plain line, so the next writer starts clean.
    fn close(&mut self) {
        if self.ansi {
            eprint!("\r\x1b[2K");
        }
        eprintln!(
            "progress: {} (done in {:.1?})",
            self.status_line(),
            self.started.elapsed()
        );
        let _ = std::io::stderr().flush();
    }
}

/// `gfab watch LEDGER [--interval D] [--iterations N]`: tail-follow a
/// run ledger, re-rendering a rolling verdict/latency board whenever
/// the file grows. Torn or garbled lines from a concurrently appending
/// writer are skipped (and counted), never fatal.
pub fn cmd_watch(rest: &[String]) -> Result<ExitCode, String> {
    let pos = crate::positional(rest, 1);
    let [path] = pos.as_slice() else {
        return Err("watch needs a ledger file path".into());
    };
    let interval = match crate::flag_value(rest, "--interval")? {
        Some(v) => crate::parse_duration(v)?,
        None => Duration::from_millis(500),
    };
    let iterations: Option<u64> = match crate::flag_value(rest, "--iterations")? {
        Some(v) => Some(
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --iterations value: {v}"))?,
        ),
        None => None,
    };
    let mut last_sig: Option<(usize, usize)> = None;
    let mut round = 0u64;
    loop {
        // A missing file is an empty ledger: watch can start before the
        // writer does.
        let text = std::fs::read_to_string(path.as_str()).unwrap_or_default();
        let (ledger, skipped) = gfab::telemetry::Ledger::parse_lenient(&text);
        let sig = (ledger.rows.len(), skipped);
        if last_sig != Some(sig) {
            last_sig = Some(sig);
            print!("{}", render_watch_board(path, &ledger, skipped));
            let _ = std::io::stdout().flush();
        }
        round += 1;
        if iterations.is_some_and(|n| round >= n) {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(interval);
    }
}

/// One watch repaint: row/run totals, verdict mix, wall-time
/// percentiles, and the most recent rows.
fn render_watch_board(path: &str, ledger: &gfab::telemetry::Ledger, skipped: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let runs: std::collections::BTreeSet<&str> =
        ledger.rows.iter().map(|r| r.run.as_str()).collect();
    let _ = write!(
        out,
        "watch {path}: {} row(s) across {} run(s)",
        ledger.rows.len(),
        runs.len()
    );
    if skipped > 0 {
        let _ = write!(out, ", {skipped} torn line(s) skipped");
    }
    if ledger.torn_tail {
        out.push_str(", torn tail");
    }
    out.push('\n');
    if ledger.rows.is_empty() {
        out.push_str("  (empty — waiting for rows)\n");
        return out;
    }
    let mut verdicts: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &ledger.rows {
        *verdicts.entry(r.verdict.as_str()).or_default() += 1;
    }
    out.push_str("  verdicts:");
    for (v, n) in &verdicts {
        let _ = write!(out, " {v}={n}");
    }
    out.push('\n');
    let mut walls: Vec<u64> = ledger.rows.iter().map(|r| r.wall_us).collect();
    walls.sort_unstable();
    let pct = |p: usize| walls[(walls.len() - 1) * p / 100];
    let _ = writeln!(
        out,
        "  wall us : p50={} p90={} max={}",
        pct(50),
        pct(90),
        pct(100)
    );
    let tail = ledger.rows.len().saturating_sub(5);
    for r in &ledger.rows[tail..] {
        let _ = writeln!(
            out,
            "  {:<24} {:<12} exit={} work={} wall={}us",
            r.query, r.verdict, r.exit, r.work_units, r.wall_us
        );
    }
    out
}
