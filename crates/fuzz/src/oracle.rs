//! The cross-engine differential oracle.
//!
//! Every fuzz specimen is judged three ways and the verdicts are
//! cross-checked:
//!
//! 1. **Simulation ground truth** — exhaustive 64-lane bit-parallel
//!    sweep when the pair has at most [`OracleConfig::exhaustive_bits`]
//!    input bits, otherwise a seeded random sample of
//!    [`OracleConfig::sample_vectors`] patterns.
//! 2. **Word-level abstraction** — [`check_equivalence`] (the paper's
//!    Gröbner-basis extraction), single-threaded, with the Case-2
//!    completion enabled on fields where it is routinely decidable
//!    (`k ≤ 8`) and only *deterministic* structural limits (no wall
//!    clock), so the verdict is a pure function of the specimen.
//! 3. **SAT miter** — [`check_equivalence_sat`] under a deterministic
//!    conflict cap.
//!
//! Any counterexample an engine produces is re-simulated before it is
//! believed; a validated counterexample upgrades a sampled-equal ground
//! truth to *differs*. The oracle then flags four classes of
//! cross-engine trouble ([`FindingClass`]): a verdict contradicting the
//! ground truth without a witness, an equivalence claim on a pair that
//! demonstrably differs, a counterexample that fails simulation, and an
//! `Unknown` where the engine is expected to decide. A capped-out SAT
//! `Unknown` is always an *allowed* outcome — counted, not flagged — and
//! [`word_must_decide`] says when the same grace extends to the word
//! rung (random-structure specimens, or faulted ones an external work
//! cap may cut short).

use gfab_core::equiv::{check_equivalence, Verdict};
use gfab_core::ExtractOptions;
use gfab_field::budget::BudgetSpec;
use gfab_field::{Gf, GfContext, Rng};
use gfab_netlist::sim::{simulate_bits, simulate_wide, simulate_word};
use gfab_netlist::Netlist;
use gfab_sat::equiv::{check_equivalence_sat, SatVerdict};
use std::fmt;
use std::sync::Arc;

/// Oracle resource parameters. All deterministic: no wall-clock limit
/// participates in any verdict.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Exhaustive simulation up to this many total input bits; larger
    /// pairs get a seeded random sample instead.
    pub exhaustive_bits: usize,
    /// Number of random patterns in the sampled ground truth.
    pub sample_vectors: u64,
    /// Conflict cap for the SAT rung (capped-out = allowed `Unknown`).
    pub sat_conflicts: u64,
    /// Optional work-unit cap for the word-level rung. `None` (the
    /// default) lets extraction run to its structural limits.
    pub word_work_cap: Option<u64>,
    /// Seed for the sampled ground-truth sweep.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            exhaustive_bits: 16,
            sample_vectors: 4096,
            sat_conflicts: 20_000,
            word_work_cap: None,
            seed: 0,
        }
    }
}

/// A class of cross-engine disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingClass {
    /// Engines (or an engine and the ground truth) reached contradictory
    /// verdicts with no witness to arbitrate.
    Disagreement,
    /// An engine claimed equivalence on a pair that demonstrably differs.
    Escape,
    /// An engine produced a counterexample that simulation rejects.
    BogusCounterexample,
    /// An engine answered `Unknown` where it is expected to decide.
    UnexpectedUnknown,
}

impl FindingClass {
    /// Stable kebab-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Disagreement => "disagreement",
            FindingClass::Escape => "escape",
            FindingClass::BogusCounterexample => "bogus-counterexample",
            FindingClass::UnexpectedUnknown => "unexpected-unknown",
        }
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One confirmed cross-engine problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The finding class.
    pub class: FindingClass,
    /// The engine that misbehaved (`"word"` or `"sat"`).
    pub engine: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.class, self.engine, self.detail)
    }
}

/// The oracle's combined judgement of one specimen.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Whether the pair demonstrably computes different functions
    /// (exhaustive proof, or a validated concrete witness).
    pub truth_differs: bool,
    /// Whether the ground truth was exhaustive (vs. sampled).
    pub truth_exhaustive: bool,
    /// A distinguishing input-bit assignment, when one is known
    /// (`Netlist::input_bits` order). Present whenever `truth_differs`
    /// came from simulation or a bit-validated counterexample.
    pub witness: Option<Vec<bool>>,
    /// Cross-engine problems found.
    pub findings: Vec<Finding>,
    /// The word-level rung answered `Unknown` (allowed or not).
    pub word_unknown: bool,
    /// The SAT rung capped out.
    pub sat_unknown: bool,
    /// Deterministic effort: simulation rounds + extraction reduction
    /// steps + gate counts + SAT conflicts.
    pub work_units: u64,
}

/// Lane masks for the 64-pattern-per-round exhaustive sweep: input bit
/// `i < 6` of pattern `base + lane` is bit `i` of `lane`.
const LANE: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Simulates both sides on 64 packed patterns and returns the XOR
/// difference mask over all output bits.
fn wide_diff(spec: &Netlist, impl_: &Netlist, inputs: &[u64]) -> u64 {
    let sv = simulate_wide(spec, inputs);
    let iv = simulate_wide(impl_, inputs);
    let sb = &spec.output_word().bits;
    let ib = &impl_.output_word().bits;
    assert_eq!(sb.len(), ib.len(), "output width mismatch");
    sb.iter()
        .zip(ib)
        .fold(0u64, |d, (s, i)| d | (sv[s.index()] ^ iv[i.index()]))
}

/// Exhaustive ground truth over all `2^n` patterns (`n ≤ 63` assumed,
/// enforced by the caller's `exhaustive_bits` cap). Returns the lowest
/// differing pattern of the first differing 64-block, plus rounds spent.
fn exhaustive_diff(spec: &Netlist, impl_: &Netlist) -> (Option<Vec<bool>>, u64) {
    let n = spec.input_bits().len();
    let patterns = 1u64 << n;
    let mut rounds = 0u64;
    let mut base = 0u64;
    while base < patterns {
        let lanes = (patterns - base).min(64);
        let inputs: Vec<u64> = (0..n)
            .map(|i| {
                if i < 6 {
                    LANE[i]
                } else if (base >> i) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();
        let valid = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let diff = wide_diff(spec, impl_, &inputs) & valid;
        rounds += 1;
        if diff != 0 {
            let pattern = base + u64::from(diff.trailing_zeros());
            let witness = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            return (Some(witness), rounds);
        }
        base += 64;
    }
    (None, rounds)
}

/// Sampled ground truth: `vectors` seeded random patterns, 64 per round.
fn sampled_diff(
    spec: &Netlist,
    impl_: &Netlist,
    vectors: u64,
    seed: u64,
) -> (Option<Vec<bool>>, u64) {
    let n = spec.input_bits().len();
    let mut rng = Rng::seed_from_u64(seed ^ 0x6772_6f75_6e64_7472); // "groundtr"
    let rounds = vectors.div_ceil(64).max(1);
    for r in 0..rounds {
        let inputs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let diff = wide_diff(spec, impl_, &inputs);
        if diff != 0 {
            let lane = diff.trailing_zeros();
            let witness = inputs.iter().map(|m| (m >> lane) & 1 == 1).collect();
            return (Some(witness), r + 1);
        }
    }
    (None, rounds)
}

/// Whether `bits` distinguishes the two netlists (bit-level simulation).
fn bits_distinguish(spec: &Netlist, impl_: &Netlist, bits: &[bool]) -> bool {
    let sv = simulate_bits(spec, bits);
    let iv = simulate_bits(impl_, bits);
    spec.output_word()
        .bits
        .iter()
        .zip(&impl_.output_word().bits)
        .any(|(s, i)| sv[s.index()] != iv[i.index()])
}

/// Result of re-simulating an engine's counterexample.
enum CexCheck {
    /// Distinguishes at the bit level; the payload is the bit witness.
    BitWitness(Vec<bool>),
    /// Distinguishes at the word level only (a narrowed input word hides
    /// the high bits of the element) — valid, but no bit witness.
    WordOnly,
    /// Does not distinguish at all.
    Bogus,
}

/// Validates a word-domain counterexample (one `Gf` per input word).
fn check_word_cex(spec: &Netlist, impl_: &Netlist, ctx: &GfContext, cex: &[Gf]) -> CexCheck {
    let mut bits = Vec::new();
    for (w, v) in spec.input_words().iter().zip(cex) {
        let mut vb = ctx.to_bits(v);
        vb.resize(w.width(), false);
        bits.extend(vb);
    }
    if bits_distinguish(spec, impl_, &bits) {
        return CexCheck::BitWitness(bits);
    }
    if simulate_word(spec, ctx, cex) != simulate_word(impl_, ctx, cex) {
        return CexCheck::WordOnly;
    }
    CexCheck::Bogus
}

/// One engine's digested claim about the specimen.
struct Claim {
    engine: &'static str,
    /// `Some(true)` = equivalent, `Some(false)` = inequivalent, `None` =
    /// unknown.
    equal: Option<bool>,
    /// Bit-validated distinguishing assignment, if the engine gave one.
    witness: Option<Vec<bool>>,
    /// The engine's counterexample validated at the word level only.
    word_only_cex: bool,
    /// The engine's counterexample failed validation.
    bogus: Option<String>,
    /// Reason text when `equal` is `None`.
    unknown: Option<String>,
}

impl Claim {
    fn unknown(engine: &'static str, reason: String) -> Claim {
        Claim {
            engine,
            equal: None,
            witness: None,
            word_only_cex: false,
            bogus: None,
            unknown: Some(reason),
        }
    }
}

/// The word-rung `Unknown` policy: whether the word-level engine is
/// expected to reach a verdict on a specimen.
///
/// Pairs produced by a word-level *generator* (every architecture except
/// the structurally-random one) compute genuine word polynomials, so
/// when unfaulted the Case-1 extraction must decide them at any `k` —
/// and comfortably inside any sane work cap. A *faulted* generator pair
/// is still decidable through the Case-2 completion when `k` is small,
/// but only if no external work cap may cut the completion short.
/// Structurally random netlists can legitimately exhaust the Gröbner
/// engine even unfaulted, so nothing is expected of them.
#[must_use]
pub fn word_must_decide(generator: bool, faulted: bool, k: usize, work_cap: Option<u64>) -> bool {
    generator && (!faulted || (k <= 8 && work_cap.is_none()))
}

/// Runs the full three-rung differential oracle on one specimen pair.
///
/// `expect_word_verdict` sets the `Unknown` policy for the word-level
/// rung (see [`word_must_decide`]): when `true`, a word-level `Unknown`
/// is flagged as [`FindingClass::UnexpectedUnknown`]; when `false` it is
/// counted but allowed. A capped-out SAT rung is always allowed.
///
/// # Panics
///
/// Panics if the two netlists disagree on input/output signature — a
/// harness bug, not a specimen bug.
pub fn run_oracle(
    spec: &Netlist,
    impl_: &Netlist,
    ctx: &Arc<GfContext>,
    expect_word_verdict: bool,
    cfg: &OracleConfig,
) -> OracleOutcome {
    let total_bits = spec.input_bits().len();
    assert_eq!(
        total_bits,
        impl_.input_bits().len(),
        "input signature mismatch"
    );
    let mut work = 0u64;

    // Rung 1: simulation ground truth.
    let truth_exhaustive = total_bits <= cfg.exhaustive_bits;
    let (sim_witness, rounds) = if truth_exhaustive {
        exhaustive_diff(spec, impl_)
    } else {
        sampled_diff(spec, impl_, cfg.sample_vectors, cfg.seed)
    };
    work += rounds;

    // Rung 2: word-level abstraction (deterministic limits only).
    let mut options = ExtractOptions {
        complete_case2: ctx.k() <= 8,
        threads: 1,
        ..ExtractOptions::default()
    };
    options.gb_limits.max_wall_ms = 0;
    if let Some(cap) = cfg.word_work_cap {
        options.budget = BudgetSpec::work(cap);
    }
    let word_claim = match check_equivalence(spec, impl_, ctx, &options) {
        Ok(report) => {
            work += report.spec_stats.reduction_steps
                + report.impl_stats.reduction_steps
                + report.spec_stats.gates as u64
                + report.impl_stats.gates as u64;
            let digest = |cex: Option<&[Gf]>, equal: Option<bool>| match cex {
                Some(c) => match check_word_cex(spec, impl_, ctx, c) {
                    CexCheck::BitWitness(w) => Claim {
                        engine: "word",
                        equal,
                        witness: Some(w),
                        word_only_cex: false,
                        bogus: None,
                        unknown: None,
                    },
                    CexCheck::WordOnly => Claim {
                        engine: "word",
                        equal,
                        witness: None,
                        word_only_cex: true,
                        bogus: None,
                        unknown: None,
                    },
                    CexCheck::Bogus => Claim {
                        engine: "word",
                        equal,
                        witness: None,
                        word_only_cex: false,
                        bogus: Some(format!("counterexample {c:?} fails re-simulation")),
                        unknown: None,
                    },
                },
                None => Claim {
                    engine: "word",
                    equal,
                    witness: None,
                    word_only_cex: false,
                    bogus: None,
                    unknown: None,
                },
            };
            match &report.verdict {
                Verdict::Equivalent { .. } | Verdict::EquivalentBySat { .. } => {
                    digest(None, Some(true))
                }
                Verdict::Inequivalent { counterexample, .. } => {
                    digest(counterexample.as_deref(), Some(false))
                }
                Verdict::InequivalentBySimulation { counterexample }
                | Verdict::InequivalentBySat { counterexample, .. } => {
                    digest(Some(counterexample), Some(false))
                }
                Verdict::Unknown { reason } => Claim::unknown("word", reason.to_string()),
            }
        }
        Err(e) => Claim::unknown("word", format!("error: {e}")),
    };

    // Rung 3: SAT miter under a deterministic conflict cap.
    let sat_report = check_equivalence_sat(spec, impl_, cfg.sat_conflicts);
    work += sat_report.stats.conflicts;
    let sat_claim = match &sat_report.verdict {
        SatVerdict::Equivalent => Claim {
            engine: "sat",
            equal: Some(true),
            witness: None,
            word_only_cex: false,
            bogus: None,
            unknown: None,
        },
        SatVerdict::Counterexample(bits) => {
            if bits_distinguish(spec, impl_, bits) {
                Claim {
                    engine: "sat",
                    equal: Some(false),
                    witness: Some(bits.clone()),
                    word_only_cex: false,
                    bogus: None,
                    unknown: None,
                }
            } else {
                Claim {
                    engine: "sat",
                    equal: Some(false),
                    witness: None,
                    word_only_cex: false,
                    bogus: Some("SAT model fails re-simulation".to_string()),
                    unknown: None,
                }
            }
        }
        SatVerdict::Unknown(i) => Claim::unknown("sat", i.to_string()),
    };

    // Synthesis: settle the ground truth, then judge each claim.
    let claims = [word_claim, sat_claim];
    let mut truth_differs = sim_witness.is_some();
    let mut witness = sim_witness;
    for c in &claims {
        if c.witness.is_some() || c.word_only_cex {
            truth_differs = true;
        }
        if witness.is_none() {
            witness = c.witness.clone();
        }
    }

    let mut findings = Vec::new();
    let mut word_unknown = false;
    let mut sat_unknown = false;
    for c in &claims {
        if let Some(b) = &c.bogus {
            findings.push(Finding {
                class: FindingClass::BogusCounterexample,
                engine: c.engine,
                detail: b.clone(),
            });
        }
        match c.equal {
            Some(true) if truth_differs => findings.push(Finding {
                class: FindingClass::Escape,
                engine: c.engine,
                detail: "claims equivalent, but the pair demonstrably differs".to_string(),
            }),
            Some(false) if !truth_differs && c.bogus.is_none() => findings.push(Finding {
                class: FindingClass::Disagreement,
                engine: c.engine,
                detail: format!(
                    "claims inequivalent without a witness, but the {} ground truth found none",
                    if truth_exhaustive {
                        "exhaustive"
                    } else {
                        "sampled"
                    }
                ),
            }),
            None => {
                let reason = c.unknown.clone().unwrap_or_default();
                if c.engine == "word" {
                    word_unknown = true;
                    if expect_word_verdict {
                        findings.push(Finding {
                            class: FindingClass::UnexpectedUnknown,
                            engine: "word",
                            detail: format!("unknown ({reason}) where a verdict is expected"),
                        });
                    }
                } else {
                    // A capped-out SAT rung is always an allowed outcome.
                    sat_unknown = true;
                }
            }
            _ => {}
        }
    }

    OracleOutcome {
        truth_differs,
        truth_exhaustive,
        witness,
        findings,
        word_unknown,
        sat_unknown,
        work_units: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::mastrovito_multiplier;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_netlist::mutate;

    fn field(k: usize) -> Arc<GfContext> {
        GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
    }

    #[test]
    fn clean_pair_is_clean() {
        let ctx = field(4);
        let nl = mastrovito_multiplier(&ctx);
        let out = run_oracle(&nl, &nl.clone(), &ctx, true, &OracleConfig::default());
        assert!(!out.truth_differs);
        assert!(out.truth_exhaustive);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(!out.word_unknown);
        assert!(out.work_units > 0);
    }

    #[test]
    fn mutated_pair_is_caught_with_a_valid_witness() {
        let ctx = field(4);
        let spec = mastrovito_multiplier(&ctx);
        let (bad, _) = mutate::inject_random_bug(&spec, 11);
        let out = run_oracle(&spec, &bad, &ctx, true, &OracleConfig::default());
        assert!(out.truth_differs);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let w = out.witness.expect("witness");
        assert!(bits_distinguish(&spec, &bad, &w));
    }

    #[test]
    fn sampled_ground_truth_kicks_in_past_the_exhaustive_cap() {
        let ctx = field(9); // 18 input bits > 16
        let spec = mastrovito_multiplier(&ctx);
        let (bad, _) = mutate::inject_random_bug(&spec, 3);
        // Faulted past the completion range: the word rung need not decide.
        let expect = word_must_decide(true, true, 9, None);
        assert!(!expect);
        let out = run_oracle(&spec, &bad, &ctx, expect, &OracleConfig::default());
        assert!(!out.truth_exhaustive);
        assert!(out.truth_differs);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn oracle_is_deterministic() {
        let ctx = field(5);
        let spec = mastrovito_multiplier(&ctx);
        let (bad, _) = mutate::inject_random_bug(&spec, 5);
        let a = run_oracle(&spec, &bad, &ctx, true, &OracleConfig::default());
        let b = run_oracle(&spec, &bad, &ctx, true, &OracleConfig::default());
        assert_eq!(a.witness, b.witness);
        assert_eq!(a.work_units, b.work_units);
        assert_eq!(a.truth_differs, b.truth_differs);
    }
}
