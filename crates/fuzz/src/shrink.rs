//! Deterministic delta-debugging of failing specimens.
//!
//! Given a *(spec, impl)* pair and a concrete witness input on which the
//! two differ, the shrinker greedily minimises the pair while preserving
//! the property *"the outputs differ on the (projected) witness"* — a
//! pure bit-level predicate, so the same shrink runs identically for
//! every fault kind, including wrong-modulus pairs where the two sides
//! were built over different fields.
//!
//! Three reductions run to fixpoint under one candidate-evaluation
//! budget:
//!
//! 1. **Output restriction** (once, up front): both output words are
//!    restricted to the first output bit that differs under the witness,
//!    so dead logic behind the agreeing bits can be eliminated.
//! 2. **Input-bit fixing**: each input bit is tentatively frozen to its
//!    witness value (the bit leaves the input word and becomes a constant
//!    driver), keeping at least one bit per word so the pair remains a
//!    word-level problem.
//! 3. **Gate bypass**: each gate is tentatively replaced by a buffer of
//!    one of its inputs or by the constant it evaluates to under the
//!    witness; a candidate is kept only when the optimized netlist has
//!    strictly fewer gates.
//!
//! Every acceptance strictly decreases (input bits, total gates)
//! lexicographically, so the loop is monotone and terminates; the budget
//! bounds the number of candidate evaluations regardless.

use gfab_netlist::opt::optimize;
use gfab_netlist::sim::simulate_bits;
use gfab_netlist::{GateId, GateKind, NetId, Netlist};

/// Shrinking resource limits.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Maximum candidate reductions to evaluate (each costs two
    /// simulations and an optimize pass).
    pub max_candidates: u64,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_candidates: 3000,
        }
    }
}

/// The minimised pair and the effort spent reaching it.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// Minimised spec side.
    pub spec: Netlist,
    /// Minimised impl side.
    pub impl_: Netlist,
    /// The projected witness: the surviving input bits, in
    /// `Netlist::input_bits` order, on which the two sides still differ.
    pub witness: Vec<bool>,
    /// Candidate reductions evaluated.
    pub candidates: u64,
    /// Candidate reductions accepted.
    pub accepted: u64,
}

impl ShrinkResult {
    /// Total gates across both sides.
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.spec.num_gates() + self.impl_.num_gates()
    }
}

/// Whether the two sides' output words differ on `bits`.
fn differs(spec: &Netlist, impl_: &Netlist, bits: &[bool]) -> bool {
    let sv = simulate_bits(spec, bits);
    let iv = simulate_bits(impl_, bits);
    spec.output_word()
        .bits
        .iter()
        .zip(&impl_.output_word().bits)
        .any(|(s, i)| sv[s.index()] != iv[i.index()])
}

/// Clone of `nl` with the output word restricted to bit `bit`.
fn restrict_output(nl: &Netlist, bit: usize) -> Netlist {
    let mut out = nl.clone();
    let word = nl.output_word();
    out.set_output_word(word.name.clone(), vec![word.bits[bit]]);
    out
}

/// Rebuild of `nl` with input bit `bit_idx` of word `word_idx` removed
/// from the word and driven by a constant `value` instead. Net ids are
/// preserved, so gates copy over verbatim.
fn fix_input_bit(nl: &Netlist, word_idx: usize, bit_idx: usize, value: bool) -> Netlist {
    let mut out = Netlist::new(nl.name());
    for _ in 0..nl.num_nets() {
        out.add_net();
    }
    for (wi, w) in nl.input_words().iter().enumerate() {
        let bits: Vec<NetId> = w
            .bits
            .iter()
            .enumerate()
            .filter(|&(bi, _)| !(wi == word_idx && bi == bit_idx))
            .map(|(_, &n)| n)
            .collect();
        out.add_input_word_from_nets(w.name.clone(), bits);
    }
    let fixed = nl.input_words()[word_idx].bits[bit_idx];
    let kind = if value {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    out.push_gate(kind, Vec::new(), fixed);
    for g in nl.gates() {
        out.push_gate(g.kind, g.inputs.clone(), g.output);
    }
    let ow = nl.output_word();
    out.set_output_word(ow.name.clone(), ow.bits.clone());
    out
}

/// Flat position of bit `bit_idx` of word `word_idx` in
/// `Netlist::input_bits` order.
fn flat_position(nl: &Netlist, word_idx: usize, bit_idx: usize) -> usize {
    nl.input_words()[..word_idx]
        .iter()
        .map(|w| w.width())
        .sum::<usize>()
        + bit_idx
}

/// Minimises a failing pair while preserving "outputs differ on the
/// witness". Deterministic; monotone in gate count; terminates within
/// `cfg.max_candidates` candidate evaluations.
///
/// # Panics
///
/// Panics if `witness` does not distinguish the pair to begin with.
pub fn shrink_pair(
    spec0: &Netlist,
    impl0: &Netlist,
    witness: &[bool],
    cfg: &ShrinkConfig,
) -> ShrinkResult {
    assert!(
        differs(spec0, impl0, witness),
        "witness does not distinguish the pair"
    );
    let mut candidates = 0u64;
    let mut accepted = 0u64;

    // Output restriction: keep only the first differing output bit.
    let sv = simulate_bits(spec0, witness);
    let iv = simulate_bits(impl0, witness);
    let diff_bit = spec0
        .output_word()
        .bits
        .iter()
        .zip(&impl0.output_word().bits)
        .position(|(s, i)| sv[s.index()] != iv[i.index()])
        .expect("a differing output bit exists");
    let mut spec = optimize(&restrict_output(spec0, diff_bit)).0;
    let mut impl_ = optimize(&restrict_output(impl0, diff_bit)).0;
    let mut wit = witness.to_vec();
    debug_assert!(differs(&spec, &impl_, &wit));

    loop {
        let mut progress = false;

        // Input-bit fixing: freeze bits to their witness values, high
        // bits first, keeping every word at least one bit wide. Restart
        // the scan after each acceptance (positions shift).
        'fixing: loop {
            let widths: Vec<usize> = spec.input_words().iter().map(|w| w.width()).collect();
            for (wi, &width) in widths.iter().enumerate() {
                if width <= 1 {
                    continue;
                }
                for bi in (0..width).rev() {
                    if candidates >= cfg.max_candidates {
                        break 'fixing;
                    }
                    candidates += 1;
                    let pos = flat_position(&spec, wi, bi);
                    let value = wit[pos];
                    let s2 = optimize(&fix_input_bit(&spec, wi, bi, value)).0;
                    let i2 = optimize(&fix_input_bit(&impl_, wi, bi, value)).0;
                    let mut w2 = wit.clone();
                    w2.remove(pos);
                    if differs(&s2, &i2, &w2) {
                        spec = s2;
                        impl_ = i2;
                        wit = w2;
                        accepted += 1;
                        progress = true;
                        continue 'fixing;
                    }
                }
            }
            break;
        }

        // Gate bypass, each side independently.
        for side in 0..2 {
            'bypass: loop {
                let nl = if side == 0 { &spec } else { &impl_ };
                let vals = simulate_bits(nl, &wit);
                let mut replacement: Option<Netlist> = None;
                'scan: for gi in (0..nl.num_gates()).rev() {
                    let g = nl.gate(GateId(gi as u32));
                    let out_val = vals[g.output.index()];
                    let const_kind = if out_val {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    let mut cands: Vec<(GateKind, Vec<NetId>)> = Vec::new();
                    if g.kind != const_kind {
                        cands.push((const_kind, Vec::new()));
                    }
                    if g.kind.arity() == 2 {
                        cands.push((GateKind::Buf, vec![g.inputs[0]]));
                        cands.push((GateKind::Buf, vec![g.inputs[1]]));
                    }
                    for (kind, ins) in cands {
                        if candidates >= cfg.max_candidates {
                            break 'scan;
                        }
                        candidates += 1;
                        let mut trial = nl.clone();
                        trial.replace_gate(GateId(gi as u32), kind, ins);
                        let (t, _) = optimize(&trial);
                        if t.num_gates() >= nl.num_gates() {
                            continue;
                        }
                        let ok = if side == 0 {
                            differs(&t, &impl_, &wit)
                        } else {
                            differs(&spec, &t, &wit)
                        };
                        if ok {
                            replacement = Some(t);
                            break 'scan;
                        }
                    }
                }
                match replacement {
                    Some(t) => {
                        if side == 0 {
                            spec = t;
                        } else {
                            impl_ = t;
                        }
                        accepted += 1;
                        progress = true;
                    }
                    None => break 'bypass,
                }
            }
        }

        if !progress || candidates >= cfg.max_candidates {
            break;
        }
    }

    debug_assert!(differs(&spec, &impl_, &wit));
    ShrinkResult {
        spec,
        impl_,
        witness: wit,
        candidates,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::mastrovito_multiplier;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::GfContext;
    use gfab_netlist::mutate;
    use gfab_netlist::sim::simulate_wide;

    fn failing_pair(k: usize, seed: u64) -> (Netlist, Netlist, Vec<bool>) {
        let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let (bad, _) = mutate::inject_random_bug(&spec, seed);
        // Find a witness by a deterministic wide sweep.
        let n = spec.input_bits().len();
        let mut rng = gfab_field::Rng::seed_from_u64(99);
        loop {
            let inputs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let sv = simulate_wide(&spec, &inputs);
            let iv = simulate_wide(&bad, &inputs);
            let mut diff = 0u64;
            for (s, i) in spec.output_word().bits.iter().zip(&bad.output_word().bits) {
                diff |= sv[s.index()] ^ iv[i.index()];
            }
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let w = inputs.iter().map(|m| (m >> lane) & 1 == 1).collect();
                return (spec, bad, w);
            }
        }
    }

    #[test]
    fn shrink_preserves_the_disagreement_and_reduces_gates() {
        let (spec, bad, w) = failing_pair(6, 42);
        let before = spec.num_gates() + bad.num_gates();
        let r = shrink_pair(&spec, &bad, &w, &ShrinkConfig::default());
        assert!(differs(&r.spec, &r.impl_, &r.witness));
        assert!(r.total_gates() < before);
        assert!(r.total_gates() <= 25, "shrunk to {} gates", r.total_gates());
        r.spec.validate().unwrap();
        r.impl_.validate().unwrap();
    }

    #[test]
    fn shrink_is_deterministic() {
        let (spec, bad, w) = failing_pair(5, 7);
        let a = shrink_pair(&spec, &bad, &w, &ShrinkConfig::default());
        let b = shrink_pair(&spec, &bad, &w, &ShrinkConfig::default());
        assert_eq!(
            gfab_netlist::format::emit(&a.spec),
            gfab_netlist::format::emit(&b.spec)
        );
        assert_eq!(a.witness, b.witness);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn words_keep_at_least_one_bit() {
        let (spec, bad, w) = failing_pair(4, 3);
        let r = shrink_pair(&spec, &bad, &w, &ShrinkConfig::default());
        for word in r.spec.input_words() {
            assert!(word.width() >= 1);
        }
        assert_eq!(
            r.witness.len(),
            r.spec.input_bits().len(),
            "witness tracks the surviving input bits"
        );
    }

    #[test]
    fn candidate_budget_is_respected() {
        let (spec, bad, w) = failing_pair(8, 21);
        let tight = ShrinkConfig { max_candidates: 40 };
        let r = shrink_pair(&spec, &bad, &w, &tight);
        assert!(r.candidates <= 40);
        assert!(differs(&r.spec, &r.impl_, &r.witness));
    }
}
