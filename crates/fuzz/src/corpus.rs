//! The replayable failure corpus.
//!
//! Every caught fault and every cross-engine finding is persisted as one
//! strict-JSON document (`case-NNNNN.json`) containing everything needed
//! to re-run the oracle offline: the producing build's version string,
//! the campaign seed and case index, the field (degree + modulus
//! exponents), the architecture and fault that created the specimen, the
//! classification, the shrunk spec/impl netlists in the text format of
//! [`gfab_netlist::format`], and the distinguishing witness.
//!
//! The schema uses only the JSON subset of [`gfab_telemetry::json`]
//! (objects, arrays, strings, unsigned integers, `null`): the witness is
//! a `"0"`/`"1"` string, never booleans. Files parse with
//! [`parse_document`] and round-trip byte-exactly, which is what the
//! determinism suite compares across thread counts.

use crate::fault::FaultKind;
use gfab_telemetry::json::{parse_document, write_json_string, Json, Obj};

/// One persisted failing specimen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Version string of the build that wrote the case.
    pub producer: String,
    /// Campaign seed the case was found under.
    pub campaign_seed: u64,
    /// Case index within the campaign.
    pub case_index: u64,
    /// Field degree.
    pub k: u64,
    /// Exponents of the (correct) irreducible modulus, ascending.
    pub modulus: Vec<u64>,
    /// Architecture name (see `gfab_circuits::Arch::name`).
    pub arch: String,
    /// Injected fault kind name, when the specimen was faulted.
    pub fault_kind: Option<String>,
    /// Human-readable fault locus.
    pub fault_detail: Option<String>,
    /// `"caught"` (injected fault detected) or `"finding"` (cross-engine
    /// disagreement).
    pub classification: String,
    /// Finding descriptions (empty for plain catches).
    pub findings: Vec<String>,
    /// Distinguishing input bits of the *shrunk* pair as a `0`/`1`
    /// string, LSB-first in `Netlist::input_bits` order. Empty when no
    /// bit witness exists (word-only counterexamples).
    pub witness: String,
    /// Gate total of the original pair.
    pub original_gates: u64,
    /// Gate total of the shrunk pair.
    pub shrunk_gates: u64,
    /// Shrink candidates evaluated.
    pub shrink_steps: u64,
    /// Shrunk spec netlist, text format.
    pub spec: String,
    /// Shrunk impl netlist, text format.
    pub impl_: String,
}

impl CorpusCase {
    /// The canonical file name for this case.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("case-{:05}.json", self.case_index)
    }

    /// The fault kind, parsed back from its name.
    #[must_use]
    pub fn fault(&self) -> Option<FaultKind> {
        self.fault_kind.as_deref().and_then(FaultKind::from_name)
    }

    /// The witness as bits.
    #[must_use]
    pub fn witness_bits(&self) -> Vec<bool> {
        self.witness.chars().map(|c| c == '1').collect()
    }

    /// Serialises to the strict-JSON document format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let mut field = |key: &str, value: &str, raw: bool| {
            out.push_str("  ");
            write_json_string(&mut out, key);
            out.push_str(": ");
            if raw {
                out.push_str(value);
            } else {
                write_json_string(&mut out, value);
            }
            out.push_str(",\n");
        };
        field("type", "gfab-fuzz-case", false);
        field("producer", &self.producer, false);
        field("campaign_seed", &self.campaign_seed.to_string(), true);
        field("case_index", &self.case_index.to_string(), true);
        field("k", &self.k.to_string(), true);
        let exps: Vec<String> = self.modulus.iter().map(u64::to_string).collect();
        field("modulus", &format!("[{}]", exps.join(", ")), true);
        field("arch", &self.arch, false);
        match &self.fault_kind {
            Some(kind) => field("fault_kind", kind, false),
            None => field("fault_kind", "null", true),
        }
        match &self.fault_detail {
            Some(d) => field("fault_detail", d, false),
            None => field("fault_detail", "null", true),
        }
        field("classification", &self.classification, false);
        let mut findings = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                findings.push_str(", ");
            }
            write_json_string(&mut findings, f);
        }
        findings.push(']');
        field("findings", &findings, true);
        field("witness", &self.witness, false);
        field("original_gates", &self.original_gates.to_string(), true);
        field("shrunk_gates", &self.shrunk_gates.to_string(), true);
        field("shrink_steps", &self.shrink_steps.to_string(), true);
        field("spec", &self.spec, false);
        field("impl", &self.impl_, false);
        // Trim the trailing comma of the last field.
        let len = out.len();
        out.truncate(len - 2);
        out.push_str("\n}\n");
        out
    }

    /// Parses a corpus case document.
    ///
    /// # Errors
    ///
    /// A human-readable message for syntax errors, missing or mistyped
    /// fields, or a wrong `type` tag.
    pub fn from_json(text: &str) -> Result<CorpusCase, String> {
        let obj = parse_document(text)?;
        if get_str(&obj, "type")? != "gfab-fuzz-case" {
            return Err("not a gfab-fuzz-case document".to_string());
        }
        let witness = get_str(&obj, "witness")?;
        if witness.chars().any(|c| c != '0' && c != '1') {
            return Err("witness must be a string of 0/1".to_string());
        }
        Ok(CorpusCase {
            producer: get_str(&obj, "producer")?,
            campaign_seed: get_u64(&obj, "campaign_seed")?,
            case_index: get_u64(&obj, "case_index")?,
            k: get_u64(&obj, "k")?,
            modulus: get_u64_array(&obj, "modulus")?,
            arch: get_str(&obj, "arch")?,
            fault_kind: get_opt_str(&obj, "fault_kind")?,
            fault_detail: get_opt_str(&obj, "fault_detail")?,
            classification: get_str(&obj, "classification")?,
            findings: get_str_array(&obj, "findings")?,
            witness,
            original_gates: get_u64(&obj, "original_gates")?,
            shrunk_gates: get_u64(&obj, "shrunk_gates")?,
            shrink_steps: get_u64(&obj, "shrink_steps")?,
            spec: get_str(&obj, "spec")?,
            impl_: get_str(&obj, "impl")?,
        })
    }
}

fn get<'a>(obj: &'a Obj, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str(obj: &Obj, key: &str) -> Result<String, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

fn get_opt_str(obj: &Obj, key: &str) -> Result<Option<String>, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(Some(s.clone())),
        Json::Null => Ok(None),
        _ => Err(format!("field {key:?} is not a string or null")),
    }
}

fn get_u64(obj: &Obj, key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("field {key:?} is not an integer")),
    }
}

fn get_u64_array(obj: &Obj, key: &str) -> Result<Vec<u64>, String> {
    match get(obj, key)? {
        Json::Arr(items) => items
            .iter()
            .map(|j| match j {
                Json::Num(n) => Ok(*n),
                _ => Err(format!("field {key:?} has a non-integer element")),
            })
            .collect(),
        _ => Err(format!("field {key:?} is not an array")),
    }
}

fn get_str_array(obj: &Obj, key: &str) -> Result<Vec<String>, String> {
    match get(obj, key)? {
        Json::Arr(items) => items
            .iter()
            .map(|j| match j {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("field {key:?} has a non-string element")),
            })
            .collect(),
        _ => Err(format!("field {key:?} is not an array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusCase {
        CorpusCase {
            producer: "gfab 0.3.0+abc123".to_string(),
            campaign_seed: 42,
            case_index: 17,
            k: 8,
            modulus: vec![0, 2, 3, 4, 8],
            arch: "mastrovito".to_string(),
            fault_kind: Some("wire-swap".to_string()),
            fault_detail: Some("gate g3 input #1 n7 -> n2".to_string()),
            classification: "caught".to_string(),
            findings: Vec::new(),
            witness: "0110".to_string(),
            original_gates: 128,
            shrunk_gates: 5,
            shrink_steps: 211,
            spec: "design spec\ninput A 2\n".to_string(),
            impl_: "design impl\ninput A 2\n".to_string(),
        }
    }

    #[test]
    fn round_trips() {
        let case = sample();
        let text = case.to_json();
        let back = CorpusCase::from_json(&text).unwrap();
        assert_eq!(back, case);
        // And byte-stable: serialising the parse reproduces the text.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn null_fault_round_trips() {
        let mut case = sample();
        case.fault_kind = None;
        case.fault_detail = None;
        case.classification = "finding".to_string();
        case.findings = vec!["[escape] sat: claims equivalent".to_string()];
        let back = CorpusCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back.fault_kind, None);
        assert_eq!(back.findings.len(), 1);
    }

    #[test]
    fn rejects_wrong_type_and_bad_witness() {
        assert!(CorpusCase::from_json("{\"type\": \"other\"}").is_err());
        let mut case = sample();
        case.witness = "01x".to_string();
        assert!(CorpusCase::from_json(&case.to_json()).is_err());
    }

    #[test]
    fn file_name_is_zero_padded() {
        assert_eq!(sample().file_name(), "case-00017.json");
    }
}
