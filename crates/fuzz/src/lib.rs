//! # gfab-fuzz
//!
//! Deterministic fuzzing and fault injection for the GFAB verification
//! stack, with a cross-engine differential oracle and counterexample
//! shrinking.
//!
//! A campaign ([`run_campaign`]) draws specimens from the weighted
//! architecture pool of [`gfab_circuits::registry`] (Mastrovito,
//! flattened Montgomery, squarers, adders, constant multipliers,
//! structurally random netlists over `F_{2^k}`), optionally injects one
//! typed fault ([`fault::FaultKind`]) into the impl side, and judges
//! every specimen with the three-rung differential oracle of
//! [`oracle`]: exhaustive/sampled simulation ground truth, the paper's
//! word-level Gröbner-basis abstraction, and the SAT miter baseline.
//! Any disagreement between the rungs is a *finding*; a detected
//! injected fault is a *catch*. Failing specimens are minimised by the
//! delta-debugging shrinker of [`shrink`] and persisted to a replayable
//! strict-JSON corpus ([`corpus`]).
//!
//! Everything is deterministic: each case derives its own RNG stream
//! from `campaign_seed` and its index, cases are independent, results
//! are collected in index order (work-stealing via
//! [`gfab_core::pool::run_indexed`] — the same scheduler the batch
//! verification engine runs on), and no wall-clock measurement
//! participates in any verdict. The same seed produces byte-identical
//! summaries and corpora at any worker count; wall-clock deadlines can
//! only *skip* whole cases (counted in the summary), never change a
//! case's outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fault;
pub mod oracle;
pub mod shrink;

pub use crate::corpus::CorpusCase;
pub use crate::fault::{Fault, FaultKind, ALL_FAULTS};
pub use crate::oracle::{Finding, FindingClass, OracleConfig};
pub use crate::shrink::{ShrinkConfig, ShrinkResult};

use crate::fault::{alternate_modulus, inject_structural};
use crate::oracle::run_oracle;
use crate::shrink::shrink_pair;
use gfab_circuits::{build_pair, choose_arch, Arch};
use gfab_core::pool;
use gfab_field::budget::Budget;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::{ContextCache, Rng};
use gfab_netlist::format::emit;
use gfab_netlist::sim::resolve_threads;
use gfab_netlist::Netlist;
use gfab_telemetry::json::write_json_string;
use gfab_telemetry::{Counter, EventKind, Phase, Telemetry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Campaign parameters. Everything that can influence a verdict is
/// deterministic; the only wall-clock knob (`deadline`) can merely skip
/// trailing cases.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; every case derives its stream from this and its
    /// index.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: usize,
    /// Worker threads (`0` = all available). Results are identical for
    /// every value.
    pub threads: usize,
    /// Smallest field degree to draw.
    pub k_min: usize,
    /// Largest field degree to draw.
    pub k_max: usize,
    /// Percentage of cases that receive an injected fault (0–100).
    pub fault_rate_pct: u32,
    /// Fault kinds eligible for injection.
    pub fault_kinds: Vec<FaultKind>,
    /// Oracle: exhaustive-simulation input-bit cap.
    pub exhaustive_bits: usize,
    /// Oracle: sampled ground-truth vector count.
    pub sample_vectors: u64,
    /// Oracle: SAT conflict cap.
    pub sat_conflicts: u64,
    /// Oracle: optional work cap for the word-level rung.
    pub word_work_cap: Option<u64>,
    /// Shrinker candidate budget per failing case.
    pub shrink_budget: u64,
    /// Optional campaign wall-clock deadline. Cases that would start
    /// after it are skipped (and counted), not truncated.
    pub deadline: Option<Duration>,
    /// Version string recorded in corpus files.
    pub producer: String,
    /// Telemetry handle (disabled by default).
    pub telemetry: Telemetry,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 100,
            threads: 0,
            k_min: 4,
            k_max: 8,
            fault_rate_pct: 50,
            fault_kinds: ALL_FAULTS.to_vec(),
            exhaustive_bits: 16,
            sample_vectors: 4096,
            sat_conflicts: 20_000,
            word_work_cap: Some(20_000),
            shrink_budget: 3000,
            deadline: None,
            producer: "gfab-fuzz".to_string(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A case's final classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseClass {
    /// Unfaulted, all rungs agree the pair is equivalent.
    Clean,
    /// Faulted, and the oracle demonstrated the difference.
    Caught,
    /// Faulted, but the fault did not change the computed function
    /// (e.g. a stuck-at on an already-constant net).
    Benign,
    /// At least one cross-engine finding — the campaign fails.
    Finding,
    /// Skipped: the campaign deadline expired before the case started.
    Skipped,
}

impl CaseClass {
    /// Stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseClass::Clean => "clean",
            CaseClass::Caught => "caught",
            CaseClass::Benign => "benign",
            CaseClass::Finding => "finding",
            CaseClass::Skipped => "skipped",
        }
    }
}

/// The full record of one fuzz case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case index within the campaign.
    pub index: usize,
    /// Field degree (0 when skipped).
    pub k: usize,
    /// Architecture drawn (`None` when skipped).
    pub arch: Option<Arch>,
    /// Injected fault, if any.
    pub fault: Option<Fault>,
    /// Classification.
    pub class: CaseClass,
    /// Oracle findings (empty unless `class == Finding`).
    pub findings: Vec<Finding>,
    /// The word rung answered `Unknown` (allowed on faulted `k > 8`).
    pub word_unknown: bool,
    /// The SAT rung capped out.
    pub sat_unknown: bool,
    /// Deterministic work units (oracle + shrink candidates).
    pub work_units: u64,
    /// Replayable corpus entry for caught/finding cases.
    pub corpus: Option<CorpusCase>,
}

/// Aggregated, deterministic campaign summary.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Campaign seed.
    pub seed: u64,
    /// Cases requested.
    pub cases: u64,
    /// Cases actually run.
    pub completed: u64,
    /// Cases skipped by the deadline.
    pub skipped: u64,
    /// Cases that received a fault.
    pub faulted: u64,
    /// Faulted cases the oracle caught.
    pub caught: u64,
    /// Faulted cases whose fault was function-preserving.
    pub benign: u64,
    /// Unfaulted cases that verified clean.
    pub clean: u64,
    /// Total cross-engine findings.
    pub findings: u64,
    /// Word-rung unknowns (allowed ones included).
    pub word_unknown: u64,
    /// SAT-rung cap-outs.
    pub sat_unknown: u64,
    /// Total deterministic work units.
    pub work_units: u64,
    /// Shrink candidates evaluated across all failing cases.
    pub shrink_steps: u64,
    /// Largest shrunk pair, in gates.
    pub max_shrunk_gates: u64,
    /// Per-architecture coverage: cases / faulted / caught / findings.
    pub per_arch: BTreeMap<String, [u64; 4]>,
    /// Per-fault-kind coverage: injected / caught / benign / findings.
    pub per_fault: BTreeMap<String, [u64; 4]>,
}

impl Summary {
    fn from_results(cfg: &FuzzConfig, results: &[CaseResult]) -> Summary {
        let mut s = Summary {
            seed: cfg.seed,
            cases: cfg.cases as u64,
            ..Summary::default()
        };
        for r in results {
            if r.class == CaseClass::Skipped {
                s.skipped += 1;
                continue;
            }
            s.completed += 1;
            s.word_unknown += u64::from(r.word_unknown);
            s.sat_unknown += u64::from(r.sat_unknown);
            s.work_units += r.work_units;
            s.findings += r.findings.len() as u64;
            match r.class {
                CaseClass::Clean => s.clean += 1,
                CaseClass::Caught => s.caught += 1,
                CaseClass::Benign => s.benign += 1,
                _ => {}
            }
            if let Some(f) = &r.fault {
                s.faulted += 1;
                let e = s.per_fault.entry(f.kind.name().to_string()).or_default();
                e[0] += 1;
                e[1] += u64::from(r.class == CaseClass::Caught);
                e[2] += u64::from(r.class == CaseClass::Benign);
                e[3] += r.findings.len() as u64;
            }
            if let Some(a) = r.arch {
                let e = s.per_arch.entry(a.name().to_string()).or_default();
                e[0] += 1;
                e[1] += u64::from(r.fault.is_some());
                e[2] += u64::from(r.class == CaseClass::Caught);
                e[3] += r.findings.len() as u64;
            }
            if let Some(c) = &r.corpus {
                s.shrink_steps += c.shrink_steps;
                s.max_shrunk_gates = s.max_shrunk_gates.max(c.shrunk_gates);
            }
        }
        s
    }

    /// Canonical single-line JSON rendering: a pure function of the
    /// campaign configuration and verdicts (no wall times, no
    /// machine-dependent values), so byte comparison across runs and
    /// thread counts is meaningful.
    #[must_use]
    pub fn canonical_json(&self, producer: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"gfab-fuzz-summary\",\"producer\":");
        write_json_string(&mut out, producer);
        let _ = write!(
            out,
            ",\"seed\":{},\"cases\":{},\"completed\":{},\"skipped\":{}",
            self.seed, self.cases, self.completed, self.skipped
        );
        let _ = write!(
            out,
            ",\"faulted\":{},\"caught\":{},\"benign\":{},\"clean\":{},\"findings\":{}",
            self.faulted, self.caught, self.benign, self.clean, self.findings
        );
        let _ = write!(
            out,
            ",\"word_unknown\":{},\"sat_unknown\":{},\"work_units\":{}",
            self.word_unknown, self.sat_unknown, self.work_units
        );
        let _ = write!(
            out,
            ",\"shrink_steps\":{},\"max_shrunk_gates\":{}",
            self.shrink_steps, self.max_shrunk_gates
        );
        let table =
            |out: &mut String, key: &str, map: &BTreeMap<String, [u64; 4]>, cols: [&str; 4]| {
                let _ = write!(out, ",\"{key}\":{{");
                for (i, (name, row)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, name);
                    out.push_str(":{");
                    for (j, col) in cols.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{col}\":{}", row[j]);
                    }
                    out.push('}');
                }
                out.push('}');
            };
        table(
            &mut out,
            "per_arch",
            &self.per_arch,
            ["cases", "faulted", "caught", "findings"],
        );
        table(
            &mut out,
            "per_fault",
            &self.per_fault,
            ["injected", "caught", "benign", "findings"],
        );
        out.push('}');
        out
    }
}

/// A finished campaign: per-case records, the deterministic summary, and
/// the (non-deterministic, report-only) wall time.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-case results, in index order.
    pub cases: Vec<CaseResult>,
    /// The aggregate summary.
    pub summary: Summary,
    /// Wall time of the whole campaign (never part of any verdict).
    pub wall: Duration,
}

impl CampaignReport {
    /// The corpus entries of all failing cases, in index order.
    #[must_use]
    pub fn corpus_entries(&self) -> Vec<&CorpusCase> {
        self.cases
            .iter()
            .filter_map(|c| c.corpus.as_ref())
            .collect()
    }
}

/// Splitmix-style per-case seed derivation: decorrelates neighbouring
/// indices while staying a pure function of `(seed, index)`.
#[must_use]
pub fn case_seed(campaign_seed: u64, index: usize) -> u64 {
    campaign_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn skipped_case(index: usize) -> CaseResult {
    CaseResult {
        index,
        k: 0,
        arch: None,
        fault: None,
        class: CaseClass::Skipped,
        findings: Vec::new(),
        word_unknown: false,
        sat_unknown: false,
        work_units: 0,
        corpus: None,
    }
}

/// Tries to inject a fault, rotating through the enabled kinds from a
/// random starting offset until one has an eligible site. Returns the
/// (possibly regenerated) impl and the fault, or `None` when no enabled
/// kind applies to this specimen.
fn inject_fault(
    cfg: &FuzzConfig,
    arch: Arch,
    k: usize,
    gen_seed: u64,
    impl_: &Netlist,
    cache: &ContextCache,
    rng: &mut Rng,
) -> Option<(Netlist, Fault)> {
    let start = rng.random_range(0..cfg.fault_kinds.len());
    for off in 0..cfg.fault_kinds.len() {
        let kind = cfg.fault_kinds[(start + off) % cfg.fault_kinds.len()];
        if kind == FaultKind::WrongModulus {
            if !arch.modulus_sensitive() {
                continue;
            }
            let Some(alt) = alternate_modulus(k) else {
                continue;
            };
            let detail = format!(
                "impl built over {} instead of {}",
                alt,
                irreducible_polynomial(k).expect("k >= 2")
            );
            let alt_ctx = cache.get(&alt).expect("alternate modulus is irreducible");
            let (_, alt_impl) = build_pair(arch, &alt_ctx, gen_seed);
            return Some((alt_impl, Fault { kind, detail }));
        }
        if let Some(found) = inject_structural(impl_, kind, rng) {
            return Some(found);
        }
    }
    None
}

/// Runs one fuzz case. Pure in `(cfg, index)` apart from the deadline
/// check, which can only turn the whole case into a skip.
fn run_case(cfg: &FuzzConfig, cache: &ContextCache, budget: &Budget, index: usize) -> CaseResult {
    if budget.check().is_err() {
        return skipped_case(index);
    }
    let seed = case_seed(cfg.seed, index);
    let mut rng = Rng::seed_from_u64(seed);
    let mut span = cfg
        .telemetry
        .span_labeled(Phase::FuzzCase, &format!("case-{index}"));

    // Draw the specimen.
    let k = cfg.k_min + rng.random_range(0..cfg.k_max - cfg.k_min + 1);
    let arch = choose_arch(&mut rng, k);
    let modulus = irreducible_polynomial(k).expect("k >= 2");
    let ctx = cache.get(&modulus).expect("canonical modulus");
    let gen_seed = rng.next_u64();
    let (spec, impl_clean) = build_pair(arch, &ctx, gen_seed);

    let want_fault = cfg.fault_rate_pct > 0
        && !cfg.fault_kinds.is_empty()
        && rng.random_range(0..100) < cfg.fault_rate_pct as usize;
    let (impl_, fault) = if want_fault {
        match inject_fault(cfg, arch, k, gen_seed, &impl_clean, cache, &mut rng) {
            Some((nl, f)) => (nl, Some(f)),
            None => (impl_clean, None),
        }
    } else {
        (impl_clean, None)
    };

    // Judge it.
    let oracle_cfg = OracleConfig {
        exhaustive_bits: cfg.exhaustive_bits,
        sample_vectors: cfg.sample_vectors,
        sat_conflicts: cfg.sat_conflicts,
        word_work_cap: cfg.word_work_cap,
        seed,
    };
    let expect_verdict =
        oracle::word_must_decide(arch != Arch::Random, fault.is_some(), k, cfg.word_work_cap);
    let mut outcome = run_oracle(&spec, &impl_, &ctx, expect_verdict, &oracle_cfg);
    if fault.is_none() && outcome.truth_differs {
        // An unfaulted generator pair that differs is a generator bug —
        // as serious as any engine disagreement.
        outcome.findings.push(Finding {
            class: FindingClass::Disagreement,
            engine: "generator",
            detail: "unfaulted spec/impl pair computes different functions".to_string(),
        });
    }
    let class = if !outcome.findings.is_empty() {
        CaseClass::Finding
    } else if fault.is_some() && outcome.truth_differs {
        CaseClass::Caught
    } else if fault.is_some() {
        CaseClass::Benign
    } else {
        CaseClass::Clean
    };

    // Shrink failing specimens and build their corpus entry.
    let mut work_units = outcome.work_units;
    let corpus = if matches!(class, CaseClass::Caught | CaseClass::Finding) {
        let original_gates = (spec.num_gates() + impl_.num_gates()) as u64;
        let shrunk = outcome.witness.as_ref().map(|w| {
            let mut shrink_span = cfg
                .telemetry
                .span_labeled(Phase::Shrink, &format!("case-{index}"));
            let r = shrink_pair(
                &spec,
                &impl_,
                w,
                &ShrinkConfig {
                    max_candidates: cfg.shrink_budget,
                },
            );
            shrink_span.counter(Counter::ShrinkSteps, r.candidates);
            let _ = shrink_span.finish();
            r
        });
        let (spec_text, impl_text, witness, shrunk_gates, shrink_steps) = match &shrunk {
            Some(r) => (
                emit(&r.spec),
                emit(&r.impl_),
                r.witness
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect(),
                r.total_gates() as u64,
                r.candidates,
            ),
            // No bit witness (word-only counterexample or a pure verdict
            // disagreement): persist the unshrunk pair.
            None => (emit(&spec), emit(&impl_), String::new(), original_gates, 0),
        };
        work_units += shrink_steps;
        Some(CorpusCase {
            producer: cfg.producer.clone(),
            campaign_seed: cfg.seed,
            case_index: index as u64,
            k: k as u64,
            modulus: modulus.exponents().map(|e| e as u64).collect(),
            arch: arch.name().to_string(),
            fault_kind: fault.as_ref().map(|f| f.kind.name().to_string()),
            fault_detail: fault.as_ref().map(|f| f.detail.clone()),
            classification: if class == CaseClass::Caught {
                "caught".to_string()
            } else {
                "finding".to_string()
            },
            findings: outcome.findings.iter().map(Finding::to_string).collect(),
            witness,
            original_gates,
            shrunk_gates,
            shrink_steps,
            spec: spec_text,
            impl_: impl_text,
        })
    } else {
        None
    };

    span.counter(Counter::FuzzCases, 1);
    span.counter(Counter::FaultsInjected, u64::from(fault.is_some()));
    span.counter(Counter::FuzzCaught, u64::from(class == CaseClass::Caught));
    span.counter(Counter::FuzzFindings, outcome.findings.len() as u64);
    let _ = span.finish();

    CaseResult {
        index,
        k,
        arch: Some(arch),
        fault,
        class,
        findings: outcome.findings,
        word_unknown: outcome.word_unknown,
        sat_unknown: outcome.sat_unknown,
        work_units,
        corpus,
    }
}

/// Runs a full campaign: `cfg.cases` independent cases on the shared
/// work-stealing pool, collected in index order.
#[must_use]
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    let start = Instant::now();
    let budget = match cfg.deadline {
        Some(d) => Budget::with_deadline(d),
        None => Budget::unlimited(),
    };
    let cache = ContextCache::new(64);
    let workers = resolve_threads(cfg.threads);
    let cases = pool::run_indexed(workers, cfg.cases, |worker, i| {
        // Live per-case lifecycle, mirroring the batch engine's
        // query-start/query-done events (no-ops on a disabled bus).
        let events = cfg.telemetry.events();
        events.publish(EventKind::QueryStart {
            query: format!("case-{i}"),
            worker: worker as u64,
        });
        let case_start = Instant::now();
        let result = run_case(cfg, &cache, &budget, i);
        events.publish(EventKind::QueryDone {
            query: format!("case-{i}"),
            verdict: result.class.name().to_string(),
            exit: u64::from(result.class == CaseClass::Finding),
            wall_us: case_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            worker: worker as u64,
        });
        result
    });
    let summary = Summary::from_results(cfg, &cases);
    CampaignReport {
        cases,
        summary,
        wall: start.elapsed(),
    }
}

/// Outcome of replaying a corpus case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// The recorded classification still reproduces.
    Reproduced,
    /// It no longer reproduces; the payload says what changed.
    NotReproduced(String),
}

/// Re-runs the oracle on a persisted corpus case and checks that the
/// recorded classification still holds: a `"caught"` case must still
/// demonstrably differ (including on its recorded witness) with no new
/// findings, and a `"finding"` case must still produce at least one
/// finding.
///
/// # Errors
///
/// Malformed case data: unparsable netlists, an unknown classification,
/// or a non-irreducible modulus.
pub fn replay_case(case: &CorpusCase, cfg: &FuzzConfig) -> Result<ReplayVerdict, String> {
    let modulus = gfab_field::Gf2Poly::from_exponents(
        &case.modulus.iter().map(|&e| e as usize).collect::<Vec<_>>(),
    );
    let ctx: Arc<_> = gfab_field::GfContext::shared(modulus).map_err(|e| e.to_string())?;
    let spec = gfab_netlist::format::parse(&case.spec).map_err(|e| format!("spec: {e}"))?;
    let impl_ = gfab_netlist::format::parse(&case.impl_).map_err(|e| format!("impl: {e}"))?;
    let oracle_cfg = OracleConfig {
        exhaustive_bits: cfg.exhaustive_bits,
        sample_vectors: cfg.sample_vectors,
        sat_conflicts: cfg.sat_conflicts,
        word_work_cap: cfg.word_work_cap,
        seed: case_seed(case.campaign_seed, case.case_index as usize),
    };
    let witness = case.witness_bits();
    if !witness.is_empty() {
        if witness.len() != spec.input_bits().len() {
            return Err("witness length does not match the netlist".to_string());
        }
        let sv = gfab_netlist::sim::simulate_bits(&spec, &witness);
        let iv = gfab_netlist::sim::simulate_bits(&impl_, &witness);
        let distinguishes = spec
            .output_word()
            .bits
            .iter()
            .zip(&impl_.output_word().bits)
            .any(|(s, i)| sv[s.index()] != iv[i.index()]);
        if !distinguishes {
            return Ok(ReplayVerdict::NotReproduced(
                "recorded witness no longer distinguishes the pair".to_string(),
            ));
        }
    }
    let expect_verdict = oracle::word_must_decide(
        case.arch != Arch::Random.name(),
        case.fault_kind.is_some(),
        case.k as usize,
        cfg.word_work_cap,
    );
    let outcome = run_oracle(&spec, &impl_, &ctx, expect_verdict, &oracle_cfg);
    match case.classification.as_str() {
        "caught" => {
            if !outcome.truth_differs {
                Ok(ReplayVerdict::NotReproduced(
                    "oracle no longer distinguishes the pair".to_string(),
                ))
            } else if !outcome.findings.is_empty() {
                Ok(ReplayVerdict::NotReproduced(format!(
                    "replay produced new findings: {}",
                    outcome.findings[0]
                )))
            } else {
                Ok(ReplayVerdict::Reproduced)
            }
        }
        "finding" => {
            if outcome.findings.is_empty() {
                Ok(ReplayVerdict::NotReproduced(
                    "no finding on replay".to_string(),
                ))
            } else {
                Ok(ReplayVerdict::Reproduced)
            }
        }
        other => Err(format!("unknown classification {other:?}")),
    }
}

/// Writes every corpus entry of `report` into `dir` (created if
/// missing), one strict-JSON file per case, and returns the file names
/// written in index order.
///
/// # Errors
///
/// Any I/O error, with the offending path named.
pub fn write_corpus(dir: &std::path::Path, report: &CampaignReport) -> Result<Vec<String>, String> {
    let entries = report.corpus_entries();
    if entries.is_empty() {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut names = Vec::new();
    for case in entries {
        let name = case.file_name();
        let path = dir.join(&name);
        std::fs::write(&path, case.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, threads: usize) -> (FuzzConfig, CampaignReport) {
        let cfg = FuzzConfig {
            seed,
            cases: 12,
            threads,
            k_min: 3,
            k_max: 5,
            // A tight work cap keeps debug-build runs quick; determinism
            // and the catch/shrink contracts do not depend on its value.
            word_work_cap: Some(2_000),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&cfg);
        (cfg, report)
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let (cfg, a) = tiny(7, 1);
        let (_, b) = tiny(7, 4);
        assert_eq!(
            a.summary.canonical_json(&cfg.producer),
            b.summary.canonical_json(&cfg.producer)
        );
        let ac: Vec<String> = a.corpus_entries().iter().map(|c| c.to_json()).collect();
        let bc: Vec<String> = b.corpus_entries().iter().map(|c| c.to_json()).collect();
        assert_eq!(ac, bc);
    }

    #[test]
    fn faulted_cases_are_caught_and_clean_cases_stay_clean() {
        let (_, report) = tiny(3, 0);
        assert_eq!(report.summary.findings, 0, "{:?}", report.summary);
        assert_eq!(report.summary.skipped, 0);
        // Catches must shrink and carry replayable corpus entries.
        for case in report.corpus_entries() {
            assert_eq!(case.classification, "caught");
            assert!(!case.witness.is_empty());
            assert!(
                case.shrunk_gates <= 25,
                "case {}: {} gates",
                case.case_index,
                case.shrunk_gates
            );
        }
    }

    #[test]
    fn corpus_cases_replay() {
        let cfg = FuzzConfig {
            seed: 5,
            cases: 16,
            k_min: 3,
            k_max: 6,
            fault_rate_pct: 100,
            word_work_cap: Some(2_000),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&cfg);
        let entries = report.corpus_entries();
        assert!(!entries.is_empty(), "no catches at 100% fault rate");
        for case in entries {
            let round = CorpusCase::from_json(&case.to_json()).unwrap();
            assert_eq!(
                replay_case(&round, &cfg).unwrap(),
                ReplayVerdict::Reproduced,
                "case {}",
                case.case_index
            );
        }
    }

    #[test]
    fn zero_fault_rate_produces_no_catches() {
        let cfg = FuzzConfig {
            seed: 11,
            cases: 10,
            k_min: 3,
            k_max: 5,
            fault_rate_pct: 0,
            word_work_cap: Some(2_000),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.summary.caught, 0);
        assert_eq!(report.summary.faulted, 0);
        assert_eq!(report.summary.findings, 0);
        assert_eq!(report.summary.clean, 10);
    }

    #[test]
    fn expired_deadline_skips_cases_deterministically() {
        let cfg = FuzzConfig {
            seed: 2,
            cases: 6,
            deadline: Some(Duration::ZERO),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.summary.skipped, 6);
        assert_eq!(report.summary.completed, 0);
    }
}
