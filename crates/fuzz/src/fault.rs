//! The typed fault model.
//!
//! Each [`FaultKind`] names one class of realistic hardware bug; injection
//! is deterministic in the RNG state and built on the structural mutators
//! of [`gfab_netlist::mutate`]. Four kinds are *structural* (they edit one
//! gate of the impl netlist); [`FaultKind::WrongModulus`] is a
//! *generation-level* fault — the impl is rebuilt over a different
//! irreducible polynomial of the same degree, modelling a multiplier wired
//! with the wrong reduction matrix.

use gfab_field::nist::irreducible_polynomial;
use gfab_field::{Gf2Poly, Rng};
use gfab_netlist::{mutate, GateId, GateKind, Netlist};
use std::fmt;

/// One class of injected bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A 2-input gate's function replaced by a different 2-input function
    /// (AND → OR, XOR → XNOR, …).
    GateFlip,
    /// One input of a 2-input gate rewired to a different primary input —
    /// the paper's Example 5.1 bug.
    WireSwap,
    /// A gate's output tied to a constant (stuck-at-0 / stuck-at-1).
    StuckConst,
    /// One operand of an XOR/XNOR dropped — a missing reduction term in a
    /// modular multiplier's XOR tree.
    DropTerm,
    /// The impl built over a different irreducible polynomial of the same
    /// degree — a wrong reduction matrix throughout the datapath.
    WrongModulus,
}

/// Every fault kind, in declaration order.
pub const ALL_FAULTS: [FaultKind; 5] = [
    FaultKind::GateFlip,
    FaultKind::WireSwap,
    FaultKind::StuckConst,
    FaultKind::DropTerm,
    FaultKind::WrongModulus,
];

impl FaultKind {
    /// Stable kebab-case name (corpus files, coverage tables, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::GateFlip => "gate-flip",
            FaultKind::WireSwap => "wire-swap",
            FaultKind::StuckConst => "stuck-const",
            FaultKind::DropTerm => "drop-term",
            FaultKind::WrongModulus => "wrong-modulus",
        }
    }

    /// Inverse of [`FaultKind::name`]; `None` for unknown names.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FaultKind> {
        ALL_FAULTS.into_iter().find(|f| f.name() == s)
    }

    /// Whether this kind edits the netlist (vs. regenerating it over a
    /// different modulus).
    #[must_use]
    pub fn is_structural(self) -> bool {
        !matches!(self, FaultKind::WrongModulus)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete injected fault: its kind plus a human-readable locus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The fault class.
    pub kind: FaultKind,
    /// What exactly was broken (gate id, nets, or moduli).
    pub detail: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// 2-input gate functions eligible for a [`FaultKind::GateFlip`].
const FLIPPABLE: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Nand,
    GateKind::Nor,
];

/// Injects a structural fault of `kind` into a copy of `nl`.
///
/// Returns `None` when the netlist has no eligible site (e.g. no XOR gate
/// for a [`FaultKind::DropTerm`]); the caller then tries another kind.
/// Deterministic in the RNG state.
///
/// # Panics
///
/// Panics if `kind` is [`FaultKind::WrongModulus`], which is not a
/// netlist edit — see [`alternate_modulus`].
pub fn inject_structural(nl: &Netlist, kind: FaultKind, rng: &mut Rng) -> Option<(Netlist, Fault)> {
    assert!(kind.is_structural(), "wrong-modulus is not a netlist edit");
    let mut out = nl.clone();
    let mutation = match kind {
        FaultKind::GateFlip => {
            let sites: Vec<GateId> = eligible(nl, |k| FLIPPABLE.contains(&k));
            let g = *rng.choose(&sites)?;
            let from = nl.gate(g).kind;
            let alts: Vec<GateKind> = FLIPPABLE.iter().copied().filter(|&k| k != from).collect();
            let to = *rng.choose(&alts)?;
            mutate::swap_gate_kind(&mut out, g, to)
        }
        FaultKind::WireSwap => {
            let sites: Vec<GateId> = eligible(nl, |k| k.arity() == 2);
            let g = *rng.choose(&sites)?;
            let position = rng.random_range(0..2);
            let current = nl.gate(g).inputs[position];
            // Rewire to a different primary input: always acyclic.
            let pis: Vec<_> = nl
                .input_bits()
                .into_iter()
                .filter(|&n| n != current)
                .collect();
            let to = *rng.choose(&pis)?;
            mutate::swap_wire(&mut out, g, position, to)
        }
        FaultKind::StuckConst => {
            let n = nl.num_gates();
            if n == 0 {
                return None;
            }
            let g = GateId(rng.random_range(0..n) as u32);
            let value = rng.random_range(0..2) == 1;
            mutate::stuck_at(&mut out, g, value)
        }
        FaultKind::DropTerm => {
            let sites: Vec<GateId> = eligible(nl, |k| matches!(k, GateKind::Xor | GateKind::Xnor));
            let g = *rng.choose(&sites)?;
            let keep = rng.random_range(0..2);
            mutate::drop_xor_term(&mut out, g, keep)
        }
        FaultKind::WrongModulus => unreachable!(),
    };
    let fault = Fault {
        kind,
        detail: mutation.to_string(),
    };
    Some((out, fault))
}

fn eligible(nl: &Netlist, pred: impl Fn(GateKind) -> bool) -> Vec<GateId> {
    (0..nl.num_gates())
        .map(|i| GateId(i as u32))
        .filter(|&g| pred(nl.gate(g).kind))
        .collect()
}

/// The smallest irreducible degree-`k` polynomial that differs from the
/// canonical [`irreducible_polynomial`] for `k` — the wrong modulus a
/// [`FaultKind::WrongModulus`] impl is rebuilt over.
///
/// Deterministic. `None` when the degree admits only one irreducible
/// polynomial (k = 2) or `k < 2`.
#[must_use]
pub fn alternate_modulus(k: usize) -> Option<Gf2Poly> {
    if !(2..=62).contains(&k) {
        return None;
    }
    let canonical = irreducible_polynomial(k)?;
    // Any irreducible polynomial of degree >= 1 has a nonzero constant
    // term, so only odd tails need testing.
    for tail in (1..1u64 << k).step_by(2) {
        let mut p = Gf2Poly::from_u64(tail);
        p.set_coeff(k, true);
        if p != canonical && p.is_irreducible() {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::mastrovito_multiplier;
    use gfab_field::GfContext;
    use gfab_netlist::format::emit;

    fn mastrovito(k: usize) -> Netlist {
        let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
        mastrovito_multiplier(&ctx)
    }

    #[test]
    fn names_round_trip() {
        for f in ALL_FAULTS {
            assert_eq!(FaultKind::from_name(f.name()), Some(f));
        }
        assert_eq!(FaultKind::from_name("cosmic-ray"), None);
    }

    #[test]
    fn every_structural_kind_injects_into_a_multiplier() {
        let nl = mastrovito(4);
        for kind in ALL_FAULTS.into_iter().filter(|f| f.is_structural()) {
            let mut rng = Rng::seed_from_u64(1);
            let (mutated, fault) =
                inject_structural(&nl, kind, &mut rng).unwrap_or_else(|| panic!("{kind}"));
            assert_eq!(fault.kind, kind);
            mutated.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_ne!(
                emit(&mutated),
                emit(&nl),
                "{kind} left the netlist unchanged"
            );
        }
    }

    #[test]
    fn injection_is_deterministic_in_the_rng_seed() {
        let nl = mastrovito(5);
        for kind in ALL_FAULTS.into_iter().filter(|f| f.is_structural()) {
            let (a, fa) = inject_structural(&nl, kind, &mut Rng::seed_from_u64(7)).unwrap();
            let (b, fb) = inject_structural(&nl, kind, &mut Rng::seed_from_u64(7)).unwrap();
            assert_eq!(emit(&a), emit(&b));
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn alternate_modulus_is_irreducible_and_distinct() {
        for k in 3..=12 {
            let alt = alternate_modulus(k).unwrap_or_else(|| panic!("k={k}"));
            assert!(alt.is_irreducible());
            assert_eq!(alt.degree(), Some(k));
            assert_ne!(alt, irreducible_polynomial(k).unwrap());
        }
        // F_4 has exactly one irreducible quadratic: x^2 + x + 1.
        assert_eq!(alternate_modulus(2), None);
    }
}
