//! A compact CDCL solver: two-watched literals, 1UIP learning,
//! activity-based decisions, phase saving, Luby restarts.

use crate::cnf::{Cnf, Lit};
use gfab_field::budget::{Budget, BudgetExceeded, ExhaustedReason};

/// What resource stopped an inconclusive solve — carried by
/// [`SolveResult::Unknown`] so callers can distinguish "ran out of
/// conflicts" from "ran out of wall clock" (or an external cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The per-call conflict budget (its value) was exhausted.
    Conflicts(u64),
    /// The cooperative [`Budget`] stopped the solver.
    Budget(ExhaustedReason),
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Conflicts(n) => write!(f, "conflict budget ({n}) exhausted"),
            Interrupt::Budget(r) => write!(f, "{r} exhausted"),
        }
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a full model (`model[v]` = value of variable v).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// A resource budget ran out before a decision was reached; the payload
    /// says which one.
    Unknown(Interrupt),
}

/// Solver effort counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted: u64,
}

const INVALID: u32 = u32::MAX;

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver over a fixed CNF.
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// watches[lit.code()] = indices of clauses watching `lit`.
    watches: Vec<Vec<u32>>,
    /// Assignment: 0 = unassigned, 1 = true, 2 = false… use Option<bool>.
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<u32>, // clause index or INVALID
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    saved_phase: Vec<bool>,
    /// Effort counters.
    pub stats: SolverStats,
    ok: bool,
    /// Cooperative budget polled in the propagate and conflict loops.
    budget: Budget,
    /// Set when the budget trips inside `propagate` (which cannot return
    /// the interrupt itself); `solve` checks it after every propagation.
    interrupted: bool,
    /// Index of the first learned clause (original clauses are permanent).
    first_learned: u32,
    /// Per-clause activity (aligned with `clauses`; only meaningful for
    /// learned clauses).
    cla_activity: Vec<f64>,
    cla_inc: f64,
    /// Conflicts after which the learned database is reduced; grows
    /// geometrically after each reduction.
    reduce_limit: u64,
}

impl Solver {
    /// Builds a solver from a CNF formula.
    pub fn new(cnf: Cnf) -> Solver {
        Self::new_budgeted(cnf, &Budget::unlimited()).expect("unlimited budget never trips")
    }

    /// [`Solver::new`] under a cooperative [`Budget`], polled every 65 536
    /// clauses while the watch lists are built — on multi-million-clause
    /// miters the construction itself takes seconds and must be
    /// interruptible. The budget is also attached to the solver (as with
    /// [`Solver::set_budget`]).
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the budget trips mid-construction.
    pub fn new_budgeted(cnf: Cnf, budget: &Budget) -> Result<Solver, BudgetExceeded> {
        let num_vars = cnf.num_vars() as usize;
        let mut s = Solver {
            num_vars,
            clauses: Vec::with_capacity(cnf.clauses().len()),
            watches: vec![Vec::new(); 2 * num_vars],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![INVALID; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            saved_phase: vec![false; num_vars],
            stats: SolverStats::default(),
            ok: true,
            budget: budget.clone(),
            interrupted: false,
            first_learned: 0,
            cla_activity: Vec::new(),
            cla_inc: 1.0,
            reduce_limit: 8_192,
        };
        for (i, c) in cnf.clauses().iter().enumerate() {
            if i % 65_536 == 0 {
                budget.check()?;
            }
            s.add_clause_internal(c.clone());
            if !s.ok {
                break;
            }
        }
        s.first_learned = s.clauses.len() as u32;
        s.cla_activity = vec![0.0; s.clauses.len()];
        Ok(s)
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b == l.is_pos())
    }

    fn add_clause_internal(&mut self, lits: Vec<Lit>) {
        match lits.len() {
            0 => self.ok = false,
            1 => match self.value(lits[0]) {
                Some(false) => self.ok = false,
                Some(true) => {}
                None => {
                    self.enqueue(lits[0], INVALID);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].negate().code()].push(idx);
                self.watches[lits[1].negate().code()].push(idx);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.value(l).is_none());
        let v = l.var() as usize;
        self.assign[v] = Some(l.is_pos());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = l.is_pos();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Poll the cooperative budget in the BCP loop too: on
            // propagation-heavy instances conflicts can be rare, and the
            // conflict-loop poll alone would let a deadline slip far.
            if self.stats.propagations.is_multiple_of(65_536) && self.budget.check().is_err() {
                self.interrupted = true;
                return None;
            }
            // Clauses watching ¬p (i.e. stored under p's code after
            // negation convention): we store watchers under the literal
            // whose *falsification* triggers them, which is the negation of
            // a watched literal. Here `p` became true, so clauses watching
            // `p` (list at p.code()) must be checked — they watch ¬p… we
            // registered clause c under lits[i].negate().code(), so the
            // list at p.code() holds clauses with a watched literal equal
            // to ¬p, which is now false. Correct.
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                let false_lit = p.negate();
                // Normalize: watched literals are lits[0] and lits[1].
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                // If the other watched literal is already true, keep watch.
                let first = self.clauses[ci as usize].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                {
                    let c = &self.clauses[ci as usize];
                    let mut new_watch = None;
                    for (j, &l) in c.lits.iter().enumerate().skip(2) {
                        if self.value(l) != Some(false) {
                            new_watch = Some(j);
                            break;
                        }
                    }
                    if let Some(j) = new_watch {
                        let l = self.clauses[ci as usize].lits[j];
                        self.clauses[ci as usize].lits.swap(1, j);
                        self.watches[l.negate().code()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                match self.value(first) {
                    None => {
                        self.enqueue(first, ci);
                        i += 1;
                    }
                    Some(false) => {
                        // Conflict: restore remaining watchers and report.
                        self.watches[p.code()].append(&mut watchers);
                        self.qhead = self.trail.len();
                        return Some(ci);
                    }
                    Some(true) => unreachable!("handled above"),
                }
            }
            self.watches[p.code()] = watchers;
        }
        None
    }

    fn bump_clause(&mut self, ci: u32) {
        if ci >= self.first_learned {
            let a = &mut self.cla_activity[ci as usize];
            *a += self.cla_inc;
            if *a > 1e100 {
                for x in &mut self.cla_activity {
                    *x *= 1e-100;
                }
                self.cla_inc *= 1e-100;
            }
        }
    }

    /// Deletes the less active half of the learned clauses (keeping
    /// clauses currently locked as propagation reasons and binary
    /// clauses), then rebuilds watches and reason indices.
    fn reduce_db(&mut self) {
        let n = self.clauses.len();
        let first = self.first_learned as usize;
        let learned = n - first;
        if learned < 64 {
            return;
        }
        // Activity threshold = median of learned activities.
        let mut acts: Vec<f64> = self.cla_activity[first..].to_vec();
        acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = acts[learned / 2];
        // Locked clauses (reasons of current assignments) must survive.
        let mut locked = vec![false; n];
        for &r in &self.reason {
            if r != INVALID {
                locked[r as usize] = true;
            }
        }
        let mut keep = vec![true; n];
        for ci in first..n {
            let c = &self.clauses[ci];
            if !locked[ci] && c.lits.len() > 2 && self.cla_activity[ci] < median {
                keep[ci] = false;
            }
        }
        // Compact, building the old -> new index map.
        let mut remap = vec![INVALID; n];
        let mut new_clauses = Vec::with_capacity(n);
        let mut new_acts = Vec::with_capacity(n);
        for ci in 0..n {
            if keep[ci] {
                remap[ci] = new_clauses.len() as u32;
                new_clauses.push(std::mem::replace(
                    &mut self.clauses[ci],
                    Clause { lits: Vec::new() },
                ));
                new_acts.push(self.cla_activity[ci]);
            }
        }
        self.stats.deleted += (n - new_clauses.len()) as u64;
        self.clauses = new_clauses;
        self.cla_activity = new_acts;
        for r in &mut self.reason {
            if *r != INVALID {
                *r = remap[*r as usize];
                debug_assert_ne!(*r, INVALID, "locked reasons are kept");
            }
        }
        // Rebuild the watch lists from scratch.
        for w in &mut self.watches {
            w.clear();
        }
        for (ci, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].negate().code()].push(ci as u32);
            self.watches[c.lits[1].negate().code()].push(ci as u32);
        }
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump
    /// level); learned[0] is the asserting literal.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut seen = vec![false; self.num_vars];
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = conflict;
        let mut trail_idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            self.bump_clause(ci);
            {
                let c = &self.clauses[ci as usize];
                let skip = usize::from(p.is_some());
                let lits: Vec<Lit> = c.lits.iter().copied().skip(skip).collect();
                for q in lits {
                    let v = q.var() as usize;
                    if !seen[v] && self.level[v] > 0 {
                        seen[v] = true;
                        self.bump(v);
                        if self.level[v] == cur_level {
                            counter += 1;
                        } else {
                            learned.push(q);
                        }
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            counter -= 1;
            seen[lit.var() as usize] = false;
            if counter == 0 {
                learned[0] = lit.negate();
                break;
            }
            p = Some(lit);
            ci = self.reason[lit.var() as usize];
            debug_assert_ne!(ci, INVALID, "non-decision must have a reason");
        }

        // Backjump level: second-highest level in the learned clause.
        let bj = learned
            .iter()
            .skip(1)
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level into slot 1 (watch position).
        if learned.len() > 1 {
            let pos = learned
                .iter()
                .enumerate()
                .skip(1)
                .find(|(_, l)| self.level[l.var() as usize] == bj)
                .map(|(i, _)| i)
                .expect("bj literal exists");
            learned.swap(1, pos);
        }
        (learned, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var() as usize;
                self.assign[v] = None;
                self.reason[v] = INVALID;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.assign[v].is_none() && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        match best {
            None => false,
            Some(v) => {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.saved_phase[v];
                self.enqueue(Lit::with_sign(v as u32, phase), INVALID);
                true
            }
        }
    }

    /// Sets a wall-clock budget; `solve` returns [`SolveResult::Unknown`]
    /// once it is exceeded. This mirrors the paper's 24-hour timeout
    /// discipline for the SAT baseline. Equivalent to [`Solver::set_budget`]
    /// with [`Budget::with_deadline`].
    pub fn set_wall_budget(&mut self, budget: std::time::Duration) {
        self.budget = Budget::with_deadline(budget);
    }

    /// Attaches a cooperative [`Budget`] (shared deadline / cancellation
    /// token), polled every 1024 conflicts and every 65 536 propagations.
    /// The solver charges no work units — work caps are an algebra knob,
    /// so a work-capped word-level phase still leaves the SAT fallback its
    /// full wall-clock allowance.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    fn budget_interrupt(&self) -> Interrupt {
        Interrupt::Budget(self.budget.exhausted().unwrap_or(ExhaustedReason::Deadline))
    }

    /// Solves with a conflict budget; [`SolveResult::Unknown`] on exhaustion.
    pub fn solve(&mut self, conflict_budget: u64) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.budget.check().is_err() {
            return SolveResult::Unknown(self.budget_interrupt());
        }
        let mut luby_idx = 1u64;
        let mut restart_limit = 64 * luby(luby_idx);
        let mut conflicts_since_restart = 0u64;
        let mut rounds = 0u64;

        loop {
            // Poll on the main loop itself, not just conflicts and
            // propagations: `decide` scans every variable, so on
            // million-variable miters a conflict-light search performs
            // billions of operations between conflict polls.
            rounds += 1;
            if rounds.is_multiple_of(128) && self.budget.check().is_err() {
                return SolveResult::Unknown(self.budget_interrupt());
            }
            let conflict = self.propagate();
            if self.interrupted {
                return SolveResult::Unknown(self.budget_interrupt());
            }
            if let Some(ci) = conflict {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    return SolveResult::Unsat;
                }
                if self.stats.conflicts >= conflict_budget {
                    return SolveResult::Unknown(Interrupt::Conflicts(conflict_budget));
                }
                if self.stats.conflicts.is_multiple_of(1024) && self.budget.check().is_err() {
                    return SolveResult::Unknown(self.budget_interrupt());
                }
                let (learned, bj) = self.analyze(ci);
                self.cancel_until(bj);
                self.stats.learned += 1;
                if learned.len() == 1 {
                    self.enqueue(learned[0], INVALID);
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[learned[0].negate().code()].push(idx);
                    self.watches[learned[1].negate().code()].push(idx);
                    let assert_lit = learned[0];
                    self.clauses.push(Clause { lits: learned });
                    self.cla_activity.push(self.cla_inc);
                    self.enqueue(assert_lit, idx);
                }
                self.var_inc /= 0.95; // variable activity decay via growth
                self.cla_inc /= 0.999; // clause activity decay via growth
                if self.stats.conflicts.is_multiple_of(self.reduce_limit) {
                    self.reduce_db();
                    self.reduce_limit += self.reduce_limit / 2;
                }
            } else if conflicts_since_restart >= restart_limit {
                conflicts_since_restart = 0;
                luby_idx += 1;
                restart_limit = 64 * luby(luby_idx);
                self.stats.restarts += 1;
                self.cancel_until(0);
            } else if !self.decide() {
                // All variables assigned: SAT.
                let model: Vec<bool> = self
                    .assign
                    .iter()
                    .map(|a| a.expect("full assignment"))
                    .collect();
                return SolveResult::Sat(model);
            }
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,…
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(cnf: Cnf) -> SolveResult {
        Solver::new(cnf).solve(u64::MAX)
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(matches!(solve(Cnf::new(3)), SolveResult::Sat(_)));
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(1), Lit::neg(2)]);
        match solve(cnf) {
            SolveResult::Sat(m) => {
                assert!(m[0] && m[1] && !m[2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simple_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert_eq!(solve(cnf), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_unsat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1 is unsatisfiable.
        let mut cnf = Cnf::new(3);
        let xor1 = |cnf: &mut Cnf, a: u32, b: u32| {
            cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
            cnf.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut cnf, 0, 1);
        xor1(&mut cnf, 1, 2);
        xor1(&mut cnf, 0, 2);
        assert_eq!(solve(cnf), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // Variables p(i,j): pigeon i in hole j; i in 0..3, j in 0..2.
        let v = |i: u32, j: u32| i * 2 + j;
        let mut cnf = Cnf::new(6);
        for i in 0..3 {
            cnf.add_clause(vec![Lit::pos(v(i, 0)), Lit::pos(v(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_clause(vec![Lit::neg(v(i1, j)), Lit::neg(v(i2, j))]);
                }
            }
        }
        assert_eq!(solve(cnf), SolveResult::Unsat);
    }

    #[test]
    fn models_satisfy_formula_random_3sat() {
        // Cross-check against brute force on random small instances.
        use gfab_field::Rng;
        let mut rng = Rng::seed_from_u64(99);
        for _ in 0..40 {
            let nv = 8u32;
            let nc = rng.random_range(10..40);
            let mut cnf = Cnf::new(nv);
            for _ in 0..nc {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| {
                        Lit::with_sign(
                            rng.random_range(0..nv as usize) as u32,
                            rng.random_bool(0.5),
                        )
                    })
                    .collect();
                cnf.add_clause(lits);
            }
            // Brute force.
            let brute_sat = (0u32..(1 << nv)).any(|m| {
                let model: Vec<bool> = (0..nv).map(|i| (m >> i) & 1 == 1).collect();
                cnf.eval(&model)
            });
            let cnf2 = cnf.clone();
            match Solver::new(cnf).solve(u64::MAX) {
                SolveResult::Sat(model) => {
                    assert!(brute_sat, "solver said SAT, brute force disagrees");
                    assert!(cnf2.eval(&model), "model does not satisfy formula");
                }
                SolveResult::Unsat => assert!(!brute_sat, "solver said UNSAT wrongly"),
                SolveResult::Unknown(_) => panic!("budget was unlimited"),
            }
        }
    }

    #[test]
    fn pigeonhole_8_into_7_exercises_clause_deletion() {
        // Large enough to trigger reduce_db (thousands of conflicts) while
        // still UNSAT-provable; correctness after database reduction is
        // exactly what this asserts.
        let n = 7u32;
        let v = |i: u32, j: u32| i * n + j;
        let mut cnf = Cnf::new((n + 1) * n);
        for i in 0..=n {
            cnf.add_clause((0..n).map(|j| Lit::pos(v(i, j))).collect());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    cnf.add_clause(vec![Lit::neg(v(i1, j)), Lit::neg(v(i2, j))]);
                }
            }
        }
        let mut solver = Solver::new(cnf);
        assert_eq!(solver.solve(u64::MAX), SolveResult::Unsat);
        assert!(
            solver.stats.conflicts > 8_192 || solver.stats.deleted == 0,
            "if reduction ran, many conflicts happened"
        );
    }

    #[test]
    fn budget_produces_unknown() {
        // A moderately hard pigeonhole instance with a 1-conflict budget.
        let n = 6u32; // 7 pigeons, 6 holes
        let v = |i: u32, j: u32| i * n + j;
        let mut cnf = Cnf::new((n + 1) * n);
        for i in 0..=n {
            cnf.add_clause((0..n).map(|j| Lit::pos(v(i, j))).collect());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    cnf.add_clause(vec![Lit::neg(v(i1, j)), Lit::neg(v(i2, j))]);
                }
            }
        }
        assert_eq!(
            Solver::new(cnf).solve(1),
            SolveResult::Unknown(Interrupt::Conflicts(1))
        );
    }

    #[test]
    fn cancelled_budget_stops_solver_with_reason() {
        let n = 6u32;
        let v = |i: u32, j: u32| i * n + j;
        let mut cnf = Cnf::new((n + 1) * n);
        for i in 0..=n {
            cnf.add_clause((0..n).map(|j| Lit::pos(v(i, j))).collect());
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    cnf.add_clause(vec![Lit::neg(v(i1, j)), Lit::neg(v(i2, j))]);
                }
            }
        }
        let mut solver = Solver::new(cnf);
        let budget = Budget::unlimited();
        budget.cancel();
        solver.set_budget(budget);
        // The conflict-loop poll fires every 1024 conflicts; this instance
        // has plenty, so the cancellation is observed and reported.
        assert_eq!(
            solver.solve(u64::MAX),
            SolveResult::Unknown(Interrupt::Budget(ExhaustedReason::Cancelled))
        );
    }
}
