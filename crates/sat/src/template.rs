//! Gate-shape Tseitin clause templates.
//!
//! Every gate of a given [`GateKind`] produces the same clause *shape* —
//! only the variable numbers differ. This module factors those shapes
//! into one static, process-wide template table: the artifact that
//! ISSUE-6 calls the "gate-shape → Tseitin clause templates" cache. It
//! is built at compile time (there is nothing run-time-dependent in a
//! clause shape), shared by every encoding in every thread, and
//! instantiated per gate by substituting the gate's output/input
//! variables into the [`Slot`]s.
//!
//! The template order reproduces the historical inline emission
//! byte-for-byte: same clauses, same clause order, same literal order
//! within each clause. CNF output — and therefore CDCL behaviour,
//! conflict counts and verdicts — is bit-identical to the pre-template
//! encoder.

use gfab_netlist::GateKind;

/// Which gate pin a template literal refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The gate's output net.
    Out,
    /// The gate's first input.
    In0,
    /// The gate's second input.
    In1,
}

/// One literal of a clause template: a pin and a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TLit {
    /// The pin the literal binds to.
    pub slot: Slot,
    /// `true` for the positive literal of that pin's variable.
    pub positive: bool,
}

const fn tl(slot: Slot, positive: bool) -> TLit {
    TLit { slot, positive }
}

use Slot::{In0, In1, Out};

// z <-> a & b  (AND; NAND flips the Out polarity).
const AND: &[&[TLit]] = &[
    &[tl(Out, false), tl(In0, true)],
    &[tl(Out, false), tl(In1, true)],
    &[tl(Out, true), tl(In0, false), tl(In1, false)],
];
const NAND: &[&[TLit]] = &[
    &[tl(Out, true), tl(In0, true)],
    &[tl(Out, true), tl(In1, true)],
    &[tl(Out, false), tl(In0, false), tl(In1, false)],
];
// z <-> a | b.
const OR: &[&[TLit]] = &[
    &[tl(Out, true), tl(In0, false)],
    &[tl(Out, true), tl(In1, false)],
    &[tl(Out, false), tl(In0, true), tl(In1, true)],
];
const NOR: &[&[TLit]] = &[
    &[tl(Out, false), tl(In0, false)],
    &[tl(Out, false), tl(In1, false)],
    &[tl(Out, true), tl(In0, true), tl(In1, true)],
];
// z <-> a ⊕ b.
const XOR: &[&[TLit]] = &[
    &[tl(Out, false), tl(In0, true), tl(In1, true)],
    &[tl(Out, false), tl(In0, false), tl(In1, false)],
    &[tl(Out, true), tl(In0, true), tl(In1, false)],
    &[tl(Out, true), tl(In0, false), tl(In1, true)],
];
const XNOR: &[&[TLit]] = &[
    &[tl(Out, true), tl(In0, true), tl(In1, true)],
    &[tl(Out, true), tl(In0, false), tl(In1, false)],
    &[tl(Out, false), tl(In0, true), tl(In1, false)],
    &[tl(Out, false), tl(In0, false), tl(In1, true)],
];
const NOT: &[&[TLit]] = &[
    &[tl(Out, true), tl(In0, true)],
    &[tl(Out, false), tl(In0, false)],
];
const BUF: &[&[TLit]] = &[
    &[tl(Out, false), tl(In0, true)],
    &[tl(Out, true), tl(In0, false)],
];
const CONST0: &[&[TLit]] = &[&[tl(Out, false)]];
const CONST1: &[&[TLit]] = &[&[tl(Out, true)]];

/// The clause template for one gate kind: a slice of clauses, each a
/// slice of [`TLit`]s, in the exact order the encoder must emit them.
#[must_use]
pub fn clause_template(kind: GateKind) -> &'static [&'static [TLit]] {
    match kind {
        GateKind::And => AND,
        GateKind::Nand => NAND,
        GateKind::Or => OR,
        GateKind::Nor => NOR,
        GateKind::Xor => XOR,
        GateKind::Xnor => XNOR,
        GateKind::Not => NOT,
        GateKind::Buf => BUF,
        GateKind::Const0 => CONST0,
        GateKind::Const1 => CONST1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates one template as a boolean constraint: does assignment
    /// (z, a, b) satisfy every clause?
    fn satisfies(template: &[&[TLit]], z: bool, a: bool, b: bool) -> bool {
        template.iter().all(|clause| {
            clause.iter().any(|l| {
                let v = match l.slot {
                    Slot::Out => z,
                    Slot::In0 => a,
                    Slot::In1 => b,
                };
                v == l.positive
            })
        })
    }

    #[test]
    fn templates_encode_exactly_the_gate_function() {
        for kind in GateKind::ALL {
            let template = clause_template(kind);
            for bits in 0u32..8 {
                let (z, a, b) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
                let inputs: Vec<bool> = [a, b][..kind.arity()].to_vec();
                // Unused input slots never appear in the template, so
                // any (a, b) with the right z must agree.
                let expect = kind.eval(&inputs) == z;
                assert_eq!(
                    satisfies(template, z, a, b),
                    expect,
                    "{kind} on z={z} a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn templates_only_reference_live_slots() {
        for kind in GateKind::ALL {
            for clause in clause_template(kind) {
                for l in *clause {
                    let needed = match l.slot {
                        Slot::Out => 0,
                        Slot::In0 => 1,
                        Slot::In1 => 2,
                    };
                    assert!(
                        kind.arity() >= needed,
                        "{kind} template references missing input"
                    );
                }
            }
        }
    }
}
