//! Tseitin encoding of a netlist into CNF.

use crate::cnf::{Cnf, Lit};
use crate::template::{clause_template, Slot};
use gfab_field::budget::{Budget, BudgetExceeded};
use gfab_netlist::{NetId, Netlist};

/// How many gates are encoded between budget polls.
const BUDGET_STRIDE: usize = 65_536;

/// The CNF encoding of a netlist, with the net → variable map.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The formula (so far: gate consistency clauses only).
    pub cnf: Cnf,
    /// `var_of[net]` is the CNF variable carrying the net's value.
    pub var_of: Vec<u32>,
}

/// Encodes gate consistency constraints for every gate of `nl`. Every net
/// gets one CNF variable; callers constrain inputs/outputs on top (e.g.
/// assert the miter output).
pub fn encode(nl: &Netlist) -> Encoding {
    encode_budgeted(nl, &Budget::unlimited()).expect("unlimited budget never trips")
}

/// [`encode`] under a cooperative [`Budget`], polled every
/// [`BUDGET_STRIDE`] gates — million-gate miters take long enough to
/// encode that a deadline must be able to interrupt the encoding itself.
///
/// Clauses come from the shared gate-shape template table
/// ([`clause_template`]): one static shape per [`gfab_netlist::GateKind`],
/// instantiated here by substituting the gate's net variables. The
/// emitted CNF is bit-identical to the historical inline encoder.
///
/// # Errors
///
/// [`BudgetExceeded`] when the budget trips mid-encoding.
pub fn encode_budgeted(nl: &Netlist, budget: &Budget) -> Result<Encoding, BudgetExceeded> {
    let mut cnf = Cnf::new(nl.num_nets() as u32);
    let var_of: Vec<u32> = (0..nl.num_nets() as u32).collect();
    let v = |n: NetId| var_of[n.index()];
    for (i, gate) in nl.gates().iter().enumerate() {
        if i % BUDGET_STRIDE == 0 {
            budget.check()?;
        }
        for clause in clause_template(gate.kind) {
            let lits = clause
                .iter()
                .map(|l| {
                    let var = match l.slot {
                        Slot::Out => v(gate.output),
                        Slot::In0 => v(gate.inputs[0]),
                        Slot::In1 => v(gate.inputs[1]),
                    };
                    Lit::with_sign(var, l.positive)
                })
                .collect();
            cnf.add_clause(lits);
        }
    }
    Ok(Encoding { cnf, var_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};
    use gfab_netlist::sim::simulate_bits;
    use gfab_netlist::GateKind;

    #[test]
    fn encoding_is_consistent_with_simulation() {
        // Build one instance of each gate and check that every satisfying
        // assignment of the CNF matches circuit simulation.
        let mut nl = Netlist::new("gates");
        let a = nl.add_input_word("A", 2);
        let outs: Vec<NetId> = [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Nand,
            GateKind::Nor,
        ]
        .into_iter()
        .map(|k| nl.gate2(k, a[0], a[1]))
        .collect();
        let n = nl.not(a[0]);
        let b = nl.add_gate(GateKind::Buf, &[a[1]]);
        let mut all = outs.clone();
        all.push(n);
        all.push(b);
        // Output word only needs to exist for validation.
        nl.set_output_word("Z", vec![all[0], all[1]]);

        let enc = encode(&nl);
        for bits in 0u32..4 {
            let inputs = [(bits & 1) == 1, (bits & 2) == 2];
            let sim = simulate_bits(&nl, &inputs);
            // Constrain the inputs and solve; the unique model must match.
            let mut cnf = enc.cnf.clone();
            cnf.add_clause(vec![Lit::with_sign(enc.var_of[a[0].index()], inputs[0])]);
            cnf.add_clause(vec![Lit::with_sign(enc.var_of[a[1].index()], inputs[1])]);
            match Solver::new(cnf).solve(u64::MAX) {
                SolveResult::Sat(model) => {
                    for &net in &all {
                        assert_eq!(
                            model[enc.var_of[net.index()] as usize],
                            sim[net.index()],
                            "net {} under inputs {inputs:?}",
                            nl.net_name(net)
                        );
                    }
                }
                other => panic!("must be SAT: {other:?}"),
            }
        }
    }

    #[test]
    fn constants_are_pinned() {
        let mut nl = Netlist::new("c");
        nl.add_input_word("A", 1);
        let c1 = nl.constant(true);
        let c0 = nl.constant(false);
        nl.set_output_word("Z", vec![c1, c0]);
        let enc = encode(&nl);
        let mut cnf = enc.cnf.clone();
        // Force c1 = 0: must be UNSAT.
        cnf.add_clause(vec![Lit::neg(enc.var_of[c1.index()])]);
        assert_eq!(Solver::new(cnf).solve(u64::MAX), SolveResult::Unsat);
    }
}
