//! # gfab-sat
//!
//! A from-scratch CDCL SAT solver and the miter-based combinational
//! equivalence baseline of Section 6 of the paper ("For equivalence
//! checking using AIG and SAT-based methods, a miter is constructed
//! between Spec and Impl" — and those methods "cannot prove equivalence
//! beyond 16-bit multiplier circuits").
//!
//! The solver implements the standard modern core: two-watched-literal
//! propagation, first-UIP conflict analysis with clause learning,
//! activity-based (VSIDS-style) decisions with exponential decay, phase
//! saving, and Luby restarts. A conflict budget turns the expected blow-up
//! on large multiplier miters into a clean `Unknown` instead of a hang.
//!
//! # Example
//!
//! ```
//! use gfab_sat::{Cnf, Lit, Solver, SolveResult};
//!
//! // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
//! let mut cnf = Cnf::new(3);
//! cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
//! cnf.add_clause(vec![Lit::neg(0), Lit::pos(1)]);
//! cnf.add_clause(vec![Lit::neg(1), Lit::pos(2)]);
//! let mut solver = Solver::new(cnf);
//! match solver.solve(u64::MAX) {
//!     SolveResult::Sat(model) => {
//!         assert!(model[1] && model[2]);
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod equiv;
mod solver;
pub mod template;
pub mod tseitin;

pub use cnf::{Cnf, Lit};
pub use solver::{Interrupt, SolveResult, Solver, SolverStats};
