//! CNF formula representation.

use std::fmt;

/// A literal: variable index with polarity, packed as `2·var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// A literal of `v` with the given sign (`true` = positive).
    pub fn with_sign(v: u32, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The packed code (used to index watch lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "~x{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A CNF formula under construction.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula over `num_vars` variables.
    pub fn new(num_vars: u32) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Adds a clause (a disjunction of literals). Duplicate literals are
    /// de-duplicated; tautological clauses (x ∨ ¬x) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        for l in &lits {
            assert!(l.var() < self.num_vars, "literal out of range: {l}");
        }
        lits.sort();
        lits.dedup();
        let tautology = lits
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1]);
        if !tautology {
            self.clauses.push(lits);
        }
    }

    /// Evaluates the formula on a full assignment (`model[v]` is the value
    /// of variable `v`). Used by tests and for model validation.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var() as usize] == l.is_pos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let p = Lit::pos(5);
        let n = Lit::neg(5);
        assert_eq!(p.var(), 5);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert_eq!(Lit::with_sign(3, true), Lit::pos(3));
        assert_eq!(Lit::with_sign(3, false), Lit::neg(3));
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(0)]);
        assert!(cnf.clauses().is_empty());
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(0), Lit::pos(1)]);
        assert_eq!(cnf.clauses().len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(1)]);
        assert!(cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
