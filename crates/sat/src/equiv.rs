//! Miter-based equivalence checking: the SAT baseline of Section 6.

use crate::cnf::Lit;
use crate::solver::{Interrupt, SolveResult, Solver, SolverStats};
use crate::tseitin::encode_budgeted;
use gfab_field::budget::Budget;
use gfab_netlist::miter::build_miter;
use gfab_netlist::Netlist;
use gfab_telemetry::{Counter, Hist, HistData, Phase, Telemetry};

/// Verdict of the SAT-based miter check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// The miter is UNSAT: the circuits are equivalent.
    Equivalent,
    /// The miter is SAT: a distinguishing input assignment (bits of all
    /// input words, in [`Netlist::input_bits`] order).
    Counterexample(Vec<bool>),
    /// A resource ran out — the paper's "cannot prove equivalence within
    /// 24 hours" cell. The payload says *which* resource ended the run
    /// (conflict budget vs. wall clock / cancellation).
    Unknown(Interrupt),
}

/// Report of a SAT equivalence run.
#[derive(Debug, Clone)]
pub struct SatReport {
    /// The verdict.
    pub verdict: SatVerdict,
    /// Solver statistics.
    pub stats: SolverStats,
    /// Number of CNF variables of the miter.
    pub cnf_vars: u32,
    /// Number of CNF clauses of the miter.
    pub cnf_clauses: usize,
}

/// Builds the Spec/Impl miter, encodes it, asserts the output and solves
/// within `conflict_budget` conflicts.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces (see
/// [`build_miter`]).
pub fn check_equivalence_sat(spec: &Netlist, impl_: &Netlist, conflict_budget: u64) -> SatReport {
    check_equivalence_sat_with(spec, impl_, conflict_budget, None)
}

/// [`check_equivalence_sat`] with an additional wall-clock budget.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces.
pub fn check_equivalence_sat_with(
    spec: &Netlist,
    impl_: &Netlist,
    conflict_budget: u64,
    wall_budget: Option<std::time::Duration>,
) -> SatReport {
    let budget = match wall_budget {
        Some(w) => Budget::with_deadline(w),
        None => Budget::unlimited(),
    };
    check_equivalence_sat_budgeted(spec, impl_, conflict_budget, &budget)
}

/// [`check_equivalence_sat`] under a shared cooperative [`Budget`]
/// (deadline / cancellation token), polled in the solver's conflict and
/// propagate loops. This is the fallback rung of the `Verifier` ladder:
/// it inherits whatever wall clock the word-level phase left over.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces.
pub fn check_equivalence_sat_budgeted(
    spec: &Netlist,
    impl_: &Netlist,
    conflict_budget: u64,
    budget: &Budget,
) -> SatReport {
    check_equivalence_sat_traced(spec, impl_, conflict_budget, budget, &Telemetry::disabled())
}

/// [`check_equivalence_sat_budgeted`] with a [`Telemetry`] handle: miter
/// construction, Tseitin encoding, solver construction and the CDCL
/// search each record a span (with CNF-size and search-effort counters)
/// under the caller's current span.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces.
pub fn check_equivalence_sat_traced(
    spec: &Netlist,
    impl_: &Netlist,
    conflict_budget: u64,
    budget: &Budget,
    tele: &Telemetry,
) -> SatReport {
    // Entry poll before the (unpolled) miter construction and Tseitin
    // encoding: a budget that is already spent must not pay for either.
    if let Err(e) = budget.check() {
        return SatReport {
            verdict: SatVerdict::Unknown(Interrupt::Budget(e.reason)),
            stats: SolverStats::default(),
            cnf_vars: 0,
            cnf_clauses: 0,
        };
    }
    let miter_span = tele.span(Phase::MiterBuild);
    let miter = build_miter(spec, impl_);
    let _ = miter_span.finish();
    let mut encode_span = tele.span(Phase::TseitinEncode);
    let enc = match encode_budgeted(&miter, budget) {
        Ok(enc) => enc,
        Err(e) => {
            return SatReport {
                verdict: SatVerdict::Unknown(Interrupt::Budget(e.reason)),
                stats: SolverStats::default(),
                cnf_vars: 0,
                cnf_clauses: 0,
            }
        }
    };
    let mut cnf = enc.cnf;
    let neq = miter.output_word().bits[0];
    cnf.add_clause(vec![Lit::pos(enc.var_of[neq.index()])]);
    let cnf_vars = cnf.num_vars();
    let cnf_clauses = cnf.clauses().len();
    encode_span.counter(Counter::CnfVars, u64::from(cnf_vars));
    encode_span.counter(Counter::CnfClauses, cnf_clauses as u64);
    if encode_span.is_enabled() {
        // Clause-length distribution is cheap relative to encoding but
        // still a full pass over the CNF; only pay for it when traced.
        let mut hist = HistData::new();
        for clause in cnf.clauses() {
            hist.record(clause.len() as u64);
        }
        encode_span.observe_hist(Hist::CnfClauseLen, &hist);
    }
    let _ = encode_span.finish();
    // Watch-list construction over millions of clauses is itself seconds
    // of work; build the solver under the budget so a deadline that
    // expires here is honoured before the search even starts.
    let build_span = tele.span(Phase::SolverBuild);
    let mut solver = match Solver::new_budgeted(cnf, budget) {
        Ok(s) => s,
        Err(e) => {
            return SatReport {
                verdict: SatVerdict::Unknown(Interrupt::Budget(e.reason)),
                stats: SolverStats::default(),
                cnf_vars,
                cnf_clauses,
            }
        }
    };
    let _ = build_span.finish();
    let mut solve_span = tele.span(Phase::SatSolve);
    let verdict = match solver.solve(conflict_budget) {
        SolveResult::Unsat => SatVerdict::Equivalent,
        SolveResult::Unknown(i) => SatVerdict::Unknown(i),
        SolveResult::Sat(model) => {
            let bits = miter
                .input_bits()
                .iter()
                .map(|n| model[enc.var_of[n.index()] as usize])
                .collect();
            SatVerdict::Counterexample(bits)
        }
    };
    solve_span.counter(Counter::Conflicts, solver.stats.conflicts);
    solve_span.counter(Counter::Decisions, solver.stats.decisions);
    solve_span.counter(Counter::Propagations, solver.stats.propagations);
    solve_span.counter(Counter::Restarts, solver.stats.restarts);
    solve_span.counter(Counter::LearnedClauses, solver.stats.learned);
    let _ = solve_span.finish();
    SatReport {
        verdict,
        stats: solver.stats.clone(),
        cnf_vars,
        cnf_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::GfContext;
    use gfab_netlist::mutate::inject_random_bug;
    use gfab_netlist::sim::simulate_bits;

    #[test]
    fn mastrovito_vs_montgomery_small_k() {
        for k in [2usize, 3, 4] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let spec = mastrovito_multiplier(&ctx);
            let impl_ = montgomery_multiplier_hier(
                &GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap(),
            )
            .flatten();
            let report = check_equivalence_sat(&spec, &impl_, u64::MAX);
            assert_eq!(report.verdict, SatVerdict::Equivalent, "k = {k}");
        }
    }

    #[test]
    fn bug_produces_true_counterexample() {
        let ctx = GfContext::new(irreducible_polynomial(3).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let mut found = 0;
        for seed in 0..6 {
            let (bad, _) = inject_random_bug(&spec, seed);
            let report = check_equivalence_sat(&spec, &bad, u64::MAX);
            if let SatVerdict::Counterexample(bits) = &report.verdict {
                found += 1;
                // The assignment must actually distinguish the circuits.
                let zs = simulate_bits(&spec, bits);
                let zb = simulate_bits(&bad, bits);
                let os = &spec.output_word().bits;
                let ob = &bad.output_word().bits;
                let differs = os
                    .iter()
                    .zip(ob)
                    .any(|(&s, &b)| zs[s.index()] != zb[b.index()]);
                assert!(differs, "SAT counterexample must be real");
            }
        }
        assert!(found >= 3, "most mutations must be caught");
    }

    #[test]
    fn tiny_conflict_budget_reports_conflicts_as_the_reason() {
        let ctx = GfContext::new(irreducible_polynomial(6).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(
            &GfContext::shared(irreducible_polynomial(6).unwrap()).unwrap(),
        )
        .flatten();
        let report = check_equivalence_sat(&spec, &impl_, 2);
        // The verdict must say *why* it is unknown: the conflict budget
        // ended the run, not a wall-clock deadline.
        assert_eq!(report.verdict, SatVerdict::Unknown(Interrupt::Conflicts(2)));
    }

    #[test]
    fn exhausted_wall_budget_reports_deadline_as_the_reason() {
        use gfab_field::budget::ExhaustedReason;
        let ctx = GfContext::new(irreducible_polynomial(8).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(
            &GfContext::shared(irreducible_polynomial(8).unwrap()).unwrap(),
        )
        .flatten();
        // A budget that is already spent: the solver must bail out at its
        // entry poll and name the deadline, not the conflict budget.
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let report = check_equivalence_sat_budgeted(&spec, &impl_, u64::MAX, &budget);
        assert_eq!(
            report.verdict,
            SatVerdict::Unknown(Interrupt::Budget(ExhaustedReason::Deadline))
        );
    }
}
