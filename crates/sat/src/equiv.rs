//! Miter-based equivalence checking: the SAT baseline of Section 6.

use crate::cnf::Lit;
use crate::solver::{SolveResult, Solver, SolverStats};
use crate::tseitin::encode;
use gfab_netlist::miter::build_miter;
use gfab_netlist::Netlist;

/// Verdict of the SAT-based miter check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatVerdict {
    /// The miter is UNSAT: the circuits are equivalent.
    Equivalent,
    /// The miter is SAT: a distinguishing input assignment (bits of all
    /// input words, in [`Netlist::input_bits`] order).
    Counterexample(Vec<bool>),
    /// The conflict budget ran out — the paper's "cannot prove equivalence
    /// within 24 hours" cell.
    Unknown,
}

/// Report of a SAT equivalence run.
#[derive(Debug, Clone)]
pub struct SatReport {
    /// The verdict.
    pub verdict: SatVerdict,
    /// Solver statistics.
    pub stats: SolverStats,
    /// Number of CNF variables of the miter.
    pub cnf_vars: u32,
    /// Number of CNF clauses of the miter.
    pub cnf_clauses: usize,
}

/// Builds the Spec/Impl miter, encodes it, asserts the output and solves
/// within `conflict_budget` conflicts.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces (see
/// [`build_miter`]).
pub fn check_equivalence_sat(spec: &Netlist, impl_: &Netlist, conflict_budget: u64) -> SatReport {
    check_equivalence_sat_with(spec, impl_, conflict_budget, None)
}

/// [`check_equivalence_sat`] with an additional wall-clock budget.
///
/// # Panics
///
/// Panics if the two netlists have incompatible interfaces.
pub fn check_equivalence_sat_with(
    spec: &Netlist,
    impl_: &Netlist,
    conflict_budget: u64,
    wall_budget: Option<std::time::Duration>,
) -> SatReport {
    let miter = build_miter(spec, impl_);
    let enc = encode(&miter);
    let mut cnf = enc.cnf;
    let neq = miter.output_word().bits[0];
    cnf.add_clause(vec![Lit::pos(enc.var_of[neq.index()])]);
    let cnf_vars = cnf.num_vars();
    let cnf_clauses = cnf.clauses().len();
    let mut solver = Solver::new(cnf);
    if let Some(w) = wall_budget {
        solver.set_wall_budget(w);
    }
    let verdict = match solver.solve(conflict_budget) {
        SolveResult::Unsat => SatVerdict::Equivalent,
        SolveResult::Unknown => SatVerdict::Unknown,
        SolveResult::Sat(model) => {
            let bits = miter
                .input_bits()
                .iter()
                .map(|n| model[enc.var_of[n.index()] as usize])
                .collect();
            SatVerdict::Counterexample(bits)
        }
    };
    SatReport {
        verdict,
        stats: solver.stats.clone(),
        cnf_vars,
        cnf_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::GfContext;
    use gfab_netlist::mutate::inject_random_bug;
    use gfab_netlist::sim::simulate_bits;

    #[test]
    fn mastrovito_vs_montgomery_small_k() {
        for k in [2usize, 3, 4] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let spec = mastrovito_multiplier(&ctx);
            let impl_ = montgomery_multiplier_hier(
                &GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap(),
            )
            .flatten();
            let report = check_equivalence_sat(&spec, &impl_, u64::MAX);
            assert_eq!(report.verdict, SatVerdict::Equivalent, "k = {k}");
        }
    }

    #[test]
    fn bug_produces_true_counterexample() {
        let ctx = GfContext::new(irreducible_polynomial(3).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let mut found = 0;
        for seed in 0..6 {
            let (bad, _) = inject_random_bug(&spec, seed);
            let report = check_equivalence_sat(&spec, &bad, u64::MAX);
            if let SatVerdict::Counterexample(bits) = &report.verdict {
                found += 1;
                // The assignment must actually distinguish the circuits.
                let zs = simulate_bits(&spec, bits);
                let zb = simulate_bits(&bad, bits);
                let os = &spec.output_word().bits;
                let ob = &bad.output_word().bits;
                let differs = os
                    .iter()
                    .zip(ob)
                    .any(|(&s, &b)| zs[s.index()] != zb[b.index()]);
                assert!(differs, "SAT counterexample must be real");
            }
        }
        assert!(found >= 3, "most mutations must be caught");
    }

    #[test]
    fn tiny_budget_gives_unknown_on_nontrivial_miter() {
        let ctx = GfContext::new(irreducible_polynomial(6).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(
            &GfContext::shared(irreducible_polynomial(6).unwrap()).unwrap(),
        )
        .flatten();
        let report = check_equivalence_sat(&spec, &impl_, 2);
        assert_eq!(report.verdict, SatVerdict::Unknown);
    }
}
