//! Precomputed modular reduction for `F_2[x] / (P(x))`.
//!
//! Built once per [`crate::GfContext`], a [`ModReducer`] reduces an
//! unreduced product (up to `2k` coefficient bits) in place, word at a
//! time, without ever running the generic Euclidean division:
//!
//! * **Sparse moduli** (trinomials/pentanomials — every NIST polynomial):
//!   `x^k = Σ x^{t_i}` for the low terms `t_i` of `P`, so a whole limb of
//!   overflow bits folds down with one shifted XOR per tail term.
//! * **Dense moduli**: a precomputed table of `x^{64j} mod P` for each
//!   overflow limb position `j`; folding a limb XORs the table row shifted
//!   by each set bit. Slower than the sparse path but still divmod-free.
//!
//! Both paths iterate until the degree drops below `k`; each fold strictly
//! decreases the maximum exponent, so termination is immediate (one pass
//! for every NIST modulus, whose tails sit far below `k − 64`).

use crate::gf2poly::Gf2Poly;

/// Maximum modulus weight that still uses the sparse shift-XOR path.
/// Anything heavier precomputes the dense fold table instead.
const SPARSE_WEIGHT_LIMIT: usize = 16;

/// A reduction plan for a fixed modulus `P` of degree `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ModReducer {
    /// `P = x^k + Σ x^{t}` with few tails: fold by shifted XOR.
    Sparse {
        /// Degree of the modulus.
        k: usize,
        /// Exponents of `P` below `k`, descending (so the largest shift,
        /// the one that can re-pollute the current limb, comes first).
        tails: Vec<usize>,
    },
    /// Dense modulus: table-driven folding.
    Dense {
        /// Degree of the modulus.
        k: usize,
        /// `folds[j]` = limbs of `x^{64·(kl+j)} mod P` (each `kl` limbs,
        /// zero-padded), for overflow limb positions `kl..=2·kl`.
        folds: Vec<Vec<u64>>,
        /// Limbs of `x^k mod P` (zero-padded to `kl`), for the partial
        /// top-limb bits when `k` is not a multiple of 64.
        xk: Vec<u64>,
    },
}

impl ModReducer {
    /// Builds the plan for `modulus` (degree ≥ 1 required).
    pub fn new(modulus: &Gf2Poly) -> ModReducer {
        let k = modulus
            .degree()
            .expect("reducer modulus must have degree >= 1");
        assert!(k >= 1, "reducer modulus must have degree >= 1");
        let kl = k.div_ceil(64);
        if modulus.weight() <= SPARSE_WEIGHT_LIMIT {
            let mut tails: Vec<usize> = modulus.exponents().filter(|&e| e < k).collect();
            tails.reverse();
            ModReducer::Sparse { k, tails }
        } else {
            let pad = |p: &Gf2Poly| {
                let mut v = p.limbs().to_vec();
                v.resize(kl, 0);
                v
            };
            let xk = Gf2Poly::monomial(k).rem(modulus);
            let folds = (kl..=2 * kl)
                .map(|j| pad(&Gf2Poly::monomial(64 * j).rem(modulus)))
                .collect();
            ModReducer::Dense {
                k,
                folds,
                xk: pad(&xk),
            }
        }
    }

    /// The modulus degree.
    pub fn k(&self) -> usize {
        match self {
            ModReducer::Sparse { k, .. } | ModReducer::Dense { k, .. } => *k,
        }
    }

    /// Limbs occupied by a reduced element.
    pub fn element_limbs(&self) -> usize {
        self.k().div_ceil(64)
    }

    /// Largest buffer (in limbs) that [`Self::reduce_in_place`] accepts.
    /// Covers any product of two reduced elements, with a guard limb.
    pub fn max_buf_limbs(&self) -> usize {
        2 * self.element_limbs() + 1
    }

    /// Reduces `buf` modulo `P` in place and returns the number of limb
    /// folds performed. On return, limbs `element_limbs()..` are zero and
    /// the value occupies limbs `..element_limbs()` with degree < `k`.
    ///
    /// `buf` must be at most [`Self::max_buf_limbs`] limbs: shifted folds
    /// from the top limb may touch one limb above it, which the guard
    /// limb inside that bound absorbs.
    pub fn reduce_in_place(&self, buf: &mut [u64]) -> u64 {
        debug_assert!(buf.len() <= self.max_buf_limbs());
        let mut fold_count = 0u64;
        match self {
            ModReducer::Sparse { k, tails } => {
                let k = *k;
                let kl = k.div_ceil(64);
                // Fold whole overflow limbs, top down. A fold whose tail
                // shift lands back in the current limb only ever sets
                // *lower* bits there, so the inner loop terminates.
                for j in (kl..buf.len()).rev() {
                    while buf[j] != 0 {
                        let w = buf[j];
                        buf[j] = 0;
                        for &t in tails {
                            xor_shifted(buf, w, 64 * j - k + t);
                        }
                        fold_count += 1;
                    }
                }
                // Partial top limb: bits k..64·kl map to x^{k+i} = Σ x^{t+i}.
                let kb = k % 64;
                if kb != 0 && kl <= buf.len() {
                    let mask = (1u64 << kb) - 1;
                    loop {
                        let w = buf[kl - 1] >> kb;
                        if w == 0 {
                            break;
                        }
                        buf[kl - 1] &= mask;
                        for &t in tails {
                            xor_shifted(buf, w, t);
                        }
                        fold_count += 1;
                        // A large tail can push bits past x^k again (never
                        // for NIST moduli); the loop re-folds them. It also
                        // cannot overflow limb kl-1: t + 63 - kb < k + 63,
                        // within the guard bound.
                        for j in (kl..buf.len()).rev() {
                            while buf[j] != 0 {
                                let v = buf[j];
                                buf[j] = 0;
                                for &t in tails {
                                    xor_shifted(buf, v, 64 * j - k + t);
                                }
                                fold_count += 1;
                            }
                        }
                    }
                }
            }
            ModReducer::Dense { k, folds, xk } => {
                let k = *k;
                let kl = k.div_ceil(64);
                // Fold whole overflow limbs, top down. Each fold of limb j
                // adds rows of degree < k shifted by < 64 bits, which can
                // reach at most limb kl — re-scanned by the outer loop.
                let mut j = buf.len().saturating_sub(1);
                while j >= kl {
                    while buf[j] != 0 {
                        let w = buf[j];
                        buf[j] = 0;
                        let row = &folds[j - kl];
                        for i in 0..64 {
                            if (w >> i) & 1 == 1 {
                                xor_slice_shifted(buf, row, i);
                            }
                        }
                        fold_count += 1;
                    }
                    j -= 1;
                }
                // Partial top limb: x^{k+i} = (x^k mod P)·x^i, which may
                // itself exceed k — iterate; the degree strictly drops.
                let kb = k % 64;
                if kb != 0 && kl <= buf.len() {
                    let mask = (1u64 << kb) - 1;
                    loop {
                        let w = buf[kl - 1] >> kb;
                        if w == 0 {
                            break;
                        }
                        buf[kl - 1] &= mask;
                        for i in 0..64 {
                            if (w >> i) & 1 == 1 {
                                xor_slice_shifted(buf, xk, i);
                            }
                        }
                        fold_count += 1;
                        let mut j = buf.len().saturating_sub(1);
                        while j >= kl {
                            while buf[j] != 0 {
                                let v = buf[j];
                                buf[j] = 0;
                                let row = &folds[j - kl];
                                for i in 0..64 {
                                    if (v >> i) & 1 == 1 {
                                        xor_slice_shifted(buf, row, i);
                                    }
                                }
                                fold_count += 1;
                            }
                            j -= 1;
                        }
                    }
                }
            }
        }
        crate::kernel::add_folds(fold_count);
        fold_count
    }
}

/// XORs the 64-bit word `w` into `buf` at bit offset `off`.
#[inline]
fn xor_shifted(buf: &mut [u64], w: u64, off: usize) {
    let (l, s) = (off / 64, off % 64);
    buf[l] ^= w << s;
    if s != 0 {
        let hi = w >> (64 - s);
        if l + 1 < buf.len() {
            buf[l + 1] ^= hi;
        } else {
            debug_assert_eq!(hi, 0, "fold overflowed the guard limb");
        }
    }
}

/// XORs the limb slice `row` into `buf` at bit offset `s < 64`.
#[inline]
fn xor_slice_shifted(buf: &mut [u64], row: &[u64], s: usize) {
    if s == 0 {
        for (dst, &src) in buf.iter_mut().zip(row) {
            *dst ^= src;
        }
    } else {
        let mut carry = 0u64;
        for (dst, &src) in buf.iter_mut().zip(row) {
            *dst ^= (src << s) | carry;
            carry = src >> (64 - s);
        }
        if carry != 0 {
            buf[row.len()] ^= carry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn reduce_via(reducer: &ModReducer, p: &Gf2Poly) -> Gf2Poly {
        let mut buf = p.limbs().to_vec();
        buf.resize(reducer.max_buf_limbs(), 0);
        let folds = reducer.reduce_in_place(&mut buf);
        assert!(folds > 0 || p.degree().is_none_or(|d| d < reducer.k()));
        Gf2Poly::from_limb_slice(&buf)
    }

    #[test]
    fn sparse_matches_generic_rem_nist() {
        for k in crate::nist::NIST_DEGREES {
            let m = crate::nist::nist_polynomial(k).unwrap();
            let reducer = ModReducer::new(&m);
            assert!(matches!(reducer, ModReducer::Sparse { .. }));
            let cases = [
                Gf2Poly::monomial(2 * k - 2),
                Gf2Poly::from_exponents(&[2 * k - 2, k, k - 1, 63, 0]),
                Gf2Poly::from_exponents(&[k]),
                Gf2Poly::from_exponents(&[k - 1]),
                Gf2Poly::one(),
                Gf2Poly::zero(),
            ];
            for p in &cases {
                assert_eq!(
                    reduce_via(&reducer, p),
                    reference::rem(p, &m),
                    "k={k} p={p}"
                );
            }
        }
    }

    #[test]
    fn dense_matches_generic_rem() {
        // A deliberately heavy modulus: weight > SPARSE_WEIGHT_LIMIT.
        let mut exps: Vec<usize> = (0..20).collect();
        exps.push(97);
        let m = Gf2Poly::from_exponents(&exps);
        let reducer = ModReducer::new(&m);
        assert!(matches!(reducer, ModReducer::Dense { .. }));
        let cases = [
            Gf2Poly::monomial(192),
            Gf2Poly::from_exponents(&[190, 97, 96, 64, 1, 0]),
            Gf2Poly::from_exponents(&[100, 99, 98, 97]),
            Gf2Poly::one(),
        ];
        for p in &cases {
            assert_eq!(reduce_via(&reducer, p), reference::rem(p, &m), "p={p}");
        }
    }

    #[test]
    fn exact_multiple_of_64_degree() {
        // k = 64: elements fill whole limbs exactly (kb == 0 path).
        let m = Gf2Poly::from_exponents(&[64, 4, 3, 1, 0]);
        assert!(m.is_irreducible());
        let reducer = ModReducer::new(&m);
        let p = Gf2Poly::from_exponents(&[126, 64, 63, 0]);
        assert_eq!(reduce_via(&reducer, &p), reference::rem(&p, &m));
    }
}
