//! The extension field `F_{2^k}` and its element type.

use crate::gf2poly::{mul_comb, square_into, Gf2Poly, STACK_ACC, STACK_TABLE};
use crate::kernel;
use crate::limbs::INLINE_LIMBS;
use crate::reduce_mod::ModReducer;
use crate::rng::Rng;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// Errors produced when constructing or operating on a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// The construction polynomial is not irreducible over `F_2`.
    ReducibleModulus(Gf2Poly),
    /// The construction polynomial has degree < 2 (no proper extension).
    DegreeTooSmall,
    /// Attempted to invert the zero element.
    ZeroInverse,
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::ReducibleModulus(p) => {
                write!(f, "polynomial {p} is not irreducible over F_2")
            }
            FieldError::DegreeTooSmall => write!(f, "field construction needs degree >= 2"),
            FieldError::ZeroInverse => write!(f, "zero element has no multiplicative inverse"),
        }
    }
}

impl std::error::Error for FieldError {}

/// An element of `F_{2^k}`, stored as its polynomial-basis representation
/// (a polynomial over `F_2` of degree < k).
///
/// Elements are context-free data; all arithmetic goes through the owning
/// [`GfContext`] so that the modulus is applied consistently. Mixing
/// elements from different contexts is a logic error the type system does
/// not prevent (deliberately, to keep elements lightweight) — the netlist
/// and polynomial layers each hold a single shared context.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf(pub(crate) Gf2Poly);

impl Gf {
    /// Whether this is the additive identity.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Whether this is the multiplicative identity.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.0.is_one()
    }

    /// The underlying polynomial-basis representation.
    #[must_use]
    pub fn as_poly(&self) -> &Gf2Poly {
        &self.0
    }

    /// Bit `i` of the polynomial-basis representation (coefficient of `α^i`).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.0.coeff(i)
    }

    /// Field addition (coefficient-wise XOR).
    ///
    /// Addition never requires modular reduction, so unlike multiplication
    /// it is available directly on elements without a [`GfContext`]. The
    /// result equals [`GfContext::add`] for any context both operands
    /// belong to.
    #[must_use]
    pub fn add(&self, other: &Gf) -> Gf {
        Gf(self.0.add(&other.0))
    }
}

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf({})", self.0)
    }
}

impl fmt::Display for Gf {
    /// Displays the element as a polynomial in `α` (e.g. `α^3 + α + 1`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_zero() {
            return write!(f, "0");
        }
        let exps: Vec<usize> = self.0.exponents().collect();
        let mut first = true;
        for &e in exps.iter().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match e {
                0 => write!(f, "1")?,
                1 => write!(f, "α")?,
                _ => write!(f, "α^{e}")?,
            }
        }
        Ok(())
    }
}

thread_local! {
    // Heap scratch for products whose operands exceed the inline limb
    // capacity (k > 576). Reused across calls so even the big-field path
    // settles into zero steady-state allocation.
    static BIG_SCRATCH: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The field `F_{2^k} = F_2[x] / (P(x))` for an irreducible `P` of degree `k`.
///
/// The context owns the modulus, plus a reduction plan precomputed at
/// construction ([`ModReducer`]): sparse moduli (all NIST polynomials) fold
/// overflow limbs with shifted XORs, dense moduli use a `x^{64j} mod P`
/// table — either way [`GfContext::mul`]/[`GfContext::square`] never run
/// the generic Euclidean division. It is cheap to share via
/// [`GfContext::shared`] (an `Arc`), which is how the polynomial ring and
/// the verification engine reference it.
///
/// # Example
///
/// ```
/// use gfab_field::{GfContext, Gf2Poly};
///
/// let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap(); // F_4
/// let a = ctx.alpha();
/// // α² = α + 1 in F_4
/// assert_eq!(ctx.mul(&a, &a), ctx.add(&a, &ctx.one()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfContext {
    k: usize,
    modulus: Gf2Poly,
    reducer: ModReducer,
}

impl GfContext {
    /// Constructs the field from an irreducible polynomial of degree ≥ 2.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DegreeTooSmall`] for degree < 2 and
    /// [`FieldError::ReducibleModulus`] if `modulus` fails Rabin's test.
    pub fn new(modulus: Gf2Poly) -> Result<Self, FieldError> {
        let k = modulus.degree().unwrap_or(0);
        if k < 2 {
            return Err(FieldError::DegreeTooSmall);
        }
        if !modulus.is_irreducible() {
            return Err(FieldError::ReducibleModulus(modulus));
        }
        let reducer = ModReducer::new(&modulus);
        Ok(GfContext {
            k,
            modulus,
            reducer,
        })
    }

    /// Constructs the field and wraps it in an `Arc` for sharing.
    pub fn shared(modulus: Gf2Poly) -> Result<Arc<Self>, FieldError> {
        Ok(Arc::new(Self::new(modulus)?))
    }

    /// The extension degree `k` (the circuit datapath width).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The field size `q = 2^k` if it fits in a `u64` (k ≤ 63).
    #[must_use]
    pub fn order_u64(&self) -> Option<u64> {
        (self.k <= 63).then(|| 1u64 << self.k)
    }

    /// The irreducible construction polynomial `P(x)`.
    #[must_use]
    pub fn modulus(&self) -> &Gf2Poly {
        &self.modulus
    }

    /// The additive identity.
    #[must_use]
    pub fn zero(&self) -> Gf {
        Gf(Gf2Poly::zero())
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one(&self) -> Gf {
        Gf(Gf2Poly::one())
    }

    /// The generator `α`, a root of `P(x)`.
    #[must_use]
    pub fn alpha(&self) -> Gf {
        Gf(Gf2Poly::x())
    }

    /// `α^e` reduced into the field.
    #[must_use]
    pub fn alpha_pow(&self, e: u64) -> Gf {
        self.pow_u64(&self.alpha(), e)
    }

    /// Builds an element from an arbitrary `F_2[x]` polynomial (reduced
    /// modulo `P`).
    #[must_use]
    pub fn element(&self, p: Gf2Poly) -> Gf {
        let kl = self.reducer.element_limbs();
        let pl = p.limbs();
        if pl.len() <= 2 * kl {
            // Word-level reduction: copy into a guarded buffer and fold.
            let blen = pl.len().max(kl) + 1;
            if blen <= STACK_ACC {
                let mut buf = [0u64; STACK_ACC];
                buf[..pl.len()].copy_from_slice(pl);
                self.reducer.reduce_in_place(&mut buf[..blen]);
                return Gf(Gf2Poly::from_limb_slice(&buf[..blen]));
            }
            let mut buf = vec![0u64; blen];
            buf[..pl.len()].copy_from_slice(pl);
            self.reducer.reduce_in_place(&mut buf);
            return Gf(Gf2Poly::from_limb_slice(&buf));
        }
        // Far-oversized input (degree ≥ 2·64·kl): generic division, the
        // fold tables don't reach that high. Construction-time only.
        Gf(p.rem(&self.modulus))
    }

    /// Builds an element from its low 64 polynomial-basis bits.
    #[must_use]
    pub fn from_u64(&self, bits: u64) -> Gf {
        self.element(Gf2Poly::from_u64(bits))
    }

    /// Builds an element from a bit slice (`bits[i]` is the coefficient of
    /// `α^i`). Slices longer than `k` are reduced modulo `P`.
    #[must_use]
    pub fn from_bits(&self, bits: &[bool]) -> Gf {
        let mut p = Gf2Poly::zero();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.set_coeff(i, true);
            }
        }
        self.element(p)
    }

    /// The `k` polynomial-basis bits of an element, LSB first.
    #[must_use]
    pub fn to_bits(&self, a: &Gf) -> Vec<bool> {
        (0..self.k).map(|i| a.0.coeff(i)).collect()
    }

    /// Field addition (coefficient-wise XOR).
    #[must_use]
    pub fn add(&self, a: &Gf, b: &Gf) -> Gf {
        Gf(a.0.add(&b.0))
    }

    /// In-place field addition.
    pub fn add_assign(&self, a: &mut Gf, b: &Gf) {
        a.0.add_assign(&b.0);
    }

    /// Field multiplication: 4-bit windowed comb product folded by the
    /// precomputed modular reducer. For k ≤ 576 the entire operation runs
    /// on stack buffers and the result lands in inline limb storage — no
    /// heap allocation.
    #[must_use]
    pub fn mul(&self, a: &Gf, b: &Gf) -> Gf {
        kernel::on_mul();
        if a.is_zero() || b.is_zero() {
            return self.zero();
        }
        let (al, bl) = (a.0.limbs(), b.0.limbs());
        let n = al.len() + bl.len();
        if al.len() <= INLINE_LIMBS && bl.len() <= INLINE_LIMBS {
            let mut acc = [0u64; STACK_ACC];
            let mut table = [0u64; STACK_TABLE];
            mul_comb(al, bl, &mut acc[..n], &mut table);
            self.reducer.reduce_in_place(&mut acc[..n + 1]);
            let out = Gf2Poly::from_limb_slice(&acc[..n]);
            kernel::note_result(out.is_inline());
            return Gf(out);
        }
        BIG_SCRATCH.with(|s| {
            let (acc, table) = &mut *s.borrow_mut();
            let tw = al.len().max(bl.len()) + 1;
            if acc.len() < n + 1 {
                acc.resize(n + 1, 0);
            }
            if table.len() < 16 * tw {
                table.resize(16 * tw, 0);
            }
            acc[n] = 0;
            mul_comb(al, bl, &mut acc[..n], table);
            self.reducer.reduce_in_place(&mut acc[..n + 1]);
            let out = Gf2Poly::from_limb_slice(&acc[..n]);
            kernel::note_result(out.is_inline());
            Gf(out)
        })
    }

    /// Field squaring (linear in characteristic 2; faster than `mul(a, a)`):
    /// table-driven bit spread followed by the precomputed reducer.
    #[must_use]
    pub fn square(&self, a: &Gf) -> Gf {
        kernel::on_square();
        let al = a.0.limbs();
        if al.is_empty() {
            return self.zero();
        }
        let n = 2 * al.len();
        if al.len() <= INLINE_LIMBS {
            let mut acc = [0u64; STACK_ACC];
            square_into(al, &mut acc[..n]);
            self.reducer.reduce_in_place(&mut acc[..n + 1]);
            let out = Gf2Poly::from_limb_slice(&acc[..n]);
            kernel::note_result(out.is_inline());
            return Gf(out);
        }
        BIG_SCRATCH.with(|s| {
            let (acc, _) = &mut *s.borrow_mut();
            if acc.len() < n + 1 {
                acc.resize(n + 1, 0);
            }
            acc[n] = 0;
            square_into(al, &mut acc[..n]);
            self.reducer.reduce_in_place(&mut acc[..n + 1]);
            let out = Gf2Poly::from_limb_slice(&acc[..n]);
            kernel::note_result(out.is_inline());
            Gf(out)
        })
    }

    /// `a^e` by square-and-multiply over the fast field kernels.
    #[must_use]
    pub fn pow_u64(&self, a: &Gf, e: u64) -> Gf {
        let mut base = a.clone();
        let mut acc = self.one();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(&acc, &base);
            }
            base = self.square(&base);
            e >>= 1;
        }
        acc
    }

    /// `a^e` where `e` is given as little-endian 64-bit limbs, allowing
    /// exponents up to `2^(64·n)` (needed for `X^q` with `q = 2^k`, k > 63).
    #[must_use]
    pub fn pow_limbs(&self, a: &Gf, e_limbs: &[u64]) -> Gf {
        let mut acc = self.one();
        let mut base = a.clone();
        for &limb in e_limbs {
            let mut l = limb;
            for _ in 0..64 {
                if l & 1 == 1 {
                    acc = self.mul(&acc, &base);
                }
                base = self.square(&base);
                l >>= 1;
            }
        }
        acc
    }

    /// The multiplicative inverse via the extended Euclidean algorithm.
    /// Inverting many elements at once? Use [`GfContext::batch_inv`] —
    /// one of these plus ~3 multiplies per element.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::ZeroInverse`] for the zero element.
    pub fn inv(&self, a: &Gf) -> Result<Gf, FieldError> {
        if a.is_zero() {
            return Err(FieldError::ZeroInverse);
        }
        let (g, s, _) = a.0.ext_gcd(&self.modulus);
        debug_assert!(g.is_one(), "modulus is irreducible, gcd must be 1");
        Ok(self.element(s))
    }

    /// Batch inversion by Montgomery's trick: inverts all of `xs` with a
    /// single extended-GCD inversion plus `3(n-1)` field multiplications.
    ///
    /// Returns the inverses in input order. The whole batch fails if any
    /// element is zero (checked up front — no partial work is done).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::ZeroInverse`] if any element of `xs` is zero.
    pub fn batch_inv(&self, xs: &[Gf]) -> Result<Vec<Gf>, FieldError> {
        if xs.iter().any(Gf::is_zero) {
            return Err(FieldError::ZeroInverse);
        }
        let n = xs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // prefix[i] = x_0 · x_1 · … · x_i
        let mut prefix = Vec::with_capacity(n);
        prefix.push(xs[0].clone());
        for x in &xs[1..] {
            let next = self.mul(prefix.last().expect("non-empty"), x);
            prefix.push(next);
        }
        // One real inversion of the total product, then sweep backwards:
        // inv_run = (x_0 … x_i)⁻¹ after step i.
        let mut inv_run = self.inv(&prefix[n - 1])?;
        let mut out = vec![self.zero(); n];
        for i in (1..n).rev() {
            out[i] = self.mul(&inv_run, &prefix[i - 1]);
            inv_run = self.mul(&inv_run, &xs[i]);
        }
        out[0] = inv_run;
        Ok(out)
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::ZeroInverse`] if `b` is zero.
    pub fn div(&self, a: &Gf, b: &Gf) -> Result<Gf, FieldError> {
        Ok(self.mul(a, &self.inv(b)?))
    }

    /// A uniformly random field element.
    #[must_use]
    pub fn random(&self, rng: &mut Rng) -> Gf {
        let nlimbs = self.k.div_ceil(64);
        let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.next_u64()).collect();
        let top_bits = self.k % 64;
        if top_bits != 0 {
            let mask = (1u64 << top_bits) - 1;
            *limbs.last_mut().expect("k >= 2 implies at least one limb") &= mask;
        }
        Gf(Gf2Poly::from_limbs(limbs))
    }

    /// Iterates over all `2^k` field elements (intended for small fields;
    /// panics if `k > 20` to prevent accidental exhaustive sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `k > 20`.
    pub fn iter_elements(&self) -> impl Iterator<Item = Gf> + '_ {
        assert!(
            self.k <= 20,
            "exhaustive element iteration requires k <= 20"
        );
        (0u64..(1 << self.k)).map(|bits| self.from_u64(bits))
    }

    /// The square root `√a = a^(2^(k-1))` (squaring is a bijection in
    /// characteristic 2, so every element has a unique square root, and
    /// the square-root map is `F_2`-linear).
    #[must_use]
    pub fn sqrt(&self, a: &Gf) -> Gf {
        let mut r = a.clone();
        for _ in 0..self.k.saturating_sub(1) {
            r = self.square(&r);
        }
        r
    }

    /// The absolute trace `Tr(a) = a + a² + a⁴ + … + a^(2^(k-1))`, always
    /// an element of `F_2 ⊂ F_{2^k}`. Used pervasively in hardware (e.g.
    /// point-compression and half-trace solvers in ECC).
    #[must_use]
    pub fn trace(&self, a: &Gf) -> Gf {
        let mut acc = a.clone();
        let mut pow = a.clone();
        for _ in 1..self.k {
            pow = self.square(&pow);
            acc = self.add(&acc, &pow);
        }
        debug_assert!(acc.is_zero() || acc.is_one(), "trace lands in F_2");
        acc
    }

    /// Montgomery radix `R = x^k mod P` (as a field element this is `α^k`).
    #[must_use]
    pub fn montgomery_r(&self) -> Gf {
        self.element(Gf2Poly::monomial(self.k))
    }

    /// `R² mod P`, the pre-multiplication constant of Fig. 1 of the paper.
    #[must_use]
    pub fn montgomery_r2(&self) -> Gf {
        self.element(Gf2Poly::monomial(2 * self.k))
    }

    /// `R⁻¹ mod P`, the factor a single Montgomery reduction introduces.
    #[must_use]
    pub fn montgomery_r_inv(&self) -> Gf {
        self.inv(&self.montgomery_r())
            .expect("x^k is non-zero modulo an irreducible P of degree k")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16() -> GfContext {
        GfContext::new(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap()
    }

    #[test]
    fn rejects_reducible_and_tiny_moduli() {
        assert!(matches!(
            GfContext::new(Gf2Poly::from_exponents(&[4, 2, 0])),
            Err(FieldError::ReducibleModulus(_))
        ));
        assert!(matches!(
            GfContext::new(Gf2Poly::x()),
            Err(FieldError::DegreeTooSmall)
        ));
    }

    #[test]
    fn f4_multiplication_table() {
        // F_4 with P = x^2 + x + 1: elements {0, 1, α, α+1}.
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let a = ctx.alpha();
        let a1 = ctx.add(&a, &ctx.one());
        assert_eq!(ctx.mul(&a, &a), a1); // α² = α+1
        assert_eq!(ctx.mul(&a, &a1), ctx.one()); // α(α+1) = α²+α = 1
        assert_eq!(ctx.mul(&a1, &a1), a); // (α+1)² = α²+1 = α
    }

    #[test]
    fn every_nonzero_element_has_inverse_f16() {
        let ctx = f16();
        for bits in 1u64..16 {
            let a = ctx.from_u64(bits);
            let ai = ctx.inv(&a).unwrap();
            assert_eq!(ctx.mul(&a, &ai), ctx.one(), "a = {a}");
        }
        assert_eq!(ctx.inv(&ctx.zero()), Err(FieldError::ZeroInverse));
    }

    #[test]
    fn batch_inv_matches_individual_inverses() {
        let ctx = f16();
        let xs: Vec<Gf> = (1u64..16).map(|b| ctx.from_u64(b)).collect();
        let invs = ctx.batch_inv(&xs).unwrap();
        for (x, xi) in xs.iter().zip(&invs) {
            assert_eq!(Ok(xi.clone()), ctx.inv(x));
            assert_eq!(ctx.mul(x, xi), ctx.one());
        }
        assert_eq!(ctx.batch_inv(&[]), Ok(Vec::new()));
        let single = ctx.batch_inv(&[ctx.alpha()]).unwrap();
        assert_eq!(single, vec![ctx.inv(&ctx.alpha()).unwrap()]);
    }

    #[test]
    fn batch_inv_rejects_zero_elements() {
        let ctx = f16();
        let xs = vec![ctx.alpha(), ctx.zero(), ctx.one()];
        assert_eq!(ctx.batch_inv(&xs), Err(FieldError::ZeroInverse));
    }

    #[test]
    fn mul_matches_reference_path_nist_571() {
        let ctx = GfContext::new(crate::nist::nist_polynomial(571).unwrap()).unwrap();
        let mut rng = Rng::seed_from_u64(571);
        for _ in 0..16 {
            let a = ctx.random(&mut rng);
            let b = ctx.random(&mut rng);
            let want = Gf(crate::reference::field_mul(
                ctx.modulus(),
                a.as_poly(),
                b.as_poly(),
            ));
            assert_eq!(ctx.mul(&a, &b), want);
            assert_eq!(
                ctx.square(&a),
                Gf(crate::reference::field_square(ctx.modulus(), a.as_poly()))
            );
        }
    }

    #[test]
    fn kernel_results_stay_inline_for_nist_fields() {
        let ctx = GfContext::new(crate::nist::nist_polynomial(571).unwrap()).unwrap();
        let mut rng = Rng::seed_from_u64(9);
        let before = crate::kernel::snapshot();
        let mut acc = ctx.one();
        for _ in 0..32 {
            let b = ctx.random(&mut rng);
            acc = ctx.mul(&acc, &b);
            acc = ctx.square(&acc);
        }
        assert!(acc.as_poly().is_inline());
        let d = crate::kernel::snapshot().delta_since(&before);
        assert_eq!(d.coeff_muls, 32);
        assert_eq!(d.coeff_squares, 32);
        assert_eq!(d.heap_results, 0);
        assert_eq!(d.inline_results, 64);
        assert!(d.reduction_folds > 0);
    }

    #[test]
    fn frobenius_fixes_field() {
        // a^(2^k) = a for all a in F_{2^k}.
        let ctx = f16();
        for a in ctx.iter_elements() {
            assert_eq!(ctx.pow_u64(&a, 16), a);
        }
    }

    #[test]
    fn pow_limbs_matches_pow_u64() {
        let ctx = f16();
        let a = ctx.from_u64(0b1011);
        for e in 0u64..40 {
            assert_eq!(ctx.pow_limbs(&a, &[e]), ctx.pow_u64(&a, e));
        }
        // Multi-limb exponent: a^(2^64) = a^(2^64 mod 15) since ord | 15.
        let big = ctx.pow_limbs(&a, &[0, 1]); // e = 2^64
        let reduced = ctx.pow_u64(&a, (1u128 << 64).rem_euclid(15) as u64);
        assert_eq!(big, reduced);
    }

    #[test]
    fn montgomery_constants_consistent() {
        let ctx = f16();
        let r = ctx.montgomery_r();
        let r2 = ctx.montgomery_r2();
        let rinv = ctx.montgomery_r_inv();
        assert_eq!(ctx.mul(&r, &r), r2);
        assert_eq!(ctx.mul(&r, &rinv), ctx.one());
    }

    #[test]
    fn random_elements_fit_in_field() {
        let ctx = f16();
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..100 {
            let a = ctx.random(&mut rng);
            assert!(a.as_poly().degree().unwrap_or(0) < 4);
        }
    }

    #[test]
    fn sqrt_inverts_squaring() {
        let ctx = f16();
        for a in ctx.iter_elements() {
            assert_eq!(ctx.sqrt(&ctx.square(&a)), a);
            assert_eq!(ctx.square(&ctx.sqrt(&a)), a);
        }
    }

    #[test]
    fn sqrt_is_linear() {
        let ctx = f16();
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                assert_eq!(
                    ctx.sqrt(&ctx.add(&a, &b)),
                    ctx.add(&ctx.sqrt(&a), &ctx.sqrt(&b))
                );
            }
        }
    }

    #[test]
    fn trace_is_linear_and_binary_and_balanced() {
        let ctx = f16();
        let mut ones = 0;
        for a in ctx.iter_elements() {
            let t = ctx.trace(&a);
            assert!(t.is_zero() || t.is_one());
            if t.is_one() {
                ones += 1;
            }
            for b in ctx.iter_elements() {
                assert_eq!(
                    ctx.trace(&ctx.add(&a, &b)),
                    ctx.add(&ctx.trace(&a), &ctx.trace(&b))
                );
            }
        }
        // Exactly half the field has trace 1.
        assert_eq!(ones, 8);
    }

    #[test]
    fn trace_is_frobenius_invariant() {
        let ctx = f16();
        for a in ctx.iter_elements() {
            assert_eq!(ctx.trace(&ctx.square(&a)), ctx.trace(&a));
        }
    }

    #[test]
    fn bits_roundtrip() {
        let ctx = f16();
        let a = ctx.from_u64(0b1101);
        let bits = ctx.to_bits(&a);
        assert_eq!(bits, vec![true, false, true, true]);
        assert_eq!(ctx.from_bits(&bits), a);
    }

    #[test]
    fn display_uses_alpha() {
        let ctx = f16();
        assert_eq!(ctx.from_u64(0b1011).to_string(), "α^3 + α + 1");
        assert_eq!(ctx.zero().to_string(), "0");
    }
}
