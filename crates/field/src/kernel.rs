//! Thread-local coefficient-kernel statistics.
//!
//! The arithmetic kernels in this crate ([`crate::GfContext::mul`],
//! [`crate::GfContext::square`], the modular reducer) bump plain
//! thread-local counters on every operation. `gfab-field` has no
//! dependencies — not even on `gfab-telemetry` — so the counters live here
//! as a `Cell` and the caller (the reduction engine in `gfab-poly`, the
//! kernel microbenchmark) takes [`snapshot`] deltas around a region of
//! interest and republishes them into whatever metrics sink it owns.
//!
//! Every counter is a deterministic function of the arithmetic performed:
//! no clocks, no addresses, no allocator feedback. A guided reduction runs
//! on a single thread, so per-span deltas are exact and reproducible
//! across machines and thread counts.

use std::cell::Cell;

/// A snapshot of the per-thread kernel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Field coefficient multiplications (`GfContext::mul`).
    pub coeff_muls: u64,
    /// Field coefficient squarings (`GfContext::square`).
    pub coeff_squares: u64,
    /// Word-level modular-reduction folds performed by the precomputed
    /// reducer (one per folded limb).
    pub reduction_folds: u64,
    /// Kernel results that landed in inline (stack) limb storage.
    pub inline_results: u64,
    /// Kernel results that spilled to heap limb storage.
    pub heap_results: u64,
}

impl KernelCounts {
    /// The all-zero snapshot.
    pub const fn new() -> Self {
        KernelCounts {
            coeff_muls: 0,
            coeff_squares: 0,
            reduction_folds: 0,
            inline_results: 0,
            heap_results: 0,
        }
    }

    /// Field-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &KernelCounts) -> KernelCounts {
        KernelCounts {
            coeff_muls: self.coeff_muls.saturating_sub(earlier.coeff_muls),
            coeff_squares: self.coeff_squares.saturating_sub(earlier.coeff_squares),
            reduction_folds: self.reduction_folds.saturating_sub(earlier.reduction_folds),
            inline_results: self.inline_results.saturating_sub(earlier.inline_results),
            heap_results: self.heap_results.saturating_sub(earlier.heap_results),
        }
    }
}

thread_local! {
    static COUNTS: Cell<KernelCounts> = const { Cell::new(KernelCounts::new()) };
}

/// The current thread's cumulative kernel counters.
#[must_use]
pub fn snapshot() -> KernelCounts {
    COUNTS.with(Cell::get)
}

/// Resets the current thread's counters to zero (microbenchmark use).
pub fn reset() {
    COUNTS.with(|c| c.set(KernelCounts::new()));
}

#[inline]
pub(crate) fn on_mul() {
    COUNTS.with(|c| {
        let mut k = c.get();
        k.coeff_muls += 1;
        c.set(k);
    });
}

#[inline]
pub(crate) fn on_square() {
    COUNTS.with(|c| {
        let mut k = c.get();
        k.coeff_squares += 1;
        c.set(k);
    });
}

#[inline]
pub(crate) fn add_folds(n: u64) {
    COUNTS.with(|c| {
        let mut k = c.get();
        k.reduction_folds += n;
        c.set(k);
    });
}

#[inline]
pub(crate) fn note_result(inline: bool) {
    COUNTS.with(|c| {
        let mut k = c.get();
        if inline {
            k.inline_results += 1;
        } else {
            k.heap_results += 1;
        }
        c.set(k);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_field_wise() {
        let a = KernelCounts {
            coeff_muls: 10,
            coeff_squares: 4,
            reduction_folds: 7,
            inline_results: 12,
            heap_results: 2,
        };
        let b = KernelCounts {
            coeff_muls: 3,
            coeff_squares: 1,
            reduction_folds: 2,
            inline_results: 4,
            heap_results: 0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.coeff_muls, 7);
        assert_eq!(d.coeff_squares, 3);
        assert_eq!(d.reduction_folds, 5);
        assert_eq!(d.inline_results, 8);
        assert_eq!(d.heap_results, 2);
    }

    #[test]
    fn counters_accumulate_on_this_thread() {
        let before = snapshot();
        on_mul();
        on_square();
        add_folds(3);
        note_result(true);
        note_result(false);
        let d = snapshot().delta_since(&before);
        assert_eq!(d.coeff_muls, 1);
        assert_eq!(d.coeff_squares, 1);
        assert_eq!(d.reduction_folds, 3);
        assert_eq!(d.inline_results, 1);
        assert_eq!(d.heap_results, 1);
    }
}
