//! Cooperative resource budgets and cancellation.
//!
//! A [`Budget`] is a cheaply cloneable handle shared by every worker that
//! participates in one verification query: a wall-clock deadline, an
//! optional work-unit cap, and an atomic cancellation token. Hot loops
//! poll it every few hundred iterations via [`Budget::tick`] /
//! [`Budget::check`]; the first poll past the limit trips a sticky stop
//! flag so all other threads observe the exhaustion on their next (cheap)
//! atomic load without touching the clock.
//!
//! Work-unit caps exist for *deterministic* budget tests: work is charged
//! by the word-level algebra only (reduction steps, Gröbner pair
//! reductions), so whether a run exhausts a work cap depends only on the
//! total work of the computation — never on thread count or scheduling.
//! Wall-clock deadlines are inherently racy against machine load, but by
//! design they only decide *whether* a run completes, never *what* a
//! completed run returns.
//!
//! ```
//! use gfab_field::budget::{Budget, ExhaustedReason};
//!
//! let b = Budget::with_work_cap(100);
//! assert!(b.tick(60).is_ok());
//! let err = b.tick(60).unwrap_err();
//! assert_eq!(err.reason, ExhaustedReason::WorkCap);
//! // The stop is sticky: every later poll fails immediately.
//! assert!(b.check().is_err());
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`Budget`] stopped a computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustedReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cumulative work-unit cap was reached.
    WorkCap,
    /// [`Budget::cancel`] was called (external cancellation).
    Cancelled,
}

impl std::fmt::Display for ExhaustedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustedReason::Deadline => write!(f, "wall-clock deadline"),
            ExhaustedReason::WorkCap => write!(f, "work-unit cap"),
            ExhaustedReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// The error returned by a failed [`Budget`] poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// What resource ran out.
    pub reason: ExhaustedReason,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "budget exceeded: {}", self.reason)
    }
}

impl std::error::Error for BudgetExceeded {}

const RUNNING: u8 = 0;

fn reason_code(reason: ExhaustedReason) -> u8 {
    match reason {
        ExhaustedReason::Deadline => 1,
        ExhaustedReason::WorkCap => 2,
        ExhaustedReason::Cancelled => 3,
    }
}

fn code_reason(code: u8) -> Option<ExhaustedReason> {
    match code {
        1 => Some(ExhaustedReason::Deadline),
        2 => Some(ExhaustedReason::WorkCap),
        3 => Some(ExhaustedReason::Cancelled),
        _ => None,
    }
}

/// Observer notified from [`Budget::tick`] at a work-unit cadence.
///
/// This is the budget's side of live progress telemetry: the verifier
/// installs an observer that forwards "budget drained this far" ticks to
/// the event stream. Callbacks are *informational only* — they receive
/// already-computed totals and their return is ignored, so they cannot
/// perturb the deterministic accounting. Implementations must be cheap
/// and must never block (the caller is a hot polling loop).
pub trait BudgetObserver: Send + Sync {
    /// Called when cumulative charged work first crosses a multiple of
    /// the observer's stride. `work_done` is the total at the crossing;
    /// `remaining` is the wall clock left (`None` when unlimited).
    fn budget_tick(&self, work_done: u64, remaining: Option<Duration>);
}

struct ObserverHook {
    observer: Arc<dyn BudgetObserver>,
    stride: u64,
    next: AtomicU64,
}

impl std::fmt::Debug for ObserverHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverHook")
            .field("stride", &self.stride)
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    work_cap: Option<u64>,
    work: AtomicU64,
    stopped: AtomicU8,
    observer: Option<ObserverHook>,
}

/// A shared wall-clock / work-unit budget with cooperative cancellation.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// accounting: charge work from any thread, cancel from any thread.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    fn from_parts(deadline: Option<Instant>, work_cap: Option<u64>) -> Self {
        Budget {
            inner: Arc::new(Inner {
                deadline,
                work_cap,
                work: AtomicU64::new(0),
                stopped: AtomicU8::new(RUNNING),
                observer: None,
            }),
        }
    }

    /// Returns this budget with `observer` installed, notified each time
    /// cumulative work crosses a multiple of `stride` (minimum 1) units.
    ///
    /// Rebuilds the shared state (charged work and any stop reason carry
    /// over), so install the observer *before* handing clones to
    /// workers — pre-existing clones keep the un-observed state.
    #[must_use]
    pub fn with_observer(self, observer: Arc<dyn BudgetObserver>, stride: u64) -> Self {
        let stride = stride.max(1);
        Budget {
            inner: Arc::new(Inner {
                deadline: self.inner.deadline,
                work_cap: self.inner.work_cap,
                work: AtomicU64::new(self.inner.work.load(Ordering::Relaxed)),
                stopped: AtomicU8::new(self.inner.stopped.load(Ordering::Relaxed)),
                observer: Some(ObserverHook {
                    observer,
                    stride,
                    next: AtomicU64::new(stride),
                }),
            }),
        }
    }

    /// A budget with no limits. Polls still honour [`cancel`](Budget::cancel).
    pub fn unlimited() -> Self {
        Budget::from_parts(None, None)
    }

    /// A budget whose wall-clock deadline is `wall` from now.
    pub fn with_deadline(wall: Duration) -> Self {
        Budget::from_parts(Some(Instant::now() + wall), None)
    }

    /// A budget whose deadline is the given instant.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget::from_parts(Some(deadline), None)
    }

    /// A budget capped at `cap` cumulative work units.
    pub fn with_work_cap(cap: u64) -> Self {
        Budget::from_parts(None, Some(cap))
    }

    /// Returns this budget with a work cap added (keeps the deadline).
    #[must_use]
    pub fn and_work_cap(self, cap: u64) -> Self {
        Budget::from_parts(self.inner.deadline, Some(cap))
    }

    /// Whether any limit is set (an unlimited, uncancelled budget lets
    /// callers skip per-iteration accounting entirely).
    pub fn is_limited(&self) -> bool {
        self.inner.deadline.is_some() || self.inner.work_cap.is_some()
    }

    /// Requests cancellation: every subsequent poll on any clone fails
    /// with [`ExhaustedReason::Cancelled`].
    pub fn cancel(&self) {
        let _ = self.inner.stopped.compare_exchange(
            RUNNING,
            reason_code(ExhaustedReason::Cancelled),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    fn stop(&self, reason: ExhaustedReason) -> ExhaustedReason {
        match self.inner.stopped.compare_exchange(
            RUNNING,
            reason_code(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => reason,
            // Another thread stopped first; report its reason.
            Err(prev) => code_reason(prev).unwrap_or(reason),
        }
    }

    /// Polls the budget: fails if it was already stopped, or if the
    /// wall-clock deadline has passed (tripping the sticky stop flag so
    /// sibling threads fail on their next cheap poll).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(reason) = code_reason(self.inner.stopped.load(Ordering::Relaxed)) {
            return Err(BudgetExceeded { reason });
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded {
                    reason: self.stop(ExhaustedReason::Deadline),
                });
            }
        }
        Ok(())
    }

    /// Charges `units` of work, then polls. Work-cap exhaustion depends
    /// only on the cumulative total, so it is deterministic across thread
    /// counts and interleavings.
    pub fn tick(&self, units: u64) -> Result<(), BudgetExceeded> {
        let done = self.inner.work.fetch_add(units, Ordering::Relaxed) + units;
        if let Some(hook) = &self.inner.observer {
            // The crossing check races between threads; at worst a
            // stride mark is announced twice or skipped. Notifications
            // are informational only, so that is acceptable — the
            // charged totals themselves stay exact.
            if done >= hook.next.load(Ordering::Relaxed) {
                hook.next
                    .store((done / hook.stride + 1) * hook.stride, Ordering::Relaxed);
                hook.observer.budget_tick(done, self.remaining());
            }
        }
        if let Some(cap) = self.inner.work_cap {
            if done > cap {
                // The overrun is already recorded so `work_done` is
                // accurate; fail (unless something else stopped first).
                if let Some(reason) = code_reason(self.inner.stopped.load(Ordering::Relaxed)) {
                    return Err(BudgetExceeded { reason });
                }
                return Err(BudgetExceeded {
                    reason: self.stop(ExhaustedReason::WorkCap),
                });
            }
        }
        self.check()
    }

    /// Cumulative work units charged so far.
    pub fn work_done(&self) -> u64 {
        self.inner.work.load(Ordering::Relaxed)
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The reason this budget stopped, if it has.
    pub fn exhausted(&self) -> Option<ExhaustedReason> {
        code_reason(self.inner.stopped.load(Ordering::Relaxed))
    }
}

/// A reusable description of limits (no clock pinned yet), suitable for
/// storing in long-lived configuration such as `ExtractOptions`: each
/// query calls [`BudgetSpec::start`] to pin the deadline at query start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock allowance per query.
    pub wall: Option<Duration>,
    /// Work-unit cap per query (reduction steps + GB pair reductions).
    pub work: Option<u64>,
}

impl BudgetSpec {
    /// No limits.
    pub fn none() -> Self {
        BudgetSpec::default()
    }

    /// A wall-clock allowance.
    pub fn wall(wall: Duration) -> Self {
        BudgetSpec {
            wall: Some(wall),
            work: None,
        }
    }

    /// A work-unit cap.
    pub fn work(work: u64) -> Self {
        BudgetSpec {
            wall: None,
            work: Some(work),
        }
    }

    /// Whether any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.wall.is_some() || self.work.is_some()
    }

    /// Pins the deadline to `now + wall` and returns the live budget.
    pub fn start(&self) -> Budget {
        let deadline = self.wall.map(|w| Instant::now() + w);
        Budget::from_parts(deadline, self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..10 {
            assert!(b.tick(1_000_000).is_ok());
        }
        assert_eq!(b.exhausted(), None);
    }

    #[test]
    fn work_cap_trips_exactly_past_cap() {
        let b = Budget::with_work_cap(10);
        assert!(b.tick(10).is_ok());
        let err = b.tick(1).unwrap_err();
        assert_eq!(err.reason, ExhaustedReason::WorkCap);
        assert_eq!(b.exhausted(), Some(ExhaustedReason::WorkCap));
        assert_eq!(b.work_done(), 11);
    }

    #[test]
    fn deadline_trips_and_sticks() {
        let b = Budget::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let err = b.check().unwrap_err();
        assert_eq!(err.reason, ExhaustedReason::Deadline);
        // Clones share the sticky stop flag.
        let clone = b.clone();
        assert_eq!(clone.check().unwrap_err().reason, ExhaustedReason::Deadline);
    }

    #[test]
    fn cancel_wins_from_any_clone() {
        let b = Budget::unlimited();
        let clone = b.clone();
        clone.cancel();
        assert_eq!(b.check().unwrap_err().reason, ExhaustedReason::Cancelled);
        assert_eq!(b.tick(1).unwrap_err().reason, ExhaustedReason::Cancelled);
    }

    #[test]
    fn first_stop_reason_wins() {
        let b = Budget::with_work_cap(1);
        assert_eq!(b.tick(2).unwrap_err().reason, ExhaustedReason::WorkCap);
        b.cancel();
        // WorkCap was recorded first; cancel does not overwrite it.
        assert_eq!(b.check().unwrap_err().reason, ExhaustedReason::WorkCap);
    }

    #[test]
    fn observer_fires_once_per_stride_crossing() {
        struct Ticks(std::sync::Mutex<Vec<u64>>);
        impl BudgetObserver for Ticks {
            fn budget_tick(&self, work_done: u64, remaining: Option<Duration>) {
                assert!(remaining.is_none(), "unlimited budget has no deadline");
                self.0.lock().unwrap().push(work_done);
            }
        }
        let ticks = Arc::new(Ticks(std::sync::Mutex::new(Vec::new())));
        let b = Budget::unlimited().with_observer(Arc::clone(&ticks) as _, 100);
        assert!(b.tick(99).is_ok()); // below the first mark: silent
        assert!(b.tick(1).is_ok()); // crosses 100
        assert!(b.tick(50).is_ok()); // below 200: silent
        assert!(b.tick(260).is_ok()); // jumps past 200 and 300 in one charge
        assert_eq!(*ticks.0.lock().unwrap(), vec![100, 410]);
        assert_eq!(b.work_done(), 410);
    }

    #[test]
    fn observer_carryover_preserves_work_and_limits() {
        struct Noop;
        impl BudgetObserver for Noop {
            fn budget_tick(&self, _: u64, _: Option<Duration>) {}
        }
        let b = Budget::with_work_cap(100);
        assert!(b.tick(60).is_ok());
        let b = b.with_observer(Arc::new(Noop), 1000);
        assert_eq!(b.work_done(), 60);
        // The cap carried over: 60 + 50 > 100 still trips.
        assert_eq!(b.tick(50).unwrap_err().reason, ExhaustedReason::WorkCap);
    }

    #[test]
    fn spec_pins_deadline_at_start() {
        let spec = BudgetSpec::wall(Duration::from_secs(3600));
        assert!(spec.is_limited());
        let b = spec.start();
        assert!(b.check().is_ok());
        let r = b.remaining().unwrap();
        assert!(r > Duration::from_secs(3000));
        let none = BudgetSpec::none().start();
        assert!(!none.is_limited());
    }

    #[test]
    fn remaining_saturates_at_zero() {
        let b = Budget::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }
}
