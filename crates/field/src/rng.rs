//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! in the `rand` crate; everything that needs randomness (random circuit
//! generation, bug injection, counterexample sampling) uses this xoshiro256++
//! generator instead. It is deterministic in its seed, `Send + Sync`-free
//! state (plain `u64`s), and fast enough to feed 64-lane bit-parallel
//! simulation without showing up in profiles.
//!
//! This is **not** a cryptographic generator; it exists to drive tests,
//! benchmarks, and randomized equivalence checking.

use std::ops::Range;
use std::time::{SystemTime, UNIX_EPOCH};

/// Deterministic xoshiro256++ pseudo-random number generator.
///
/// ```
/// use gfab_field::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

/// One step of the splitmix64 sequence, used to expand a 64-bit seed into
/// the 256-bit xoshiro state (the construction recommended by the xoshiro
/// authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { state }
    }

    /// Creates a generator seeded from the system clock. Use
    /// [`Rng::seed_from_u64`] anywhere reproducibility matters.
    pub fn from_entropy() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        // Mix in an address-space-layout bit so two calls in the same
        // nanosecond still diverge across processes.
        let marker = &nanos as *const u64 as usize as u64;
        Rng::seed_from_u64(nanos ^ marker.rotate_left(32))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly random value in `[0, n)` using Lemire's
    /// widening-multiply method (slightly biased for astronomically large
    /// `n`; irrelevant at the sizes used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Returns a uniformly random index in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.random_below((range.end - range.start) as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs for the all-splitmix64-from-0 seeding, checked
        // against an independent implementation of the algorithm.
        let mut r = Rng::seed_from_u64(0);
        let first = r.next_u64();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        // The stream must not be trivially constant or low-entropy.
        let xs: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3..17);
            assert!((3..17).contains(&v));
        }
        // Both endpoints are reachable.
        let mut seen = std::collections::HashSet::new();
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..1000 {
            seen.insert(r.random_range(0..4));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut r = Rng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
        let mut r = Rng::seed_from_u64(4);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::seed_from_u64(5);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*r.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(r.choose(&empty).is_none());
    }

    #[test]
    fn entropy_seeding_differs_between_instances() {
        // Extremely unlikely to collide; loop a few times to be safe
        // against coarse clocks.
        let a = Rng::from_entropy();
        let differs = (0..8).any(|_| Rng::from_entropy() != a);
        assert!(differs);
    }
}
