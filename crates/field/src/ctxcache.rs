//! A bounded, thread-safe cache of constructed field contexts.
//!
//! [`GfContext::new`] runs Rabin's irreducibility test on the modulus —
//! cheap for small fields, but a real cost at the NIST sizes
//! (k = 163…571) and pure waste when a batch of queries shares one
//! field. [`ContextCache`] memoizes `modulus → Arc<GfContext>` so each
//! distinct field is constructed (and Rabin-tested) once per batch.
//!
//! The key is the full modulus polynomial ([`Gf2Poly`] is `Eq + Hash`),
//! so there is no hash-collision concern: equal keys *are* equal
//! fields. Capacity is bounded with least-recently-inserted eviction —
//! batches rarely touch more than a handful of fields, so the bound is
//! a safety net, not a tuning knob.

use crate::{FieldError, Gf2Poly, GfContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Thread-safe memo of `modulus → Arc<GfContext>` with hit/miss
/// counters (see module docs).
#[derive(Debug)]
pub struct ContextCache {
    entries: Mutex<CacheMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheMap {
    map: HashMap<Gf2Poly, (Arc<GfContext>, u64)>,
    stamp: u64,
}

impl ContextCache {
    /// A cache holding at most `capacity` contexts (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> ContextCache {
        ContextCache {
            entries: Mutex::new(CacheMap::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the shared context for `modulus`, constructing it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Whatever [`GfContext::new`] reports (degree too small, reducible
    /// modulus). Failures are not cached.
    pub fn get(&self, modulus: &Gf2Poly) -> Result<Arc<GfContext>, FieldError> {
        {
            let mut e = self.entries.lock().expect("context cache lock");
            e.stamp += 1;
            let stamp = e.stamp;
            if let Some((ctx, used)) = e.map.get_mut(modulus) {
                *used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(ctx));
            }
        }
        // Construct outside the lock: Rabin's test on a NIST-size
        // modulus is the expensive part and must not serialize readers.
        // Two threads may race to build the same context; both results
        // are identical and the second insert simply wins.
        let ctx = GfContext::shared(modulus.clone())?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut e = self.entries.lock().expect("context cache lock");
        e.stamp += 1;
        let stamp = e.stamp;
        e.map.insert(modulus.clone(), (Arc::clone(&ctx), stamp));
        while e.map.len() > self.capacity {
            let oldest = e
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            e.map.remove(&oldest);
        }
        Ok(ctx)
    }

    /// Lookups answered from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that constructed a fresh context.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = ContextCache::new(4);
        let m = Gf2Poly::from_exponents(&[4, 1, 0]);
        let a = cache.get(&m).unwrap();
        let b = cache.get(&m).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_moduli_get_distinct_contexts() {
        let cache = ContextCache::new(4);
        let a = cache.get(&Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let b = cache
            .get(&Gf2Poly::from_exponents(&[8, 4, 3, 1, 0]))
            .unwrap();
        assert_eq!(a.k(), 4);
        assert_eq!(b.k(), 8);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn eviction_respects_recency() {
        let cache = ContextCache::new(2);
        let m4 = Gf2Poly::from_exponents(&[4, 1, 0]);
        let m8 = Gf2Poly::from_exponents(&[8, 4, 3, 1, 0]);
        let m16 = Gf2Poly::from_exponents(&[16, 5, 3, 1, 0]);
        cache.get(&m4).unwrap();
        cache.get(&m8).unwrap();
        cache.get(&m4).unwrap(); // m4 now more recent than m8
        cache.get(&m16).unwrap(); // evicts m8
        cache.get(&m4).unwrap(); // still cached
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 3);
        cache.get(&m8).unwrap(); // rebuilt after eviction
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let cache = ContextCache::new(2);
        // x^4 + 1 = (x+1)^4 over F_2 — reducible.
        let bad = Gf2Poly::from_exponents(&[4, 0]);
        assert!(cache.get(&bad).is_err());
        assert!(cache.get(&bad).is_err());
        assert_eq!(cache.hits(), 0);
    }
}
