//! Reference (pre-kernel) arithmetic, kept as a differential oracle.
//!
//! These are the original, obviously-correct implementations that the
//! optimized kernels replaced: a bit-serial carry-less multiply, a
//! shift-ladder squaring, modular reduction via generic Euclidean
//! division, and inversion via the extended GCD. They are deliberately
//! slow and allocation-happy; their only job is to pin down the exact
//! semantics the fast paths must reproduce bit-for-bit. The differential
//! test suite (`tests/field_kernels.rs`) and the kernel microbenchmark
//! (`gfab-bench`, `kernels` binary) cross-check every optimized kernel
//! against this module.

use crate::Gf2Poly;

/// Bit-serial carry-less product `a * b` (the pre-comb implementation:
/// tests one bit of the shorter operand at a time).
#[must_use]
pub fn mul(a: &Gf2Poly, b: &Gf2Poly) -> Gf2Poly {
    if a.is_zero() || b.is_zero() {
        return Gf2Poly::zero();
    }
    let (a, b) = if a.limbs().len() <= b.limbs().len() {
        (a, b)
    } else {
        (b, a)
    };
    let (al, bl) = (a.limbs(), b.limbs());
    let mut acc = vec![0u64; al.len() + bl.len()];
    for (j, &w) in al.iter().enumerate() {
        if w == 0 {
            continue;
        }
        for i in 0..64 {
            if (w >> i) & 1 == 1 {
                // acc ^= b << (64j + i)
                for (t, &bw) in bl.iter().enumerate() {
                    acc[j + t] ^= bw << i;
                    if i != 0 {
                        acc[j + t + 1] ^= bw >> (64 - i);
                    }
                }
            }
        }
    }
    Gf2Poly::from_limbs(acc)
}

/// Shift-ladder squaring (the pre-table implementation).
#[must_use]
pub fn square(a: &Gf2Poly) -> Gf2Poly {
    let al = a.limbs();
    let mut limbs = vec![0u64; al.len() * 2];
    for (j, &w) in al.iter().enumerate() {
        limbs[2 * j] = spread_bits_ladder(w as u32);
        limbs[2 * j + 1] = spread_bits_ladder((w >> 32) as u32);
    }
    Gf2Poly::from_limbs(limbs)
}

/// Modular reduction via generic Euclidean division (the pre-reducer
/// path used by `GfContext::mul` before precomputed reduction).
///
/// # Panics
///
/// Panics if `modulus` is zero.
#[must_use]
pub fn rem(value: &Gf2Poly, modulus: &Gf2Poly) -> Gf2Poly {
    value.divrem(modulus).1
}

/// Reduced field product `a·b mod modulus` along the original path:
/// bit-serial multiply followed by generic division.
#[must_use]
pub fn field_mul(modulus: &Gf2Poly, a: &Gf2Poly, b: &Gf2Poly) -> Gf2Poly {
    rem(&mul(a, b), modulus)
}

/// Reduced field square along the original path.
#[must_use]
pub fn field_square(modulus: &Gf2Poly, a: &Gf2Poly) -> Gf2Poly {
    rem(&square(a), modulus)
}

/// Per-element inversion via the extended GCD (the pre-batch path).
/// Returns `None` for zero or non-invertible elements.
#[must_use]
pub fn field_inv(modulus: &Gf2Poly, a: &Gf2Poly) -> Option<Gf2Poly> {
    if a.is_zero() {
        return None;
    }
    let (g, s, _) = a.ext_gcd(modulus);
    if !g.is_one() {
        return None;
    }
    Some(rem(&s, modulus))
}

/// The original shift-mask spread ladder (bit `i` → bit `2i`).
fn spread_bits_ladder(w: u32) -> u64 {
    let mut x = w as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_mul_known_values() {
        let a = Gf2Poly::from_exponents(&[1, 0]);
        assert_eq!(mul(&a, &a), Gf2Poly::from_exponents(&[2, 0]));
        let b = Gf2Poly::from_exponents(&[2, 1, 0]);
        assert_eq!(mul(&b, &a), Gf2Poly::from_exponents(&[3, 0]));
        assert!(mul(&a, &Gf2Poly::zero()).is_zero());
    }

    #[test]
    fn reference_square_matches_reference_mul() {
        let p = Gf2Poly::from_exponents(&[100, 64, 63, 7, 0]);
        assert_eq!(square(&p), mul(&p, &p));
    }

    #[test]
    fn reference_inv_roundtrip() {
        let m = Gf2Poly::from_exponents(&[4, 1, 0]);
        for bits in 1u64..16 {
            let a = Gf2Poly::from_u64(bits);
            let ai = field_inv(&m, &a).expect("invertible");
            assert!(field_mul(&m, &a, &ai).is_one());
        }
        assert!(field_inv(&m, &Gf2Poly::zero()).is_none());
    }
}
