//! Standard field polynomials: the five NIST ECC binary fields and a search
//! routine for small-degree irreducible polynomials used in tests and demos.

use crate::gf2poly::Gf2Poly;

/// The NIST-recommended binary field degrees for elliptic curve cryptography.
pub const NIST_DEGREES: [usize; 5] = [163, 233, 283, 409, 571];

/// Returns the NIST-recommended irreducible polynomial for `F_{2^k}`, or
/// `None` if `k` is not one of the five ECC field sizes.
///
/// The polynomials (FIPS 186-4, Appendix D):
///
/// * k = 163: `x^163 + x^7 + x^6 + x^3 + 1`
/// * k = 233: `x^233 + x^74 + 1`
/// * k = 283: `x^283 + x^12 + x^7 + x^5 + 1`
/// * k = 409: `x^409 + x^87 + 1`
/// * k = 571: `x^571 + x^10 + x^5 + x^2 + 1`
///
/// # Example
///
/// ```
/// use gfab_field::nist::nist_polynomial;
/// let p = nist_polynomial(233).unwrap();
/// assert_eq!(p.degree(), Some(233));
/// assert!(p.is_irreducible());
/// ```
pub fn nist_polynomial(k: usize) -> Option<Gf2Poly> {
    let exps: &[usize] = match k {
        163 => &[163, 7, 6, 3, 0],
        233 => &[233, 74, 0],
        283 => &[283, 12, 7, 5, 0],
        409 => &[409, 87, 0],
        571 => &[571, 10, 5, 2, 0],
        _ => return None,
    };
    Some(Gf2Poly::from_exponents(exps))
}

/// Finds an irreducible polynomial of degree `k` over `F_2`, preferring
/// low-weight forms: first trinomials `x^k + x^a + 1`, then pentanomials
/// `x^k + x^a + x^b + x^c + 1`.
///
/// For every `k ≥ 2` an irreducible pentanomial is conjectured (and known in
/// practice) to exist; the search is exhaustive over the candidate shapes, so
/// this function effectively always succeeds for the degrees used in
/// hardware (it returns `None` only if the bounded search space is somehow
/// exhausted).
///
/// # Example
///
/// ```
/// use gfab_field::nist::irreducible_polynomial;
/// let p = irreducible_polynomial(8).unwrap();
/// assert_eq!(p.degree(), Some(8));
/// assert!(p.is_irreducible());
/// ```
pub fn irreducible_polynomial(k: usize) -> Option<Gf2Poly> {
    if k < 2 {
        return None;
    }
    if let Some(p) = nist_polynomial(k) {
        return Some(p);
    }
    // Trinomials.
    for a in 1..k {
        let p = Gf2Poly::from_exponents(&[k, a, 0]);
        if p.is_irreducible() {
            return Some(p);
        }
    }
    // Pentanomials.
    for a in 3..k {
        for b in 2..a {
            for c in 1..b {
                let p = Gf2Poly::from_exponents(&[k, a, b, c, 0]);
                if p.is_irreducible() {
                    return Some(p);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GfContext;

    #[test]
    fn all_nist_polynomials_are_irreducible() {
        for k in NIST_DEGREES {
            let p = nist_polynomial(k).unwrap();
            assert_eq!(p.degree(), Some(k));
            assert!(p.is_irreducible(), "NIST k={k}");
        }
    }

    #[test]
    fn nist_rejects_other_degrees() {
        assert!(nist_polynomial(128).is_none());
        assert!(nist_polynomial(0).is_none());
    }

    #[test]
    fn search_finds_irreducibles_for_small_degrees() {
        for k in 2..=64 {
            let p = irreducible_polynomial(k).unwrap_or_else(|| panic!("no poly for k={k}"));
            assert_eq!(p.degree(), Some(k));
            assert!(p.is_irreducible(), "k={k}: {p}");
            // Must actually construct a field.
            assert!(GfContext::new(p).is_ok());
        }
    }

    #[test]
    fn search_prefers_known_aes_style_degree8() {
        // Degree 8 has no irreducible trinomial; a pentanomial must be found.
        let p = irreducible_polynomial(8).unwrap();
        assert_eq!(p.weight(), 5);
    }
}
