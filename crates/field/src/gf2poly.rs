//! Dense polynomials over `F_2` stored as bit vectors.

use crate::limbs::{LimbBuf, INLINE_LIMBS};
use std::fmt;

/// Stack accumulator size for products of two inline operands:
/// `2 * INLINE_LIMBS` limbs for the product plus one guard limb for the
/// modular reducer's shifted folds.
pub(crate) const STACK_ACC: usize = 2 * INLINE_LIMBS + 1;

/// Stack comb-table size: 16 rows of `INLINE_LIMBS + 1` limbs (each row is
/// the longer operand times a 4-bit window value, so up to 3 bits wider).
pub(crate) const STACK_TABLE: usize = 16 * (INLINE_LIMBS + 1);

/// A polynomial over `F_2` in dense bit-vector form.
///
/// Bit `i` of limb `j` is the coefficient of `x^(64*j + i)`. The limb vector
/// is kept *normalized*: the last limb is non-zero (the zero polynomial has
/// an empty limb vector).
///
/// Addition is XOR; multiplication is carry-less. Polynomials of degree
/// < 64·[`crate::limbs::INLINE_LIMBS`] (i.e. every reduced element of the
/// NIST fields up to k = 571) are stored inline without heap allocation;
/// longer polynomials spill to a heap vector transparently.
///
/// # Example
///
/// ```
/// use gfab_field::Gf2Poly;
///
/// // x^4 + x + 1 (the usual F_16 modulus)
/// let p = Gf2Poly::from_exponents(&[4, 1, 0]);
/// assert_eq!(p.degree(), Some(4));
/// assert!(p.is_irreducible());
/// let x = Gf2Poly::x();
/// // x^4 mod p = x + 1
/// let r = x.pow_mod(4, &p);
/// assert_eq!(r, Gf2Poly::from_exponents(&[1, 0]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf2Poly {
    limbs: LimbBuf,
}

/// Reusable heap scratch for [`Gf2Poly::mul_into`] when operands exceed the
/// inline stack path. Allocate once, multiply many times.
#[derive(Default)]
pub struct MulScratch {
    acc: Vec<u64>,
    table: Vec<u64>,
}

impl MulScratch {
    /// Fresh, empty scratch buffers (they grow on first use).
    #[must_use]
    pub fn new() -> Self {
        MulScratch::default()
    }
}

impl Gf2Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Gf2Poly {
            limbs: LimbBuf::new(),
        }
    }

    /// The constant polynomial `1`.
    #[must_use]
    pub fn one() -> Self {
        Gf2Poly {
            limbs: LimbBuf::from_slice(&[1]),
        }
    }

    /// The monomial `x`.
    #[must_use]
    pub fn x() -> Self {
        Gf2Poly {
            limbs: LimbBuf::from_slice(&[2]),
        }
    }

    /// The monomial `x^e`.
    #[must_use]
    pub fn monomial(e: usize) -> Self {
        let mut p = Gf2Poly::zero();
        p.set_coeff(e, true);
        p
    }

    /// Builds a polynomial from the exponents of its non-zero terms.
    ///
    /// Duplicate exponents cancel (coefficients are in `F_2`).
    #[must_use]
    pub fn from_exponents(exps: &[usize]) -> Self {
        let mut p = Gf2Poly::zero();
        for &e in exps {
            p.set_coeff(e, !p.coeff(e));
        }
        p
    }

    /// Builds a polynomial from its low 64 coefficients packed in a word.
    #[must_use]
    pub fn from_u64(bits: u64) -> Self {
        let mut p = Gf2Poly {
            limbs: LimbBuf::from_slice(&[bits]),
        };
        p.normalize();
        p
    }

    /// Builds a polynomial from little-endian limbs (bit `i` of limb `j` is
    /// the coefficient of `x^(64j+i)`).
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut p = Gf2Poly {
            limbs: LimbBuf::from_vec(limbs),
        };
        p.normalize();
        p
    }

    /// Builds a polynomial from a little-endian limb slice, storing it
    /// inline (allocation-free) whenever it fits.
    #[must_use]
    pub fn from_limb_slice(limbs: &[u64]) -> Self {
        // Trim before building so an over-long slice with a zero tail can
        // still land in inline storage.
        let mut n = limbs.len();
        while n > 0 && limbs[n - 1] == 0 {
            n -= 1;
        }
        Gf2Poly {
            limbs: LimbBuf::from_slice(&limbs[..n]),
        }
    }

    /// A view of the normalized little-endian limbs.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        self.limbs.as_slice()
    }

    /// Whether the limbs are stored inline (no heap allocation backs this
    /// polynomial). Always true for degree < `64 * INLINE_LIMBS` values
    /// produced by the arithmetic kernels.
    #[must_use]
    pub fn is_inline(&self) -> bool {
        self.limbs.is_inline()
    }

    /// The low 64 coefficients packed in a word (0 for the zero polynomial).
    #[must_use]
    pub fn to_u64_lossy(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is the constant polynomial `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs.as_slice()[0] == 1
    }

    /// The degree, or `None` for the zero polynomial.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        let last = *self.limbs.last()?;
        Some((self.limbs.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// The coefficient of `x^e`.
    #[must_use]
    pub fn coeff(&self, e: usize) -> bool {
        let (limb, bit) = (e / 64, e % 64);
        self.limbs.get(limb).is_some_and(|w| (w >> bit) & 1 == 1)
    }

    /// Sets the coefficient of `x^e`.
    pub fn set_coeff(&mut self, e: usize, value: bool) {
        let (limb, bit) = (e / 64, e % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1);
            }
            self.limbs.as_mut_slice()[limb] |= 1 << bit;
        } else if limb < self.limbs.len() {
            self.limbs.as_mut_slice()[limb] &= !(1 << bit);
            self.normalize();
        }
    }

    /// The number of non-zero coefficients.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.limbs
            .as_slice()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the exponents of non-zero terms, ascending.
    pub fn exponents(&self) -> impl Iterator<Item = usize> + '_ {
        self.limbs
            .as_slice()
            .iter()
            .enumerate()
            .flat_map(|(j, &w)| {
                (0..64).filter_map(move |i| ((w >> i) & 1 == 1).then_some(64 * j + i))
            })
    }

    fn normalize(&mut self) {
        self.limbs.trim_trailing_zeros();
    }

    /// Adds (XORs) `other` into `self`.
    pub fn add_assign(&mut self, other: &Gf2Poly) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len());
        }
        for (a, b) in self
            .limbs
            .as_mut_slice()
            .iter_mut()
            .zip(other.limbs.as_slice())
        {
            *a ^= *b;
        }
        self.normalize();
    }

    /// Returns `self + other` (addition over `F_2` is XOR).
    #[must_use]
    pub fn add(&self, other: &Gf2Poly) -> Gf2Poly {
        let mut r = self.clone();
        r.add_assign(other);
        r
    }

    /// Returns `self << e`, i.e. `self * x^e`.
    #[must_use]
    pub fn shl(&self, e: usize) -> Gf2Poly {
        if self.is_zero() || e == 0 {
            if e == 0 {
                return self.clone();
            }
            return Gf2Poly::zero();
        }
        let (limb_shift, bit_shift) = (e / 64, e % 64);
        let mut limbs = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (j, &w) in self.limbs.as_slice().iter().enumerate() {
            limbs[j + limb_shift] |= w << bit_shift;
            if bit_shift != 0 {
                limbs[j + limb_shift + 1] |= w >> (64 - bit_shift);
            }
        }
        Gf2Poly::from_limbs(limbs)
    }

    /// Returns the carry-less product `self * other`.
    ///
    /// Uses 4-bit windowed comb multiplication (a 16-row lookup table of
    /// window multiples of the longer operand, combed over the shorter
    /// one). Operands that fit the inline limb capacity run entirely on
    /// stack buffers; larger operands allocate transient scratch — reuse a
    /// [`MulScratch`] via [`Gf2Poly::mul_into`] to amortize that.
    #[must_use]
    pub fn mul(&self, other: &Gf2Poly) -> Gf2Poly {
        if self.is_zero() || other.is_zero() {
            return Gf2Poly::zero();
        }
        let (a, b) = (self.limbs.as_slice(), other.limbs.as_slice());
        if a.len() <= INLINE_LIMBS && b.len() <= INLINE_LIMBS {
            let mut acc = [0u64; STACK_ACC];
            let mut table = [0u64; STACK_TABLE];
            let n = a.len() + b.len();
            mul_comb(a, b, &mut acc[..n], &mut table);
            return Gf2Poly::from_limb_slice(&acc[..n]);
        }
        let mut scratch = MulScratch::new();
        self.mul_into(other, &mut scratch)
    }

    /// Returns `self * other` using caller-provided scratch buffers, so
    /// repeated large multiplications reuse one pair of allocations.
    ///
    /// Equivalent to [`Gf2Poly::mul`] (which this backs); only the scratch
    /// ownership differs.
    #[must_use]
    pub fn mul_into(&self, other: &Gf2Poly, scratch: &mut MulScratch) -> Gf2Poly {
        if self.is_zero() || other.is_zero() {
            return Gf2Poly::zero();
        }
        let (a, b) = (self.limbs.as_slice(), other.limbs.as_slice());
        let n = a.len() + b.len();
        let tw = a.len().max(b.len()) + 1;
        if scratch.acc.len() < n {
            scratch.acc.resize(n, 0);
        }
        if scratch.table.len() < 16 * tw {
            scratch.table.resize(16 * tw, 0);
        }
        mul_comb(a, b, &mut scratch.acc[..n], &mut scratch.table);
        Gf2Poly::from_limb_slice(&scratch.acc[..n])
    }

    /// Returns the square of `self`.
    ///
    /// Squaring is linear in characteristic 2: each bit of the operand is
    /// spread to an even bit position via an 8→16-bit table
    /// ([`SPREAD8`]-driven), no multiplication needed.
    #[must_use]
    pub fn square(&self) -> Gf2Poly {
        let a = self.limbs.as_slice();
        if a.len() <= INLINE_LIMBS {
            let mut acc = [0u64; 2 * INLINE_LIMBS];
            square_into(a, &mut acc[..2 * a.len()]);
            return Gf2Poly::from_limb_slice(&acc[..2 * a.len()]);
        }
        let mut acc = vec![0u64; 2 * a.len()];
        square_into(a, &mut acc);
        Gf2Poly::from_limbs(acc)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn divrem(&self, divisor: &Gf2Poly) -> (Gf2Poly, Gf2Poly) {
        let dd = divisor.degree().expect("division by zero polynomial");
        let mut rem = self.clone();
        let mut quot = Gf2Poly::zero();
        while let Some(rd) = rem.degree() {
            if rd < dd {
                break;
            }
            let shift = rd - dd;
            quot.set_coeff(shift, true);
            rem.add_assign(&divisor.shl(shift));
        }
        (quot, rem)
    }

    /// Returns `self mod divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn rem(&self, divisor: &Gf2Poly) -> Gf2Poly {
        self.divrem(divisor).1
    }

    /// Greatest common divisor (monic by construction over `F_2`).
    #[must_use]
    pub fn gcd(&self, other: &Gf2Poly) -> Gf2Poly {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Extended GCD: returns `(g, s, t)` with `g = gcd(self, other)` and
    /// `s*self + t*other = g`.
    #[must_use]
    pub fn ext_gcd(&self, other: &Gf2Poly) -> (Gf2Poly, Gf2Poly, Gf2Poly) {
        let (mut r0, mut r1) = (self.clone(), other.clone());
        let (mut s0, mut s1) = (Gf2Poly::one(), Gf2Poly::zero());
        let (mut t0, mut t1) = (Gf2Poly::zero(), Gf2Poly::one());
        while !r1.is_zero() {
            let (q, r) = r0.divrem(&r1);
            r0 = std::mem::replace(&mut r1, r);
            let s = s0.add(&q.mul(&s1));
            s0 = std::mem::replace(&mut s1, s);
            let t = t0.add(&q.mul(&t1));
            t0 = std::mem::replace(&mut t1, t);
        }
        (r0, s0, t0)
    }

    /// Computes `self^e mod modulus` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or constant.
    #[must_use]
    pub fn pow_mod(&self, e: u64, modulus: &Gf2Poly) -> Gf2Poly {
        assert!(
            modulus.degree().unwrap_or(0) >= 1,
            "pow_mod modulus must have degree >= 1"
        );
        let mut base = self.rem(modulus);
        let mut acc = Gf2Poly::one();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base).rem(modulus);
            }
            base = base.square().rem(modulus);
            e >>= 1;
        }
        acc
    }

    /// Computes `self^(2^m) mod modulus` by `m` modular squarings.
    #[must_use]
    pub fn pow_2exp_mod(&self, m: usize, modulus: &Gf2Poly) -> Gf2Poly {
        let mut r = self.rem(modulus);
        for _ in 0..m {
            r = r.square().rem(modulus);
        }
        r
    }

    /// Rabin's irreducibility test over `F_2`.
    ///
    /// `f` of degree `k` is irreducible iff `x^(2^k) ≡ x (mod f)` and for
    /// every prime `p | k`, `gcd(x^(2^(k/p)) - x mod f, f) = 1`.
    /// Constants and degree-0 polynomials are not irreducible; degree-1
    /// polynomials are.
    #[must_use]
    pub fn is_irreducible(&self) -> bool {
        let Some(k) = self.degree() else {
            return false;
        };
        if k == 0 {
            return false;
        }
        if k == 1 {
            return true;
        }
        // f must have a non-zero constant term unless f = x (degree-1,
        // handled above): otherwise x | f.
        if !self.coeff(0) {
            return false;
        }
        let x = Gf2Poly::x();
        // x^(2^k) == x (mod f)
        if x.pow_2exp_mod(k, self) != x.rem(self) {
            return false;
        }
        for p in prime_divisors(k) {
            let h = x.pow_2exp_mod(k / p, self).add(&x.rem(self));
            if !self.gcd(&h).is_one() {
                return false;
            }
        }
        true
    }
}

/// 4-bit windowed comb multiplication over raw limb slices:
/// `acc = a * b` (carry-less). `acc` must be exactly `a.len() + b.len()`
/// limbs; `table` must hold at least `16 * (max_len + 1)` limbs. Both are
/// overwritten. Shared by [`Gf2Poly::mul`] and the reduced field
/// multiplication in [`crate::GfContext`].
pub(crate) fn mul_comb(a: &[u64], b: &[u64], acc: &mut [u64], table: &mut [u64]) {
    debug_assert!(!a.is_empty() && !b.is_empty());
    debug_assert_eq!(acc.len(), a.len() + b.len());
    // Comb over the shorter operand: fewer window lookups per pass.
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Table row u holds u(x)·b(x); window values are 4 bits wide so each
    // row needs one limb of headroom over b.
    let tw = b.len() + 1;
    let table = &mut table[..16 * tw];
    table[..tw].fill(0);
    table[tw..tw + b.len()].copy_from_slice(b);
    table[tw + b.len()] = 0;
    for u in 2..16usize {
        if u % 2 == 0 {
            // T[u] = T[u/2] · x
            let mut carry = 0u64;
            for i in 0..tw {
                let s = table[(u / 2) * tw + i];
                table[u * tw + i] = (s << 1) | carry;
                carry = s >> 63;
            }
        } else {
            // T[u] = T[u-1] + b
            for i in 0..tw {
                table[u * tw + i] = table[(u - 1) * tw + i] ^ table[tw + i];
            }
        }
    }
    acc.fill(0);
    for w in (0..16usize).rev() {
        if w != 15 {
            // acc *= x^4. The intermediate degree is bounded by the final
            // product degree, so the carry out of the top limb is zero.
            let mut carry = 0u64;
            for limb in acc.iter_mut() {
                let next = *limb >> 60;
                *limb = (*limb << 4) | carry;
                carry = next;
            }
            debug_assert_eq!(carry, 0);
        }
        let shift = 4 * w;
        for (j, &aw) in a.iter().enumerate() {
            let nib = ((aw >> shift) & 0xF) as usize;
            if nib != 0 {
                let row = &table[nib * tw..(nib + 1) * tw];
                for (dst, &src) in acc[j..j + tw].iter_mut().zip(row) {
                    *dst ^= src;
                }
            }
        }
    }
}

/// Squaring over raw limb slices: `acc = a²` via the 8→16 bit-spread
/// table. `acc` must be exactly `2 * a.len()` limbs and is overwritten.
pub(crate) fn square_into(a: &[u64], acc: &mut [u64]) {
    debug_assert_eq!(acc.len(), 2 * a.len());
    for (j, &w) in a.iter().enumerate() {
        acc[2 * j] = spread_bits(w as u32);
        acc[2 * j + 1] = spread_bits((w >> 32) as u32);
    }
}

/// 8→16 bit-spread table: entry `b` holds the bits of `b` moved to even
/// positions (`bit i → bit 2i`), i.e. the carry-less square of a byte.
const SPREAD8: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut i = 0;
        while i < 8 {
            if (b >> i) & 1 == 1 {
                v |= 1 << (2 * i);
            }
            i += 1;
        }
        t[b] = v;
        b += 1;
    }
    t
};

/// Spreads the 32 bits of `w` into the even bit positions of a 64-bit word
/// using four byte-table lookups.
#[inline]
fn spread_bits(w: u32) -> u64 {
    (SPREAD8[(w & 0xFF) as usize] as u64)
        | ((SPREAD8[((w >> 8) & 0xFF) as usize] as u64) << 16)
        | ((SPREAD8[((w >> 16) & 0xFF) as usize] as u64) << 32)
        | ((SPREAD8[(w >> 24) as usize] as u64) << 48)
}

fn prime_divisors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        let exps: Vec<usize> = self.exponents().collect();
        for &e in exps.iter().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match e {
                0 => write!(f, "1")?,
                1 => write!(f, "x")?,
                _ => write!(f, "x^{e}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(Gf2Poly::zero().is_zero());
        assert_eq!(Gf2Poly::zero().degree(), None);
        assert!(Gf2Poly::one().is_one());
        assert_eq!(Gf2Poly::one().degree(), Some(0));
        assert_eq!(Gf2Poly::x().degree(), Some(1));
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Gf2Poly::from_exponents(&[5, 3, 0]);
        let b = Gf2Poly::from_exponents(&[3, 1]);
        let s = a.add(&b);
        assert_eq!(s, Gf2Poly::from_exponents(&[5, 1, 0]));
        assert_eq!(s.add(&b), a);
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn from_exponents_cancels_duplicates() {
        let p = Gf2Poly::from_exponents(&[3, 3, 2]);
        assert_eq!(p, Gf2Poly::monomial(2));
    }

    #[test]
    fn shl_matches_monomial_multiplication() {
        let a = Gf2Poly::from_exponents(&[2, 0]);
        assert_eq!(a.shl(63), a.mul(&Gf2Poly::monomial(63)));
        assert_eq!(a.shl(64), a.mul(&Gf2Poly::monomial(64)));
        assert_eq!(a.shl(130).degree(), Some(132));
    }

    #[test]
    fn multiplication_small_known_values() {
        // (x+1)(x+1) = x^2+1 in F_2[x]
        let a = Gf2Poly::from_exponents(&[1, 0]);
        assert_eq!(a.mul(&a), Gf2Poly::from_exponents(&[2, 0]));
        // (x^2+x+1)(x+1) = x^3 + 1
        let b = Gf2Poly::from_exponents(&[2, 1, 0]);
        assert_eq!(b.mul(&a), Gf2Poly::from_exponents(&[3, 0]));
    }

    #[test]
    fn mul_matches_reference_bit_serial() {
        let cases = [
            (vec![0usize], vec![0usize]),
            (vec![1, 0], vec![200, 64, 1]),
            (vec![127, 126, 64, 63, 1, 0], vec![255, 128, 65, 2]),
            (vec![700, 300, 0], vec![650, 64, 63, 5]),
        ];
        for (ea, eb) in &cases {
            let a = Gf2Poly::from_exponents(ea);
            let b = Gf2Poly::from_exponents(eb);
            let want = crate::reference::mul(&a, &b);
            assert_eq!(a.mul(&b), want, "a={a} b={b}");
            assert_eq!(b.mul(&a), want);
            let mut scratch = MulScratch::new();
            assert_eq!(a.mul_into(&b, &mut scratch), want);
            // Scratch reuse must not leak state between products.
            assert_eq!(a.mul_into(&b, &mut scratch), want);
        }
    }

    #[test]
    fn square_matches_mul() {
        let p = Gf2Poly::from_exponents(&[100, 64, 63, 7, 0]);
        assert_eq!(p.square(), p.mul(&p));
        let big = Gf2Poly::from_exponents(&[1000, 577, 64, 0]);
        assert_eq!(big.square(), big.mul(&big));
    }

    #[test]
    fn inline_storage_for_small_results() {
        let a = Gf2Poly::from_exponents(&[280, 1]);
        let b = Gf2Poly::from_exponents(&[281, 0]);
        assert!(a.is_inline() && b.is_inline());
        // Product of two 5-limb values still fits 9 limbs? 280+281 = 561 ✓
        assert!(a.mul(&b).is_inline());
        // A product past 576 bits spills to the heap.
        let c = Gf2Poly::from_exponents(&[300]);
        assert!(!c.mul(&c).is_inline());
        assert_eq!(c.mul(&c), Gf2Poly::monomial(600));
    }

    #[test]
    fn divrem_roundtrip() {
        let a = Gf2Poly::from_exponents(&[10, 9, 5, 1]);
        let b = Gf2Poly::from_exponents(&[4, 1, 0]);
        let (q, r) = a.divrem(&b);
        assert!(r.degree().unwrap_or(0) < 4);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn gcd_of_multiples() {
        let g = Gf2Poly::from_exponents(&[3, 1, 0]);
        let a = g.mul(&Gf2Poly::from_exponents(&[2, 0]));
        let b = g.mul(&Gf2Poly::from_exponents(&[1]));
        assert_eq!(a.gcd(&b), g);
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        let a = Gf2Poly::from_exponents(&[7, 2, 0]);
        let b = Gf2Poly::from_exponents(&[5, 4, 3, 1]);
        let (g, s, t) = a.ext_gcd(&b);
        assert_eq!(s.mul(&a).add(&t.mul(&b)), g);
    }

    #[test]
    fn irreducibility_known_cases() {
        assert!(Gf2Poly::from_exponents(&[2, 1, 0]).is_irreducible()); // x^2+x+1
        assert!(Gf2Poly::from_exponents(&[4, 1, 0]).is_irreducible()); // x^4+x+1
        assert!(Gf2Poly::from_exponents(&[8, 4, 3, 1, 0]).is_irreducible()); // AES
        assert!(!Gf2Poly::from_exponents(&[2, 0]).is_irreducible()); // (x+1)^2
        assert!(!Gf2Poly::from_exponents(&[4, 2, 0]).is_irreducible()); // (x^2+x+1)^2
        assert!(!Gf2Poly::one().is_irreducible());
        assert!(!Gf2Poly::zero().is_irreducible());
        assert!(Gf2Poly::x().is_irreducible());
    }

    #[test]
    fn pow_mod_fermat_little() {
        // In F_2[x]/(x^4+x+1) every non-zero element satisfies a^15 = 1.
        let m = Gf2Poly::from_exponents(&[4, 1, 0]);
        for bits in 1u64..16 {
            let a = Gf2Poly::from_u64(bits);
            assert!(a.pow_mod(15, &m).is_one(), "a = {a}");
        }
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Gf2Poly::zero().to_string(), "0");
        assert_eq!(
            Gf2Poly::from_exponents(&[4, 1, 0]).to_string(),
            "x^4 + x + 1"
        );
    }

    #[test]
    fn set_coeff_clears_and_normalizes() {
        let mut p = Gf2Poly::monomial(100);
        p.set_coeff(100, false);
        assert!(p.is_zero());
        assert_eq!(p.limbs().len(), 0);
    }

    #[test]
    fn exponents_iterator_roundtrip() {
        let exps = [0usize, 3, 64, 127, 130];
        let p = Gf2Poly::from_exponents(&exps);
        let back: Vec<usize> = p.exponents().collect();
        assert_eq!(back, exps);
    }

    #[test]
    fn spread_table_matches_shift_ladder() {
        for w in [0u32, 1, 0xFF, 0xDEAD_BEEF, u32::MAX, 0x8000_0001] {
            let mut x = w as u64;
            x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
            x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
            x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
            x = (x | (x << 2)) & 0x3333_3333_3333_3333;
            x = (x | (x << 1)) & 0x5555_5555_5555_5555;
            assert_eq!(spread_bits(w), x);
        }
    }
}
