//! # gfab-field
//!
//! Binary Galois field arithmetic for hardware verification.
//!
//! This crate provides the coefficient-field substrate used throughout the
//! GFAB workspace:
//!
//! * [`Gf2Poly`] — dense polynomials over `F_2` stored as bit vectors
//!   (`u64` limbs), with the full ring toolbox: addition (XOR),
//!   multiplication, Euclidean division, GCD, extended GCD, modular
//!   exponentiation and an irreducibility test (Rabin's algorithm).
//! * [`GfContext`] / [`Gf`] — the extension field `F_{2^k}` constructed as
//!   `F_2[x] / (P(x))` for an irreducible `P`, with element arithmetic
//!   (add, mul, square, pow, inverse), the generator `α` (a root of `P`),
//!   and the Montgomery constants `R = x^k`, `R² mod P`, `R⁻¹` used by
//!   Montgomery multiplier circuits.
//! * [`nist`] — the five NIST-recommended ECC field polynomials
//!   (k = 163, 233, 283, 409, 571) plus a search routine for small-degree
//!   irreducible trinomials/pentanomials used in tests and examples.
//! * [`reference`] — the original (pre-kernel) bit-serial arithmetic,
//!   retained as a differential oracle for the optimized kernels.
//! * [`kernel`] — thread-local counters (coefficient multiplies, reduction
//!   folds, inline-vs-heap residency) published by the arithmetic kernels.
//!
//! Field sizes are unbounded in `k` (elements are limb vectors), which is
//! what lets the abstraction engine in `gfab-core` run on 571-bit datapaths.
//! Elements up to 576 bits (9 limbs — every NIST field) are stored inline
//! and multiplied on stack scratch: the hot coefficient arithmetic of the
//! division chain performs no heap allocation at all.
//!
//! # Example
//!
//! ```
//! use gfab_field::{GfContext, nist};
//!
//! // F_{2^163} with the NIST polynomial x^163 + x^7 + x^6 + x^3 + 1.
//! let ctx = GfContext::new(nist::nist_polynomial(163).unwrap()).unwrap();
//! let a = ctx.alpha();
//! let b = ctx.mul(&a, &a); // α²
//! assert_eq!(ctx.mul(&a, &ctx.inv(&a).unwrap()), ctx.one());
//! assert_eq!(b, ctx.pow_u64(&a, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod ctxcache;
mod field;
mod gf2poly;
pub mod kernel;
mod limbs;
pub mod nist;
mod reduce_mod;
pub mod reference;
pub mod rng;

pub use ctxcache::ContextCache;
pub use field::{FieldError, Gf, GfContext};
pub use gf2poly::{Gf2Poly, MulScratch};
pub use kernel::KernelCounts;
pub use limbs::INLINE_LIMBS;
pub use rng::Rng;
