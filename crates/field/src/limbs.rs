//! Small-vector limb storage for [`crate::Gf2Poly`].
//!
//! Field elements up to `k = 576` fit in [`INLINE_LIMBS`] `u64` words, so
//! the working set of the division chain (clones, adds, products of `Gf`
//! coefficients) never has to touch the allocator. Larger polynomials —
//! unreduced products, huge moduli — spill to a heap `Vec<u64>`.
//!
//! The two representations are interchangeable: all comparisons, hashing
//! and ordering go through [`LimbBuf::as_slice`], so an inline buffer and
//! a heap buffer holding the same limbs are indistinguishable. This keeps
//! the semantics bit-identical to the previous `Vec<u64>`-backed storage
//! (`Vec` derives its `Eq`/`Ord`/`Hash` from the element slice too).

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Number of limbs stored inline (no heap allocation). 9 limbs = 576
/// coefficient bits, covering every NIST field up to k = 571.
pub const INLINE_LIMBS: usize = 9;

/// A `u64` small-vector: inline up to [`INLINE_LIMBS`] words, heap beyond.
#[derive(Clone, Debug)]
pub(crate) enum LimbBuf {
    /// Up to `INLINE_LIMBS` limbs stored in place; `len` is the live count.
    Inline { len: u8, limbs: [u64; INLINE_LIMBS] },
    /// Spill representation for longer polynomials.
    Heap(Vec<u64>),
}

impl LimbBuf {
    /// The empty buffer (the zero polynomial), inline.
    pub const fn new() -> Self {
        LimbBuf::Inline {
            len: 0,
            limbs: [0; INLINE_LIMBS],
        }
    }

    /// Builds from a slice, choosing inline storage whenever it fits.
    pub fn from_slice(s: &[u64]) -> Self {
        if s.len() <= INLINE_LIMBS {
            let mut limbs = [0u64; INLINE_LIMBS];
            limbs[..s.len()].copy_from_slice(s);
            LimbBuf::Inline {
                len: s.len() as u8,
                limbs,
            }
        } else {
            LimbBuf::Heap(s.to_vec())
        }
    }

    /// Builds from an owned vector, demoting to inline storage if it fits.
    pub fn from_vec(v: Vec<u64>) -> Self {
        if v.len() <= INLINE_LIMBS {
            Self::from_slice(&v)
        } else {
            LimbBuf::Heap(v)
        }
    }

    /// Whether the limbs currently live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self, LimbBuf::Inline { .. })
    }

    pub fn len(&self) -> usize {
        match self {
            LimbBuf::Inline { len, .. } => *len as usize,
            LimbBuf::Heap(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u64] {
        match self {
            LimbBuf::Inline { len, limbs } => &limbs[..*len as usize],
            LimbBuf::Heap(v) => v,
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            LimbBuf::Inline { len, limbs } => &mut limbs[..*len as usize],
            LimbBuf::Heap(v) => v,
        }
    }

    /// Grows (zero-filling) or shrinks to `n` limbs, promoting to the heap
    /// only when `n` exceeds the inline capacity.
    pub fn resize(&mut self, n: usize) {
        match self {
            LimbBuf::Inline { len, limbs } => {
                if n <= INLINE_LIMBS {
                    // Slots at and above `len` are kept zeroed, so growing
                    // inline is just a length bump; shrinking re-zeroes.
                    if n < *len as usize {
                        for slot in &mut limbs[n..*len as usize] {
                            *slot = 0;
                        }
                    }
                    *len = n as u8;
                } else {
                    let mut v = Vec::with_capacity(n);
                    v.extend_from_slice(&limbs[..*len as usize]);
                    v.resize(n, 0);
                    *self = LimbBuf::Heap(v);
                }
            }
            LimbBuf::Heap(v) => v.resize(n, 0),
        }
    }

    /// Drops trailing zero limbs (the normalization invariant).
    pub fn trim_trailing_zeros(&mut self) {
        match self {
            LimbBuf::Inline { len, limbs } => {
                let mut n = *len as usize;
                while n > 0 && limbs[n - 1] == 0 {
                    n -= 1;
                }
                *len = n as u8;
            }
            LimbBuf::Heap(v) => {
                while v.last() == Some(&0) {
                    v.pop();
                }
            }
        }
    }

    pub fn first(&self) -> Option<&u64> {
        self.as_slice().first()
    }

    pub fn last(&self) -> Option<&u64> {
        self.as_slice().last()
    }

    pub fn get(&self, i: usize) -> Option<&u64> {
        self.as_slice().get(i)
    }
}

impl Default for LimbBuf {
    fn default() -> Self {
        LimbBuf::new()
    }
}

// Equality, ordering and hashing all defer to the limb slice so the two
// representations compare identically — and identically to the previous
// `Vec<u64>` storage, whose derived impls also defer to the slice.
impl PartialEq for LimbBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for LimbBuf {}

impl PartialOrd for LimbBuf {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LimbBuf {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for LimbBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn inline_and_heap_compare_equal() {
        let a = LimbBuf::from_slice(&[1, 2, 3]);
        let b = LimbBuf::Heap(vec![1, 2, 3]);
        assert!(a.is_inline());
        assert!(!b.is_inline());
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_matches_slice_lexicographic() {
        let a = LimbBuf::from_slice(&[1, 2]);
        let b = LimbBuf::from_slice(&[1, 2, 3]);
        let c = LimbBuf::from_slice(&[2]);
        assert!(a < b);
        assert!(a < c);
        assert_eq!([1u64, 2].as_slice().cmp([2u64].as_slice()), Ordering::Less);
    }

    #[test]
    fn resize_promotes_and_keeps_contents() {
        let mut a = LimbBuf::from_slice(&[7; INLINE_LIMBS]);
        assert!(a.is_inline());
        a.resize(INLINE_LIMBS + 2);
        assert!(!a.is_inline());
        assert_eq!(a.as_slice()[..INLINE_LIMBS], [7; INLINE_LIMBS]);
        assert_eq!(a.as_slice()[INLINE_LIMBS..], [0, 0]);
    }

    #[test]
    fn shrink_then_grow_inline_stays_zeroed() {
        let mut a = LimbBuf::from_slice(&[1, 2, 3]);
        a.resize(1);
        a.resize(3);
        assert_eq!(a.as_slice(), &[1, 0, 0]);
        a.trim_trailing_zeros();
        assert_eq!(a.as_slice(), &[1]);
    }
}
