//! Exhaustive Lagrange interpolation over small fields.
//!
//! Section 1 of the paper notes the canonical polynomial "can be derived by
//! means of the Lagrange interpolation formula; however, this requires to
//! analyze f over the entire field, which is exhaustive and infeasible" at
//! scale. We implement it anyway: on tiny fields it is a perfect
//! *independent oracle* for the Gröbner-basis extraction (the two must
//! agree term by term by uniqueness of the canonical form, Definition 3.1).

use crate::error::CoreError;
use crate::extract::quotient_normalize;
use crate::wordfn::WordFunction;
use gfab_field::{Gf, GfContext};
use gfab_netlist::sim::simulate_word;
use gfab_netlist::Netlist;
use gfab_poly::{ExponentMode, Monomial, Poly, RingBuilder, VarId, VarKind};
use std::sync::Arc;

/// Maximum number of simulation points the interpolator accepts
/// (`q^inputs`); beyond this the method is "exhaustive and infeasible" by
/// the paper's own argument and we refuse rather than hang.
pub const MAX_POINTS: u64 = 1 << 14;

/// Interpolates the canonical polynomial of `nl` by exhaustive simulation:
///
/// `F(X₁, …, X_d) = Σ_a f(a) · Π_j (1 − (X_j − a_j)^{q−1})`
///
/// # Errors
///
/// [`CoreError::SignatureMismatch`] if `q^d > MAX_POINTS` (field/arity too
/// large for exhaustive interpolation) and [`CoreError::Poly`] on
/// arithmetic failure.
pub fn interpolate(nl: &Netlist, ctx: &Arc<GfContext>) -> Result<WordFunction, CoreError> {
    nl.validate()?;
    let d = nl.input_words().len();
    let Some(q) = ctx.order_u64() else {
        return Err(CoreError::SignatureMismatch(
            "interpolation requires k <= 63".into(),
        ));
    };
    let points = q.checked_pow(d as u32).filter(|&p| p <= MAX_POINTS);
    let Some(total) = points else {
        return Err(CoreError::SignatureMismatch(format!(
            "interpolation over q^d = {q}^{d} points exceeds the {MAX_POINTS} limit"
        )));
    };

    // Ring over the input words only.
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
    let vars: Vec<VarId> = nl
        .input_words()
        .iter()
        .map(|w| rb.add_var(w.name.clone(), VarKind::Word))
        .collect();
    let ring = rb.build();
    let one = ctx.one();

    // Precompute, per variable, the indicator polynomials
    // 1 − (X − a)^{q−1} for every field point a. (X − a)^{q−1} expands by
    // repeated multiplication — fine for tiny q.
    let mut indicators: Vec<Vec<Poly>> = Vec::with_capacity(d);
    for &v in &vars {
        let mut per_point = Vec::with_capacity(q as usize);
        for bits in 0..q {
            let a = ctx.from_u64(bits);
            // base = X + a (characteristic 2).
            let base =
                Poly::from_terms(vec![(Monomial::var(v), one.clone()), (Monomial::one(), a)]);
            let mut pow = ring.constant(one.clone());
            for _ in 0..(q - 1) {
                pow = pow.mul(&base, &ring)?;
            }
            // 1 − pow = 1 + pow.
            let indicator = pow.add(&ring.constant(one.clone()));
            per_point.push(indicator);
        }
        indicators.push(per_point);
    }

    let mut acc = Poly::zero();
    for pattern in 0..total {
        // Decode the point (a_1, …, a_d) in base q.
        let mut rem = pattern;
        let mut point_bits = Vec::with_capacity(d);
        for _ in 0..d {
            point_bits.push(rem % q);
            rem /= q;
        }
        let words: Vec<Gf> = point_bits.iter().map(|&b| ctx.from_u64(b)).collect();
        let value = simulate_word(nl, ctx, &words);
        if value.is_zero() {
            continue;
        }
        let mut term = ring.constant(value);
        for (j, &b) in point_bits.iter().enumerate() {
            term = term.mul(&indicators[j][b as usize], &ring)?;
        }
        acc = acc.add(&term);
    }
    let acc = quotient_normalize(&ring, &acc);
    let names = nl.input_words().iter().map(|w| w.name.clone()).collect();
    Ok(WordFunction::new(ctx.clone(), names, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_word_polynomial;
    use gfab_field::Gf2Poly;
    use gfab_netlist::random::{random_circuit, RandomCircuitSpec};

    fn f4() -> Arc<GfContext> {
        GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
    }

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn interpolation_recovers_product() {
        let ctx = f4();
        let f = interpolate(&fig2(), &ctx).unwrap();
        assert_eq!(format!("{}", f.display()), "A*B");
    }

    #[test]
    fn interpolation_matches_extraction_on_random_circuits() {
        // The decisive cross-check: two completely independent derivations
        // of the canonical polynomial must agree exactly (uniqueness).
        let ctx = f4();
        for seed in 0..15 {
            let nl = random_circuit(&RandomCircuitSpec {
                num_input_words: 2,
                width: 2,
                num_gates: 20,
                seed,
            });
            let via_gb = extract_word_polynomial(&nl, &ctx)
                .unwrap()
                .canonical()
                .cloned()
                .unwrap_or_else(|| panic!("seed {seed}: completion failed"));
            let via_lagrange = interpolate(&nl, &ctx).unwrap();
            assert!(
                via_gb.matches(&via_lagrange),
                "seed {seed}: GB {} != Lagrange {}",
                via_gb.display(),
                via_lagrange.display()
            );
        }
    }

    #[test]
    fn oversized_instances_are_refused() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[8, 4, 3, 1, 0])).unwrap();
        let mut nl = Netlist::new("big");
        let a = nl.add_input_word("A", 8);
        let b = nl.add_input_word("B", 8);
        let z: Vec<_> = (0..8).map(|i| nl.xor(a[i], b[i])).collect();
        nl.set_output_word("Z", z);
        assert!(matches!(
            interpolate(&nl, &ctx),
            Err(CoreError::SignatureMismatch(_))
        ));
    }
}
