//! The canonical word-level function `Z = F(A, B, …)` of a circuit.

use gfab_field::{Gf, GfContext, Rng};
use gfab_poly::{ExponentMode, Poly, Ring, RingBuilder, VarKind};
use std::fmt;
use std::sync::Arc;

/// The unique canonical polynomial function a circuit implements over
/// `F_{2^k}` (Definition 3.1 of the paper), expressed over the circuit's
/// input words only: `Z = F(A, B, …)`.
///
/// Canonicity means two circuits compute the same function **iff** their
/// `WordFunction`s compare equal term by term — this is the coefficient
/// matching step of the paper's verification flow.
///
/// Exponents are kept reduced by `X^q = X` whenever `q = 2^k` fits in a
/// `u64`; for larger fields the extraction never produces exponents
/// anywhere near `q`, so representations remain canonical in practice.
#[derive(Debug, Clone)]
pub struct WordFunction {
    ctx: Arc<GfContext>,
    ring: Ring,
    input_names: Vec<String>,
    poly: Poly,
}

impl WordFunction {
    /// Builds a word function over fresh word variables named
    /// `input_names`, from a polynomial `poly` already expressed over
    /// `VarId(0) … VarId(n-1)` in that order.
    ///
    /// # Panics
    ///
    /// Panics if `poly` references a variable outside the declared inputs.
    pub fn new(ctx: Arc<GfContext>, input_names: Vec<String>, poly: Poly) -> Self {
        let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
        for name in &input_names {
            rb.add_var(name.clone(), VarKind::Word);
        }
        let ring = rb.build();
        if let Some(v) = poly.variables().last() {
            assert!(
                v.index() < input_names.len(),
                "polynomial references undeclared variable {v:?}"
            );
        }
        WordFunction {
            ctx,
            ring,
            input_names,
            poly,
        }
    }

    /// The coefficient field.
    pub fn ctx(&self) -> &Arc<GfContext> {
        &self.ctx
    }

    /// The input word names, in order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The canonical polynomial `F` (so that `Z = F(inputs)`).
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// The word-variable ring the polynomial lives in.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Number of terms of the canonical polynomial.
    pub fn num_terms(&self) -> usize {
        self.poly.num_terms()
    }

    /// Evaluates the function on one input word per declared input.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn eval(&self, inputs: &[Gf]) -> Gf {
        assert_eq!(inputs.len(), self.input_names.len(), "input arity");
        self.poly.eval(&self.ring, inputs)
    }

    /// Whether two word functions are identical (coefficient matching):
    /// same field, same input arity, and term-by-term equal polynomials.
    ///
    /// Input *names* are not compared — equivalence checking aligns inputs
    /// positionally (Spec's first word against Impl's first word, etc.).
    pub fn matches(&self, other: &WordFunction) -> bool {
        self.ctx.modulus() == other.ctx.modulus()
            && self.input_names.len() == other.input_names.len()
            && self.poly == other.poly
    }

    /// Searches for an input assignment on which the two functions differ.
    ///
    /// Exhaustive when the whole input space has at most 2^16 points;
    /// otherwise samples `tries` random assignments. A `None` from the
    /// random path is *not* a proof of equivalence (but [`matches`]
    /// already decides equivalence exactly; this is for reporting).
    ///
    /// [`matches`]: WordFunction::matches
    pub fn find_counterexample(
        &self,
        other: &WordFunction,
        tries: usize,
        rng: &mut Rng,
    ) -> Option<Vec<Gf>> {
        if self.input_names.len() != other.input_names.len() {
            return None;
        }
        let k = self.ctx.k();
        let n = self.input_names.len();
        if k * n <= 16 {
            // Exhaustive sweep.
            let total = 1u64 << (k * n);
            for pattern in 0..total {
                let inputs: Vec<Gf> = (0..n)
                    .map(|i| {
                        let mask = (1u64 << k) - 1;
                        self.ctx.from_u64((pattern >> (i * k)) & mask)
                    })
                    .collect();
                if self.eval(&inputs) != other.eval(&inputs) {
                    return Some(inputs);
                }
            }
            None
        } else {
            for _ in 0..tries {
                let inputs: Vec<Gf> = (0..n).map(|_| self.ctx.random(rng)).collect();
                if self.eval(&inputs) != other.eval(&inputs) {
                    return Some(inputs);
                }
            }
            None
        }
    }

    /// Formats the canonical polynomial with its input names.
    pub fn display(&self) -> impl fmt::Display + '_ {
        self.poly.display(&self.ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::Gf2Poly;
    use gfab_poly::{Monomial, VarId};

    fn f4() -> Arc<GfContext> {
        GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
    }

    /// F(A, B) = A·B as a WordFunction.
    fn product_fn(ctx: &Arc<GfContext>) -> WordFunction {
        let poly = Poly::from_terms(vec![(
            Monomial::from_factors(vec![(VarId(0), 1), (VarId(1), 1)]),
            ctx.one(),
        )]);
        WordFunction::new(ctx.clone(), vec!["A".into(), "B".into()], poly)
    }

    #[test]
    fn eval_computes_product() {
        let ctx = f4();
        let f = product_fn(&ctx);
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                assert_eq!(f.eval(&[a.clone(), b.clone()]), ctx.mul(&a, &b));
            }
        }
    }

    #[test]
    fn matches_is_positional_not_name_based() {
        let ctx = f4();
        let f = product_fn(&ctx);
        let poly = Poly::from_terms(vec![(
            Monomial::from_factors(vec![(VarId(0), 1), (VarId(1), 1)]),
            ctx.one(),
        )]);
        let g = WordFunction::new(ctx.clone(), vec!["X".into(), "Y".into()], poly);
        assert!(f.matches(&g));
    }

    #[test]
    fn counterexample_found_for_different_functions() {
        let ctx = f4();
        let f = product_fn(&ctx);
        // G(A, B) = A + B.
        let sum = Poly::from_terms(vec![
            (Monomial::var(VarId(0)), ctx.one()),
            (Monomial::var(VarId(1)), ctx.one()),
        ]);
        let g = WordFunction::new(ctx.clone(), vec!["A".into(), "B".into()], sum);
        assert!(!f.matches(&g));
        let mut rng = Rng::from_entropy();
        let cex = f
            .find_counterexample(&g, 100, &mut rng)
            .expect("must differ");
        assert_ne!(f.eval(&cex), g.eval(&cex));
    }

    #[test]
    fn identical_functions_have_no_counterexample() {
        let ctx = f4();
        let f = product_fn(&ctx);
        let g = product_fn(&ctx);
        let mut rng = Rng::from_entropy();
        assert!(f.find_counterexample(&g, 100, &mut rng).is_none());
    }

    #[test]
    fn display_uses_input_names() {
        let ctx = f4();
        let f = product_fn(&ctx);
        assert_eq!(format!("{}", f.display()), "A*B");
    }
}
