//! The Lv–Kalla–Enescu TCAD'13 baseline (reference \[5\] of the paper):
//! verification by **ideal membership test** when the specification
//! polynomial is *given*.
//!
//! Unlike the abstraction flow — which derives the spec — this method
//! checks a known `f_spec : Z + F(A, B, …)` against the circuit by a
//! sequence of divisions: under a term order where the *word* variables
//! are greatest (`Z > A > B > circuit nets > primary-input bits`), the
//! normal form of `f_spec` modulo the circuit polynomials and `J_0`
//! vanishes iff the circuit implements `F`.
//!
//! Completeness follows because the divisor set is triangular (one
//! polynomial per non-PI variable) and reduction terminates in the unique
//! multilinear form over the primary-input bits — the circuit's bit-level
//! canonical form — which is zero iff the function matches. This is the
//! flow whose "size explosion of intermediate remainders" motivates the
//! paper's RATO refinement; the benches reproduce the comparison.

use crate::error::CoreError;
use gfab_field::GfContext;
use gfab_netlist::Netlist;
use gfab_poly::reduce::{Reducer, ReductionStats};
use gfab_poly::{ExponentMode, Monomial, Poly, Ring, RingBuilder, VarId, VarKind};
use std::sync::Arc;

/// The verdict of an ideal membership test.
#[derive(Debug, Clone)]
pub struct MembershipOutcome {
    /// Whether `Z + F(A,B,…)` reduced to zero (circuit implements `F`).
    pub verified: bool,
    /// The non-zero normal form on failure (over primary-input bits).
    pub remainder: Option<Poly>,
    /// Reduction effort.
    pub stats: ReductionStats,
}

/// A specification polynomial builder for the membership test: the ring
/// over `Z > A > B > …` word variables in which to express `F`.
#[derive(Debug)]
pub struct SpecRing {
    /// The word-variable ring (`Z` is `VarId(0)`, inputs follow).
    pub ring: Ring,
    /// The output variable `Z`.
    pub z: VarId,
    /// The input word variables in declaration order.
    pub inputs: Vec<VarId>,
}

/// Creates the word-variable ring matching `nl`'s interface, for writing
/// the specification polynomial `F(A, B, …)`.
pub fn spec_ring(nl: &Netlist, ctx: &Arc<GfContext>) -> SpecRing {
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
    let z = rb.add_var(nl.output_word().name.clone(), VarKind::Word);
    let inputs: Vec<VarId> = nl
        .input_words()
        .iter()
        .map(|w| rb.add_var(w.name.clone(), VarKind::Word))
        .collect();
    SpecRing {
        ring: rb.build(),
        z,
        inputs,
    }
}

/// Tests whether the circuit implements `Z = spec_f(A, B, …)`, where
/// `spec_f` is expressed in [`spec_ring`]'s variables **without** `Z`
/// (the function body `F`, e.g. `A·B` for a multiplier).
///
/// # Errors
///
/// Model construction and polynomial arithmetic errors, as
/// [`crate::extract_word_polynomial_with`].
pub fn verify_against_spec(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    spec: &SpecRing,
    spec_f: &Poly,
) -> Result<MembershipOutcome, CoreError> {
    nl.validate()?;
    let k = ctx.k();
    for w in nl.input_words().iter().chain([nl.output_word()]) {
        if w.width() > k {
            return Err(CoreError::WidthMismatch {
                k,
                word: w.name.clone(),
                width: w.width(),
            });
        }
    }

    // Ring: Z > input words > internal nets (reverse topological) > PI bits.
    let levels =
        gfab_netlist::topo::reverse_topological_levels(nl).expect("validated netlist is acyclic");
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
    let z = rb.add_var(nl.output_word().name.clone(), VarKind::Word);
    let input_vars: Vec<VarId> = nl
        .input_words()
        .iter()
        .map(|w| rb.add_var(w.name.clone(), VarKind::Word))
        .collect();
    let mut internal: Vec<gfab_netlist::NetId> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|&n| !nl.is_primary_input(n))
        .collect();
    internal.sort_by_key(|&n| (levels[n.index()], n.0));
    let mut net_var: Vec<Option<VarId>> = vec![None; nl.num_nets()];
    let mut used = std::collections::HashMap::new();
    for &n in &internal {
        let name = crate::model::unique_var_name(&mut used, nl.net_name(n));
        net_var[n.index()] = Some(rb.add_var(name, VarKind::Bit));
    }
    for w in nl.input_words() {
        for &b in &w.bits {
            let name = crate::model::unique_var_name(&mut used, nl.net_name(b));
            net_var[b.index()] = Some(rb.add_var(name, VarKind::Bit));
        }
    }
    let ring = rb.build();
    let nv = |n: gfab_netlist::NetId| net_var[n.index()].expect("net has a variable");

    // Divisors: word definitions now lead with their WORD variable
    // (Z > z_0 …, A > a_0 …), plus the gate polynomials as usual.
    let one = ctx.one();
    let word_poly = |bits: &[gfab_netlist::NetId], w: VarId| -> Poly {
        let mut terms: Vec<(Monomial, gfab_field::Gf)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (Monomial::var(nv(b)), ctx.alpha_pow(i as u64)))
            .collect();
        terms.push((Monomial::var(w), one.clone()));
        Poly::from_terms(terms)
    };
    let mut divisors: Vec<Poly> = Vec::with_capacity(nl.num_gates() + 1 + input_vars.len());
    divisors.push(word_poly(&nl.output_word().bits, z));
    for (w, &v) in nl.input_words().iter().zip(&input_vars) {
        divisors.push(word_poly(&w.bits, v));
    }
    // Gate polynomials: reuse the gate modeling from CircuitModel by
    // constructing them directly here in this ring's variables.
    for g in nl.gates() {
        divisors.push(crate::model::gate_polynomial(&ring, ctx, g, &|n| nv(n)));
    }

    // f = Z + F(A, …): relabel the spec body into this ring.
    let spec_body = spec_f.relabel(|v| {
        let pos = spec
            .inputs
            .iter()
            .position(|&w| w == v)
            .expect("spec body uses input word variables only");
        input_vars[pos]
    });
    let f = spec_body.add(&Poly::from_terms(vec![(Monomial::var(z), one.clone())]));

    let reducer = Reducer::new(&ring, divisors.iter());
    let (nf, stats) = reducer.normal_form_with_stats(&f)?;
    Ok(MembershipOutcome {
        verified: nf.is_zero(),
        remainder: (!nf.is_zero()).then_some(nf),
        stats,
    })
}

/// Convenience: the multiplier specification `F = A·B` in `spec`'s ring.
pub fn multiplier_spec(spec: &SpecRing, ctx: &GfContext) -> Poly {
    Poly::from_terms(vec![(
        Monomial::from_factors(vec![(spec.inputs[0], 1), (spec.inputs[1], 1)]),
        ctx.one(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::{mastrovito_multiplier, monpro, MonproOperand};
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::Gf2Poly;
    use gfab_netlist::mutate::inject_random_bug;

    #[test]
    fn mastrovito_passes_product_spec() {
        for k in [2usize, 3, 4, 8] {
            let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = mastrovito_multiplier(&ctx);
            let sr = spec_ring(&nl, &ctx);
            let f = multiplier_spec(&sr, &ctx);
            let out = verify_against_spec(&nl, &ctx, &sr, &f).unwrap();
            assert!(out.verified, "k={k}");
        }
    }

    #[test]
    fn buggy_mastrovito_fails_product_spec() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let good = mastrovito_multiplier(&ctx);
        for seed in 0..6 {
            let (bad, what) = inject_random_bug(&good, seed);
            let sr = spec_ring(&bad, &ctx);
            let f = multiplier_spec(&sr, &ctx);
            let out = verify_against_spec(&bad, &ctx, &sr, &f).unwrap();
            // A mutation may coincidentally preserve the function; check
            // against simulation for agreement of verdicts.
            let sim_equal =
                gfab_netlist::sim::exhaustive_check(&bad, &ctx, |w| ctx.mul(&w[0], &w[1])).is_ok();
            assert_eq!(out.verified, sim_equal, "seed {seed}: {what}");
            if !out.verified {
                assert!(out.remainder.is_some());
            }
        }
    }

    #[test]
    fn montgomery_block_passes_abr_inverse_spec() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let nl = monpro(&ctx, "mm", MonproOperand::Word);
        let sr = spec_ring(&nl, &ctx);
        // F = R⁻¹ · A · B.
        let rinv = ctx.montgomery_r_inv();
        let f = multiplier_spec(&sr, &ctx).scale(&rinv, &sr.ring);
        let out = verify_against_spec(&nl, &ctx, &sr, &f).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn wrong_spec_is_rejected() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        let sr = spec_ring(&nl, &ctx);
        // Claim the multiplier computes A + B.
        let f = Poly::from_terms(vec![
            (Monomial::var(sr.inputs[0]), ctx.one()),
            (Monomial::var(sr.inputs[1]), ctx.one()),
        ]);
        let out = verify_against_spec(&nl, &ctx, &sr, &f).unwrap();
        assert!(!out.verified);
    }
}
