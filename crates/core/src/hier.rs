//! Hierarchical extraction: per-block abstraction plus word-level
//! composition (the paper's Table 2 flow).
//!
//! "First, a polynomial is extracted for each block (gate-level to
//! word-level abstraction), and then the approach is re-applied at word
//! level to derive the input-output relation (solved trivially in < 1
//! second)." — Section 6.

use crate::error::CoreError;
use crate::extract::{ExtractOptions, Extraction, ExtractionStats};
use crate::provider::{DirectExtract, ExtractProvider};
use crate::wordfn::WordFunction;
use gfab_field::budget::Budget;
use gfab_field::GfContext;
use gfab_netlist::hierarchy::{HierDesign, Signal};
use gfab_poly::{ExponentMode, Monomial, Poly, RingBuilder, VarId, VarKind};
use gfab_telemetry::Phase;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The result of extracting a hierarchical design.
#[derive(Debug, Clone)]
pub struct HierExtraction {
    /// The composed word-level function of the whole design.
    pub function: WordFunction,
    /// Per-block extraction results `(instance name, function, stats)`.
    pub blocks: Vec<(String, WordFunction, ExtractionStats)>,
    /// Wall-clock time of the word-level composition step alone.
    pub compose_time: Duration,
}

/// Extracts every block's word-level polynomial and composes them along
/// the design's word-level connections.
///
/// # Errors
///
/// Any block-level extraction error; `CoreError::CompletionLimit` if a
/// block lands in Case 2 and cannot be completed (composition requires
/// canonical block polynomials).
pub fn extract_hierarchical(
    design: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<HierExtraction, CoreError> {
    extract_hierarchical_budgeted(design, ctx, options, &options.budget.start())
}

/// [`extract_hierarchical`] under an already-running cooperative
/// [`Budget`] shared by every block (and by whatever else the caller is
/// running in parallel). A budget trip inside any block surfaces as
/// [`CoreError::BudgetExhausted`]: composition needs *all* block
/// polynomials, so there is no useful partial result at this level.
///
/// # Errors
///
/// As [`extract_hierarchical`], plus [`CoreError::BudgetExhausted`].
pub fn extract_hierarchical_budgeted(
    design: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<HierExtraction, CoreError> {
    extract_hierarchical_budgeted_with(&DirectExtract, design, ctx, options, budget)
}

/// [`extract_hierarchical_budgeted`] with an explicit
/// [`ExtractProvider`] supplying every per-block flat extraction — the
/// hook through which the batch engine's artifact cache makes identical
/// sub-blocks (within one design or across a whole batch) extract once.
/// Composition always runs per design.
///
/// # Errors
///
/// As [`extract_hierarchical_budgeted`].
pub fn extract_hierarchical_budgeted_with(
    provider: &dyn ExtractProvider,
    design: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<HierExtraction, CoreError> {
    design.validate()?;

    // 1. Per-block gate-level → word-level abstraction. Blocks are
    // independent at this stage (composition happens afterwards at word
    // level), so they run concurrently on the configured worker threads;
    // results are collected by block index, which makes the output — and
    // the error reported when several blocks fail — identical to the
    // serial path.
    let per_block = extract_blocks(provider, design, ctx, options, budget);
    let mut blocks: Vec<(String, WordFunction, ExtractionStats)> = Vec::new();
    for (inst, result) in design.blocks.iter().zip(per_block) {
        let result = result?;
        if let Extraction::TimedOut { phase, reason } = &result.outcome {
            return Err(CoreError::BudgetExhausted {
                phase: *phase,
                block: Some(inst.name.clone()),
                reason: *reason,
            });
        }
        let Some(f) = result.canonical() else {
            return Err(CoreError::CompletionLimit(format!(
                "block {} did not yield a canonical polynomial (Case 2)",
                inst.name
            )));
        };
        blocks.push((inst.name.clone(), f.clone(), result.stats));
    }

    // 2. Word-level composition over the design's primary input words.
    let compose_span = options.telemetry.span(Phase::Compose);
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
    let design_vars: Vec<VarId> = design
        .inputs
        .iter()
        .map(|(name, _)| rb.add_var(name.clone(), VarKind::Word))
        .collect();
    let dring = rb.build();

    // Polynomial of every signal, over the design ring.
    let mut signal_poly: Vec<Poly> = Vec::with_capacity(design.blocks.len());
    let poly_of = |sig: Signal, signal_poly: &[Poly]| -> Poly {
        match sig {
            Signal::PrimaryInput(i) => {
                Poly::from_terms(vec![(Monomial::var(design_vars[i]), ctx.one())])
            }
            Signal::BlockOutput(i) => signal_poly[i].clone(),
        }
    };

    for (inst, (_, f, _)) in design.blocks.iter().zip(&blocks) {
        // The block polynomial's variables are VarId(0..m) for its input
        // words; substitute the connected signals' polynomials.
        //
        // Build a combined ring: placeholders for the block inputs
        // (greater), then the design input words.
        let m = inst.connections.len();
        let mut crb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
        for j in 0..m {
            crb.add_var(format!("$in{j}"), VarKind::Word);
        }
        for (name, _) in &design.inputs {
            crb.add_var(name.clone(), VarKind::Word);
        }
        let cring = crb.build();
        let lift_design = |p: &Poly| p.relabel(|v| VarId(v.0 + m as u32));

        let mut acc = f.poly().clone(); // placeholders already at 0..m
        for (j, &sig) in inst.connections.iter().enumerate() {
            let rep = lift_design(&poly_of(sig, &signal_poly));
            acc = acc.substitute(VarId(j as u32), &rep, &cring)?;
        }
        debug_assert!(
            acc.variables().iter().all(|v| v.index() >= m),
            "all placeholders substituted"
        );
        signal_poly.push(acc.relabel(|v| VarId(v.0 - m as u32)));
    }

    let final_poly = poly_of(design.output, &signal_poly);
    let _ = &dring;
    let names = design.inputs.iter().map(|(n, _)| n.clone()).collect();
    let function = WordFunction::new(ctx.clone(), names, final_poly);
    let compose_time = compose_span.finish();

    Ok(HierExtraction {
        function,
        blocks,
        compose_time,
    })
}

/// Runs the gate-level → word-level abstraction of every block, sharded
/// over the configured worker threads (serial when one thread suffices).
/// The result vector is indexed by block position regardless of which
/// thread computed each entry.
fn extract_blocks(
    provider: &dyn ExtractProvider,
    design: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Vec<Result<crate::extract::ExtractionResult, CoreError>> {
    let n = design.blocks.len();
    let threads = options.effective_threads().min(n.max(1));
    // One labelled `Phase::Block` span per block, nesting the block's own
    // model/reduction spans beneath it via a re-parented telemetry clone
    // (works unchanged across worker threads). With telemetry disabled
    // this is a single branch straight into the plain extraction.
    let extract_one = |i: usize| {
        let inst = &design.blocks[i];
        if options.telemetry.is_enabled() {
            let span = options.telemetry.span_labeled(Phase::Block, &inst.name);
            let opts = options.clone().with_telemetry(span.telemetry());
            let r = provider.extract(&inst.netlist, ctx, &opts, budget);
            let _ = span.finish();
            r
        } else {
            provider.extract(&inst.netlist, ctx, options, budget)
        }
    };
    if threads <= 1 {
        return (0..n).map(extract_one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<crate::extract::ExtractionResult, CoreError>>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, extract_one(i)));
                    }
                    mine
                })
            })
            .collect();
        for w in workers {
            for (i, r) in w.join().expect("block extraction worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every block index was assigned to a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::montgomery_multiplier_hier;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::Gf2Poly;

    #[test]
    fn montgomery_hierarchy_composes_to_ab() {
        // The headline hierarchical result: four MonPro blocks compose to
        // G = A·B (Fig. 1).
        for k in [4usize, 8] {
            let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
            let design = montgomery_multiplier_hier(&ctx);
            let result = extract_hierarchical(&design, &ctx, &ExtractOptions::default()).unwrap();
            assert_eq!(format!("{}", result.function.display()), "A*B", "k = {k}");
            assert_eq!(result.blocks.len(), 4);
        }
    }

    #[test]
    fn block_polynomials_carry_montgomery_factors() {
        // Blk A must abstract to R²·R⁻¹·A = R·A.
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let design = montgomery_multiplier_hier(&ctx);
        let result = extract_hierarchical(&design, &ctx, &ExtractOptions::default()).unwrap();
        let (name, blk_a, _) = &result.blocks[0];
        assert_eq!(name, "blk_a");
        let r = ctx.montgomery_r();
        for a in ctx.iter_elements() {
            assert_eq!(blk_a.eval(std::slice::from_ref(&a)), ctx.mul(&r, &a));
        }
        // Blk Mid abstracts to A·B·R⁻¹.
        let (_, blk_mid, _) = &result.blocks[2];
        let rinv = ctx.montgomery_r_inv();
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                assert_eq!(
                    blk_mid.eval(&[a.clone(), b.clone()]),
                    ctx.mul(&ctx.mul(&a, &b), &rinv)
                );
            }
        }
    }

    #[test]
    fn hier_matches_flattened_extraction() {
        let ctx = GfContext::shared(irreducible_polynomial(5).unwrap()).unwrap();
        let design = montgomery_multiplier_hier(&ctx);
        let hier = extract_hierarchical(&design, &ctx, &ExtractOptions::default()).unwrap();
        let flat = design.flatten();
        let direct = crate::extract_word_polynomial(&flat, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        assert!(hier.function.matches(&direct));
    }
}
