//! The unguided full Gröbner-basis abstraction — the paper's SINGULAR
//! `slimgb` baseline (Section 6: "we find that the technique is infeasible
//! (memory explosion) beyond only 32-bit circuits; the full Gröbner basis
//! using elimination orders is extremely large").
//!
//! This computes `GB(J + J_0)` under the abstraction term order of
//! Definition 4.2 with **no** RATO guidance and **no** critical-pair
//! collapse, then reads the `Z + G(A)` polynomial off the reduced basis
//! (Theorem 4.2 / Corollary 4.1). It exists to validate the theorem on
//! small circuits and to measure how quickly the unguided route explodes.

use crate::error::CoreError;
use crate::wordfn::WordFunction;
use gfab_field::budget::Budget;
use gfab_field::GfContext;
use gfab_netlist::{NetId, Netlist};
use gfab_poly::buchberger::{reduced_groebner_basis_traced, GbLimits, GbOutcome, GbStats};
use gfab_poly::vanishing::vanishing_ideal_all;
use gfab_poly::{ExponentMode, Monomial, Poly, RingBuilder, VarId, VarKind};
use gfab_telemetry::Telemetry;
use std::sync::Arc;

/// Variable-ordering policy for the circuit bits (Definition 4.2 allows an
/// arbitrary relative order; Definition 5.1 refines it to reverse
/// topological). Exposed to support the RATO-vs-arbitrary ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitVarOrder {
    /// Net creation order (an "arbitrary" order in the sense of Def. 4.2).
    Declaration,
    /// Reverse topological order (RATO, Def. 5.1).
    ReverseTopological,
}

/// Outcome of the full-GB abstraction.
#[derive(Debug, Clone)]
pub enum FullGbOutcome {
    /// The canonical word function, read off the reduced basis.
    Canonical {
        /// The extracted word function.
        function: WordFunction,
        /// Size of the reduced Gröbner basis.
        basis_size: usize,
        /// Buchberger effort statistics.
        stats: GbStats,
    },
    /// The computation hit its resource limits (the expected result beyond
    /// small k — this is the paper's "memory explosion" made graceful).
    GaveUp {
        /// Which limit was hit.
        reason: String,
        /// Effort statistics at the point of giving up.
        stats: GbStats,
    },
}

/// Runs the unguided full Gröbner-basis abstraction on `nl`.
///
/// Requires `k ≤ 63` (the vanishing polynomials `X^q − X` for the word
/// variables must be explicit generators).
///
/// # Errors
///
/// Netlist/model errors, [`CoreError::Poly`] for `k > 63`, and
/// [`CoreError::MissingAbstractionPolynomial`] if a *completed* basis
/// lacks the `Z + G(A)` element (contradicting Theorem 4.2).
pub fn full_gb_abstraction(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    order: CircuitVarOrder,
    limits: &GbLimits,
) -> Result<FullGbOutcome, CoreError> {
    full_gb_abstraction_budgeted(nl, ctx, order, limits, &Budget::unlimited())
}

/// [`full_gb_abstraction`] under a cooperative [`Budget`], polled in the
/// Buchberger pair loop and the inner reductions. Exhaustion degrades to
/// [`FullGbOutcome::GaveUp`] — exactly like the paper-facing resource
/// limits, since for this deliberately explosive baseline giving up *is*
/// the expected result.
///
/// # Errors
///
/// As [`full_gb_abstraction`].
pub fn full_gb_abstraction_budgeted(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    order: CircuitVarOrder,
    limits: &GbLimits,
    budget: &Budget,
) -> Result<FullGbOutcome, CoreError> {
    full_gb_abstraction_traced(nl, ctx, order, limits, budget, &Telemetry::disabled())
}

/// [`full_gb_abstraction_budgeted`] with a [`Telemetry`] handle: the
/// Buchberger completion and basis reduction record spans and effort
/// counters under the caller's current span.
///
/// # Errors
///
/// As [`full_gb_abstraction`].
pub fn full_gb_abstraction_traced(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    order: CircuitVarOrder,
    limits: &GbLimits,
    budget: &Budget,
    tele: &Telemetry,
) -> Result<FullGbOutcome, CoreError> {
    nl.validate()?;
    // Build a Plain-mode ring: circuit bits (per `order`) > PI bits > Z >
    // input words.
    let levels =
        gfab_netlist::topo::reverse_topological_levels(nl).expect("validated netlist is acyclic");
    let mut internal: Vec<NetId> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|&n| !nl.is_primary_input(n))
        .collect();
    if order == CircuitVarOrder::ReverseTopological {
        internal.sort_by_key(|&n| (levels[n.index()], n.0));
    }
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
    let mut net_var: Vec<Option<VarId>> = vec![None; nl.num_nets()];
    let mut used = std::collections::HashMap::new();
    for &n in &internal {
        let name = crate::model::unique_var_name(&mut used, nl.net_name(n));
        net_var[n.index()] = Some(rb.add_var(name, VarKind::Bit));
    }
    for w in nl.input_words() {
        for &b in &w.bits {
            let name = crate::model::unique_var_name(&mut used, nl.net_name(b));
            net_var[b.index()] = Some(rb.add_var(name, VarKind::Bit));
        }
    }
    let z_var = rb.add_var(nl.output_word().name.clone(), VarKind::Word);
    let input_vars: Vec<VarId> = nl
        .input_words()
        .iter()
        .map(|w| rb.add_var(w.name.clone(), VarKind::Word))
        .collect();
    let ring = rb.build();
    let nv = |n: NetId| net_var[n.index()].expect("net has a variable");

    // Generators: gate polynomials + word definitions + J_0 (explicit).
    let one = ctx.one();
    let mut generators: Vec<Poly> = nl
        .gates()
        .iter()
        .map(|g| crate::model::gate_polynomial(&ring, ctx, g, &nv))
        .collect();
    let word_poly = |bits: &[NetId], w: VarId| -> Poly {
        let mut terms: Vec<(Monomial, gfab_field::Gf)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (Monomial::var(nv(b)), ctx.alpha_pow(i as u64)))
            .collect();
        terms.push((Monomial::var(w), one.clone()));
        Poly::from_terms(terms)
    };
    generators.push(word_poly(&nl.output_word().bits, z_var));
    for (w, &v) in nl.input_words().iter().zip(&input_vars) {
        generators.push(word_poly(&w.bits, v));
    }
    generators.extend(vanishing_ideal_all(&ring)?);

    match reduced_groebner_basis_traced(&ring, &generators, limits, budget, tele)? {
        GbOutcome::LimitExceeded { reason, stats } => Ok(FullGbOutcome::GaveUp { reason, stats }),
        GbOutcome::Complete { basis, stats } => {
            let hit = basis
                .iter()
                .find(|p| p.leading_monomial() == Some(&Monomial::var(z_var)));
            let Some(p) = hit else {
                return Err(CoreError::MissingAbstractionPolynomial);
            };
            let g = p.add(&Poly::from_terms(vec![(Monomial::var(z_var), one.clone())]));
            let ok = g.variables().iter().all(|&v| input_vars.contains(&v));
            if !ok {
                return Err(CoreError::MissingAbstractionPolynomial);
            }
            let relabeled = g.relabel(|v| {
                VarId(input_vars.iter().position(|&w| w == v).expect("input var") as u32)
            });
            let names = nl.input_words().iter().map(|w| w.name.clone()).collect();
            Ok(FullGbOutcome::Canonical {
                function: WordFunction::new(ctx.clone(), names, relabeled),
                basis_size: basis.len(),
                stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_word_polynomial;
    use gfab_field::Gf2Poly;

    fn f4() -> Arc<GfContext> {
        GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
    }

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn example_4_2_full_gb_contains_z_plus_ab() {
        // Example 4.2 of the paper: the GB of J + J_0 under the abstraction
        // order contains g7 : Z + A·B.
        let ctx = f4();
        let out = full_gb_abstraction(
            &fig2(),
            &ctx,
            CircuitVarOrder::ReverseTopological,
            &GbLimits::default(),
        )
        .unwrap();
        match out {
            FullGbOutcome::Canonical { function, .. } => {
                assert_eq!(format!("{}", function.display()), "A*B");
            }
            FullGbOutcome::GaveUp { reason, .. } => panic!("gave up: {reason}"),
        }
    }

    #[test]
    fn full_gb_agrees_with_guided_extraction() {
        let ctx = f4();
        let nl = fig2();
        let guided = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        for order in [
            CircuitVarOrder::Declaration,
            CircuitVarOrder::ReverseTopological,
        ] {
            match full_gb_abstraction(&nl, &ctx, order, &GbLimits::default()).unwrap() {
                FullGbOutcome::Canonical { function, .. } => {
                    assert!(function.matches(&guided), "{order:?}");
                }
                FullGbOutcome::GaveUp { reason, .. } => panic!("{order:?} gave up: {reason}"),
            }
        }
    }

    #[test]
    fn limits_produce_graceful_giveup() {
        let ctx = f4();
        let limits = GbLimits {
            max_pair_reductions: 1,
            ..GbLimits::default()
        };
        match full_gb_abstraction(&fig2(), &ctx, CircuitVarOrder::Declaration, &limits).unwrap() {
            FullGbOutcome::GaveUp { .. } => {}
            FullGbOutcome::Canonical { .. } => {
                panic!("a 7-gate multiplier needs more than one pair reduction")
            }
        }
    }
}
