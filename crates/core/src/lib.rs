//! # gfab-core
//!
//! The word-level abstraction engine of
//! *"Equivalence Verification of Large Galois Field Arithmetic Circuits
//! using Word-Level Abstraction via Gröbner Bases"*
//! (Pruss, Kalla, Enescu — DAC 2014).
//!
//! Given a combinational circuit with `k`-bit input words `A, B, …` and a
//! `k`-bit output word `Z` over `F_{2^k}`, this crate derives the **unique
//! canonical polynomial** `Z = F(A, B, …)` the circuit implements, and uses
//! it for equivalence checking:
//!
//! 1. [`model`] turns the netlist into a polynomial system under **RATO**
//!    (the Refined Abstraction Term Order of Definition 5.1: circuit
//!    variables in reverse topological order > output word `Z` > input
//!    words).
//! 2. [`extract_word_polynomial`] performs the paper's guided Gröbner-basis
//!    step: under RATO exactly one critical pair survives the product
//!    criterion, so the whole computation collapses to one S-polynomial
//!    followed by a chain of divisions. Case 1 yields the canonical
//!    polynomial directly; Case 2 (buggy circuits) leaves primary-input
//!    bits in the remainder and is completed by a small reduced Gröbner
//!    basis over `{r, input word definitions} ∪ J_0` (Section 5).
//! 3. [`hier`] extracts hierarchical designs block by block and composes
//!    the block polynomials at the word level (the paper's Table 2 flow).
//! 4. [`equiv`] proves or disproves `Spec ≡ Impl` by coefficient matching
//!    of the two canonical polynomials, with counterexample search on
//!    mismatch.
//!
//! Baselines for the paper's comparisons live here too:
//! [`ideal_membership`] (the Lv–Kalla–Enescu TCAD'13 method \[5\] that needs
//! the spec polynomial as an input), [`fullgb`] (the unguided full
//! Gröbner-basis route — the SINGULAR `slimgb` baseline that explodes), and
//! [`interpolate`] (exhaustive Lagrange interpolation, feasible only on
//! tiny fields and used as a testing oracle).
//!
//! # Example: recover `Z = A·B` from a Mastrovito multiplier
//!
//! ```
//! use gfab_field::{GfContext, Gf2Poly};
//! use gfab_circuits::mastrovito_multiplier;
//! use gfab_core::extract_word_polynomial;
//!
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let mult = mastrovito_multiplier(&ctx);
//! let result = extract_word_polynomial(&mult, &ctx).unwrap();
//! let f = result.canonical().expect("correct circuit gives Case 1");
//! assert_eq!(format!("{}", f.display()), "A*B");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equiv;
mod error;
mod extract;
pub mod fullgb;
pub mod hier;
pub mod ideal_membership;
pub mod interpolate;
pub mod model;
pub mod pool;
mod provider;
mod wordfn;

pub use error::CoreError;
pub use extract::{
    extract_word_polynomial, extract_word_polynomial_budgeted, extract_word_polynomial_with,
    ExtractOptions, Extraction, ExtractionResult, ExtractionStats,
};
pub use provider::{DirectExtract, ExtractProvider};
pub use wordfn::WordFunction;
