//! A minimal work-stealing pool for index-addressed task sets.
//!
//! Both the batch verification engine and the fuzz campaign runner
//! process a fixed list of independent tasks (`0..n`) on a bounded set
//! of workers and want results back in submission order. This module is
//! that shared scheduler: tasks are dealt round-robin onto per-worker
//! deques, an idle worker pops its own queue front-first and then steals
//! from the back of its neighbours' queues, and every result lands in
//! the slot of its task index.
//!
//! The scheduler decides *when* a task runs, never *what* it computes:
//! as long as `f(w, i)` depends only on `i` (not on the worker index or
//! on timing), the returned vector is bit-identical at any worker count.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f(worker, index)` for every `index` in `0..n` over `workers`
/// work-stealing workers and returns the results in index order.
///
/// `workers` is clamped to `1..=n`; with one worker everything runs on
/// the calling thread (no threads are spawned). `f` receives the index
/// of the worker executing it, for callers that keep per-worker state.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker aborts the pool).
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    // Deal tasks round-robin onto per-worker deques.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        deques[i % workers]
            .lock()
            .expect("pool deque lock")
            .push_back(i);
    }

    let run_worker = |w: usize| -> Vec<(usize, T)> {
        let mut mine = Vec::new();
        loop {
            // Own queue front first; then steal from the back of the
            // other workers' queues.
            let mut next = deques[w].lock().expect("pool deque lock").pop_front();
            if next.is_none() {
                for v in (0..workers).filter(|&v| v != w) {
                    next = deques[v].lock().expect("pool deque lock").pop_back();
                    if next.is_some() {
                        break;
                    }
                }
            }
            let Some(i) = next else { break };
            mine.push((i, f(w, i)));
        }
        mine
    };

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for (i, r) in run_worker(0) {
            slots[i] = Some(r);
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_worker(w)))
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("pool worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|r| r.expect("every task was dequeued exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(workers, 37, |_w, i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_indexed(4, 100, |_w, i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn degenerate_sizes_work() {
        assert!(run_indexed::<usize, _>(4, 0, |_w, i| i).is_empty());
        assert_eq!(run_indexed(0, 3, |_w, i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 1, |_w, i| i), vec![0]);
    }
}
