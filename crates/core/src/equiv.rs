//! Equivalence checking by canonical-polynomial coefficient matching —
//! the Verification Problem of Section 1 of the paper.
//!
//! Both circuits are abstracted to their canonical word-level polynomials
//! `F₁, F₂`; "the equivalence test is then performed by simply matching
//! the coefficients of F₁, F₂". On mismatch a concrete counterexample is
//! produced.

use crate::error::CoreError;
use crate::extract::{ExtractOptions, ExtractionStats};
use crate::hier::extract_hierarchical_budgeted_with;
use crate::provider::{DirectExtract, ExtractProvider};
use crate::wordfn::WordFunction;
use gfab_field::budget::Budget;
use gfab_field::{Gf, GfContext, Rng};
use gfab_netlist::hierarchy::HierDesign;
use gfab_netlist::sim::{random_equivalence_check_traced, SimOutcome};
use gfab_netlist::Netlist;
use gfab_telemetry::{Phase, Trace};
use std::sync::Arc;

/// The verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The circuits implement the same polynomial function over `F_{2^k}`.
    Equivalent {
        /// The shared canonical function.
        function: WordFunction,
    },
    /// The circuits differ; both canonical functions and (when found) a
    /// distinguishing input assignment are reported.
    Inequivalent {
        /// Spec's canonical function.
        spec: WordFunction,
        /// Impl's canonical function.
        impl_: WordFunction,
        /// An input assignment on which the two differ (always present
        /// when the input space is exhaustively enumerable; randomly
        /// sampled otherwise).
        counterexample: Option<Vec<Gf>>,
    },
    /// A canonical form could not be derived for one side, but random
    /// simulation found a concrete distinguishing assignment — a sound
    /// refutation even without canonical polynomials.
    InequivalentBySimulation {
        /// The distinguishing input words.
        counterexample: Vec<Gf>,
    },
    /// The word-level pipeline ran out of budget (or stayed residual), but
    /// the SAT miter fallback proved the circuits equivalent (UNSAT miter).
    /// Constructed by the `Verifier` fallback ladder, never by
    /// [`check_equivalence`] itself.
    EquivalentBySat {
        /// Conflicts the solver spent on the proof.
        conflicts: u64,
    },
    /// The SAT miter fallback found a concrete distinguishing input
    /// assignment after the word-level pipeline could not decide.
    InequivalentBySat {
        /// The distinguishing input words.
        counterexample: Vec<Gf>,
        /// Conflicts the solver spent before finding it.
        conflicts: u64,
    },
    /// A canonical form could not be derived for one side (Case-2 residual
    /// on a large field, or budget exhaustion); the reason is reported.
    Unknown {
        /// Why no decision was reached.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict proves equivalence ([`Verdict::Equivalent`] or
    /// [`Verdict::EquivalentBySat`]).
    pub fn is_equivalent(&self) -> bool {
        matches!(
            self,
            Verdict::Equivalent { .. } | Verdict::EquivalentBySat { .. }
        )
    }

    /// The distinguishing input assignment, for any inequivalence
    /// verdict that carries one; `None` otherwise.
    pub fn counterexample(&self) -> Option<&[Gf]> {
        match self {
            Verdict::Inequivalent { counterexample, .. } => counterexample.as_deref(),
            Verdict::InequivalentBySimulation { counterexample }
            | Verdict::InequivalentBySat { counterexample, .. } => Some(counterexample),
            _ => None,
        }
    }
}

/// Effort counters of the SAT fallback rung. A value-level mirror of the
/// solver's own stats struct, defined here so the report type does not
/// pull the solver crate into the core dependency graph; the `Verifier`
/// ladder fills it whenever the SAT rung ran (regardless of verdict).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// CDCL conflicts.
    pub conflicts: u64,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL unit propagations.
    pub propagations: u64,
    /// CDCL restarts.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Variables in the miter CNF.
    pub cnf_vars: usize,
    /// Clauses in the miter CNF.
    pub cnf_clauses: usize,
}

/// A full equivalence report: verdict plus per-side extraction statistics.
///
/// Prefer the accessor methods ([`EquivReport::verdict`],
/// [`EquivReport::counterexample`], [`EquivReport::sat_stats`],
/// [`EquivReport::trace`], …) — they are the uniform surface shared with
/// `ExtractReport`. The public fields remain readable for one more
/// release and will become private.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// The verdict. Deprecated as a field: use [`EquivReport::verdict`].
    pub verdict: Verdict,
    /// Spec extraction statistics. Deprecated as a field: use
    /// [`EquivReport::spec_stats`].
    pub spec_stats: ExtractionStats,
    /// Impl extraction statistics (aggregated over blocks for
    /// hierarchical implementations). Deprecated as a field: use
    /// [`EquivReport::impl_stats`].
    pub impl_stats: ExtractionStats,
    /// SAT fallback effort, when the `Verifier` ladder ran the SAT rung
    /// (present whether or not that rung decided the query). Deprecated
    /// as a field: use [`EquivReport::sat_stats`].
    pub sat: Option<SatStats>,
    /// The query's span tree, when telemetry was enabled (the `Verifier`
    /// attaches it after the query completes). Deprecated as a field:
    /// use [`EquivReport::trace`].
    pub trace: Option<Trace>,
}

impl EquivReport {
    /// The verdict.
    #[must_use]
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The distinguishing input assignment, when the verdict carries one.
    #[must_use]
    pub fn counterexample(&self) -> Option<&[Gf]> {
        self.verdict.counterexample()
    }

    /// Spec-side extraction statistics.
    #[must_use]
    pub fn spec_stats(&self) -> &ExtractionStats {
        &self.spec_stats
    }

    /// Impl-side extraction statistics (aggregated over blocks for
    /// hierarchical implementations).
    #[must_use]
    pub fn impl_stats(&self) -> &ExtractionStats {
        &self.impl_stats
    }

    /// SAT fallback effort, when the SAT rung ran.
    #[must_use]
    pub fn sat_stats(&self) -> Option<&SatStats> {
        self.sat.as_ref()
    }

    /// The query's span tree, when telemetry was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

/// Checks functional equivalence of two flat netlists over `F_{2^k}`.
///
/// # Errors
///
/// Propagates extraction errors; a [`CoreError::SignatureMismatch`] is
/// returned when the interfaces (input word counts/widths) differ.
pub fn check_equivalence(
    spec: &Netlist,
    impl_: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<EquivReport, CoreError> {
    check_equivalence_budgeted(spec, impl_, ctx, options, &options.budget.start())
}

/// [`check_equivalence`] under an already-running cooperative [`Budget`]
/// shared by both abstractions (and, in the `Verifier` ladder, by the SAT
/// fallback that may follow). Budget exhaustion mid-pipeline degrades to
/// [`Verdict::Unknown`] with the exhausted resource named — never an
/// error — so a caller can always act on the verdict.
///
/// Determinism: work units are charged only by the (deterministic)
/// word-level algebra, so under a pure work cap the verdict is identical
/// at any thread count. Wall-clock deadlines only decide *whether* a run
/// completes, never what a completed run returns.
///
/// # Errors
///
/// As [`check_equivalence`]; additionally [`CoreError::BudgetExhausted`]
/// when the budget is spent before any partial result exists.
pub fn check_equivalence_budgeted(
    spec: &Netlist,
    impl_: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<EquivReport, CoreError> {
    check_equivalence_budgeted_with(&DirectExtract, spec, impl_, ctx, options, budget)
}

/// [`check_equivalence_budgeted`] with an explicit [`ExtractProvider`]
/// supplying the per-side extractions — the hook the batch engine's
/// artifact cache plugs into. With [`DirectExtract`] this *is*
/// [`check_equivalence_budgeted`]; with any provider honouring the
/// determinism contract (see [`crate::provider`]) the verdict is
/// bit-identical.
///
/// Only the two flat extractions route through the provider. The
/// simulation pre-check, the refutation sweep and the decision step are
/// per-query (they depend on the *pair*, not one netlist) and always
/// run.
///
/// # Errors
///
/// As [`check_equivalence_budgeted`].
pub fn check_equivalence_budgeted_with(
    provider: &dyn ExtractProvider,
    spec: &Netlist,
    impl_: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<EquivReport, CoreError> {
    check_signatures(spec, impl_)?;
    // Cheap pre-check on larger fields: 64 random co-simulations refute a
    // buggy pair in milliseconds, where the Case-2 completion a buggy
    // extraction would trigger grows with q = 2^k. Small fields (k <= 5)
    // skip this so the verdict carries both canonical polynomials (richer
    // diagnostics, and the completion there is fast anyway).
    if ctx.k() > 5 {
        let mut rng = Rng::seed_from_u64(0xFA57);
        match random_equivalence_check_traced(
            spec,
            impl_,
            ctx,
            64,
            &mut rng,
            options.threads,
            budget,
            &options.telemetry,
            "pre-check",
        ) {
            SimOutcome::Differ(cex) => {
                return Ok(EquivReport {
                    verdict: Verdict::InequivalentBySimulation {
                        counterexample: cex,
                    },
                    spec_stats: ExtractionStats::default(),
                    impl_stats: ExtractionStats::default(),
                    sat: None,
                    trace: None,
                });
            }
            // An interrupted sweep proves nothing; fall through and let
            // the word-level phase (or its own entry poll) decide.
            SimOutcome::Agree | SimOutcome::OutOfBudget(_) => {}
        }
    }
    // Spec and impl abstractions are independent; run them on two scoped
    // threads when the thread budget allows. Error precedence (spec first)
    // matches the serial path, so behaviour is identical either way. Both
    // sides tick the *same* budget: a work cap bounds the query total.
    // Each side runs under a labelled `Phase::Extract` span (opened on
    // whichever thread performs the work, so the span measures on-thread
    // time); the extraction's own model/reduction spans nest beneath it.
    let extract_side = |nl: &Netlist, label: &str| {
        if options.telemetry.is_enabled() {
            let span = options.telemetry.span_labeled(Phase::Extract, label);
            let opts = options.clone().with_telemetry(span.telemetry());
            let r = provider.extract(nl, ctx, &opts, budget);
            let _ = span.finish();
            r
        } else {
            provider.extract(nl, ctx, options, budget)
        }
    };
    let (spec_res, impl_res) = if options.effective_threads() > 1 {
        std::thread::scope(|scope| {
            let spec_handle = scope.spawn(|| extract_side(spec, "spec"));
            let impl_res = extract_side(impl_, "impl");
            (
                spec_handle.join().expect("spec extraction thread panicked"),
                impl_res,
            )
        })
    } else {
        (extract_side(spec, "spec"), extract_side(impl_, "impl"))
    };
    let (spec_res, impl_res) = (spec_res?, impl_res?);
    let verdict = match (spec_res.canonical(), impl_res.canonical()) {
        (Some(f1), Some(f2)) => decide(f1.clone(), f2.clone()),
        (a, _) => {
            // One side stayed a Case-2 residual (large field, completion
            // unavailable) or timed out. Try to at least *refute*
            // equivalence by random simulation before reporting Unknown:
            // over a large field a functional difference is detected with
            // overwhelming probability.
            let mut rng = Rng::seed_from_u64(0xCEC);
            let sim = random_equivalence_check_traced(
                spec,
                impl_,
                ctx,
                256,
                &mut rng,
                options.threads,
                budget,
                &options.telemetry,
                "refute",
            );
            if let SimOutcome::Differ(cex) = sim {
                Verdict::InequivalentBySimulation {
                    counterexample: cex,
                }
            } else if let Some(reason) = budget.exhausted() {
                // Deliberately side-agnostic: with a shared work cap and
                // parallel extraction, *which* side trips first races —
                // the fact of exhaustion does not.
                Verdict::Unknown {
                    reason: format!(
                        "word-level abstraction ran out of budget ({reason}) \
                         before reaching a canonical form"
                    ),
                }
            } else {
                let side = if a.is_none() { "spec" } else { "impl" };
                Verdict::Unknown {
                    reason: format!(
                        "{side} abstraction did not reach a canonical form \
                         (and 256 random simulations found no difference)"
                    ),
                }
            }
        }
    };
    Ok(EquivReport {
        verdict,
        spec_stats: spec_res.stats,
        impl_stats: impl_res.stats,
        sat: None,
        trace: None,
    })
}

/// Checks a flat Spec against a hierarchical Impl (the paper's headline
/// configuration: flattened Mastrovito vs. four-block Montgomery).
///
/// # Errors
///
/// As [`check_equivalence`].
pub fn check_equivalence_hier(
    spec: &Netlist,
    impl_: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<EquivReport, CoreError> {
    check_equivalence_hier_budgeted(spec, impl_, ctx, options, &options.budget.start())
}

/// [`check_equivalence_hier`] under an already-running cooperative
/// [`Budget`] shared by the spec extraction and every block of the
/// hierarchical impl. Exhaustion degrades to [`Verdict::Unknown`] naming
/// the resource.
///
/// # Errors
///
/// As [`check_equivalence_hier`].
pub fn check_equivalence_hier_budgeted(
    spec: &Netlist,
    impl_: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<EquivReport, CoreError> {
    check_equivalence_hier_budgeted_with(&DirectExtract, spec, impl_, ctx, options, budget)
}

/// [`check_equivalence_hier_budgeted`] with an explicit
/// [`ExtractProvider`] supplying the spec extraction *and* every
/// per-block extraction of the hierarchical impl — so identical
/// sub-blocks across a batch extract once. Same determinism contract as
/// [`check_equivalence_budgeted_with`].
///
/// # Errors
///
/// As [`check_equivalence_hier_budgeted`].
pub fn check_equivalence_hier_budgeted_with(
    provider: &dyn ExtractProvider,
    spec: &Netlist,
    impl_: &HierDesign,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<EquivReport, CoreError> {
    // As in the flat case, spec extraction and the hierarchical impl
    // extraction run concurrently when the thread budget allows (the
    // hierarchical side additionally shards its blocks internally).
    let extract_spec = || {
        if options.telemetry.is_enabled() {
            let span = options.telemetry.span_labeled(Phase::Extract, "spec");
            let opts = options.clone().with_telemetry(span.telemetry());
            let r = provider.extract(spec, ctx, &opts, budget);
            let _ = span.finish();
            r
        } else {
            provider.extract(spec, ctx, options, budget)
        }
    };
    // The hierarchical side gets its own labelled `Phase::Extract` span;
    // the per-block `Phase::Block` spans nest under it.
    let extract_hier = || {
        if options.telemetry.is_enabled() {
            let span = options.telemetry.span_labeled(Phase::Extract, "impl");
            let opts = options.clone().with_telemetry(span.telemetry());
            let r = extract_hierarchical_budgeted_with(provider, impl_, ctx, &opts, budget);
            let _ = span.finish();
            r
        } else {
            extract_hierarchical_budgeted_with(provider, impl_, ctx, options, budget)
        }
    };
    let (spec_res, hier) = if options.effective_threads() > 1 {
        std::thread::scope(|scope| {
            let spec_handle = scope.spawn(extract_spec);
            let hier = extract_hier();
            (
                spec_handle.join().expect("spec extraction thread panicked"),
                hier,
            )
        })
    } else {
        (extract_spec(), extract_hier())
    };
    // A budget trip inside a hierarchical block is not an error at this
    // level: it degrades to an Unknown verdict so the caller's fallback
    // ladder can still act. Other errors (and any spec error) propagate.
    let hier = match hier {
        Ok(h) => Some(h),
        Err(CoreError::BudgetExhausted { .. }) => None,
        Err(e) => {
            spec_res?; // spec error precedence matches the flat path
            return Err(e);
        }
    };
    let spec_res = spec_res?;
    let verdict = match (spec_res.canonical(), &hier) {
        (Some(f1), Some(h)) => decide(f1.clone(), h.function.clone()),
        _ => {
            if let Some(reason) = budget.exhausted() {
                Verdict::Unknown {
                    reason: format!(
                        "word-level abstraction ran out of budget ({reason}) \
                         before reaching a canonical form"
                    ),
                }
            } else {
                Verdict::Unknown {
                    reason: "spec abstraction did not reach a canonical form".into(),
                }
            }
        }
    };
    // Aggregate block stats for reporting.
    let mut impl_stats = ExtractionStats::default();
    if let Some(h) = &hier {
        for (_, _, s) in &h.blocks {
            impl_stats.gates += s.gates;
            impl_stats.reduction_steps += s.reduction_steps;
            impl_stats.peak_terms = impl_stats.peak_terms.max(s.peak_terms);
            impl_stats.duration += s.duration;
        }
        impl_stats.duration += h.compose_time;
    }
    Ok(EquivReport {
        verdict,
        spec_stats: spec_res.stats,
        impl_stats,
        sat: None,
        trace: None,
    })
}

fn decide(f1: WordFunction, f2: WordFunction) -> Verdict {
    if f1.matches(&f2) {
        Verdict::Equivalent { function: f1 }
    } else {
        let mut rng = Rng::seed_from_u64(0x5EED);
        let counterexample = f1.find_counterexample(&f2, 4096, &mut rng);
        Verdict::Inequivalent {
            spec: f1,
            impl_: f2,
            counterexample,
        }
    }
}

fn check_signatures(a: &Netlist, b: &Netlist) -> Result<(), CoreError> {
    if a.input_words().len() != b.input_words().len() {
        return Err(CoreError::SignatureMismatch(format!(
            "spec has {} input words, impl has {}",
            a.input_words().len(),
            b.input_words().len()
        )));
    }
    for (wa, wb) in a.input_words().iter().zip(b.input_words()) {
        if wa.width() != wb.width() {
            return Err(CoreError::SignatureMismatch(format!(
                "input {} widths differ: {} vs {}",
                wa.name,
                wa.width(),
                wb.width()
            )));
        }
    }
    if a.output_word().width() != b.output_word().width() {
        return Err(CoreError::SignatureMismatch(format!(
            "output widths differ: {} vs {}",
            a.output_word().width(),
            b.output_word().width()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
    use gfab_field::nist::irreducible_polynomial;
    use gfab_netlist::mutate::inject_random_bug;
    use gfab_netlist::sim::simulate_word;

    #[test]
    fn mastrovito_equals_montgomery_flat() {
        for k in [3usize, 4, 8] {
            let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
            let spec = mastrovito_multiplier(&ctx);
            let impl_ = montgomery_multiplier_hier(&ctx).flatten();
            let report =
                check_equivalence(&spec, &impl_, &ctx, &ExtractOptions::default()).unwrap();
            assert!(report.verdict.is_equivalent(), "k = {k}");
        }
    }

    #[test]
    fn mastrovito_equals_montgomery_hierarchical() {
        let ctx = GfContext::shared(irreducible_polynomial(8).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(&ctx);
        let report =
            check_equivalence_hier(&spec, &impl_, &ctx, &ExtractOptions::default()).unwrap();
        match &report.verdict {
            Verdict::Equivalent { function } => {
                assert_eq!(format!("{}", function.display()), "A*B");
            }
            other => panic!("expected equivalence, got {other:?}"),
        }
    }

    #[test]
    fn injected_bugs_yield_counterexamples() {
        let ctx = GfContext::shared(irreducible_polynomial(3).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let mut caught = 0;
        for seed in 0..10 {
            let (bad, what) = inject_random_bug(&spec, seed);
            // Skip mutations that happen to preserve the function.
            let differs =
                gfab_netlist::sim::exhaustive_check(&bad, &ctx, |w| ctx.mul(&w[0], &w[1])).is_err();
            let report = check_equivalence(&spec, &bad, &ctx, &ExtractOptions::default()).unwrap();
            match (&report.verdict, differs) {
                (Verdict::Equivalent { .. }, false) => {}
                (Verdict::Inequivalent { counterexample, .. }, true) => {
                    caught += 1;
                    let cex = counterexample
                        .as_ref()
                        .unwrap_or_else(|| panic!("cex must exist on a tiny field ({what})"));
                    // The counterexample must actually distinguish the
                    // circuits.
                    assert_ne!(
                        simulate_word(&spec, &ctx, cex),
                        simulate_word(&bad, &ctx, cex),
                        "{what}"
                    );
                }
                (v, d) => panic!("seed {seed} ({what}): verdict {v:?}, differs={d}"),
            }
        }
        assert!(caught >= 5, "expected most mutations to be real bugs");
    }

    #[test]
    fn large_field_bug_is_refuted_by_simulation_fallback() {
        // k = 64: Case-2 completion is unavailable (needs k <= 63), so a
        // buggy circuit cannot be canonicalized — but the simulation
        // fallback still refutes equivalence with a concrete witness.
        let ctx = GfContext::shared(irreducible_polynomial(64).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let mut found_residual_refutation = false;
        for seed in 0..6u64 {
            let (bad, what) = inject_random_bug(&spec, seed);
            let report = check_equivalence(&spec, &bad, &ctx, &ExtractOptions::default()).unwrap();
            match &report.verdict {
                Verdict::Equivalent { .. } => {}   // benign mutation
                Verdict::Inequivalent { .. } => {} // bug stayed Case 1 somehow
                Verdict::InequivalentBySimulation { counterexample } => {
                    found_residual_refutation = true;
                    assert_ne!(
                        simulate_word(&spec, &ctx, counterexample),
                        simulate_word(&bad, &ctx, counterexample),
                        "{what}"
                    );
                }
                Verdict::Unknown { reason } => {
                    panic!("seed {seed} ({what}): unexpected Unknown: {reason}")
                }
                other => panic!("seed {seed} ({what}): SAT verdict without SAT rung: {other:?}"),
            }
        }
        assert!(
            found_residual_refutation,
            "at least one mutation must land in the simulation-fallback path"
        );
    }

    #[test]
    fn signature_mismatch_is_an_error() {
        let ctx = GfContext::shared(irreducible_polynomial(3).unwrap()).unwrap();
        let ctx4 = GfContext::shared(irreducible_polynomial(4).unwrap()).unwrap();
        let spec = mastrovito_multiplier(&ctx);
        let other = mastrovito_multiplier(&ctx4);
        assert!(matches!(
            check_equivalence(&spec, &other, &ctx, &ExtractOptions::default()),
            Err(CoreError::SignatureMismatch(_))
        ));
    }
}
