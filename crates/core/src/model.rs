//! Circuit → polynomial system translation under RATO.
//!
//! This module implements Section 4 of the paper: every gate becomes a
//! polynomial over `F_{2^k}` (with `F_2 ⊂ F_{2^k}`), the word/bit
//! correspondences of Eqn. (1) become the word-definition polynomials, and
//! the ring's variable ranking encodes the Refined Abstraction Term Order
//! of Definition 5.1:
//!
//! ```text
//! circuit nets (reverse topological) > primary input bits > Z > A > B > …
//! ```

use crate::error::CoreError;
use gfab_field::GfContext;
use gfab_netlist::{GateKind, NetId, Netlist};
use gfab_poly::{ExponentMode, Monomial, Poly, Ring, RingBuilder, VarId, VarKind};
use std::sync::Arc;

/// The polynomial model of a circuit: the RATO ring, the per-gate
/// polynomials, the word-definition polynomials, and the variable maps.
#[derive(Debug, Clone)]
pub struct CircuitModel {
    /// The polynomial ring under RATO (Quotient exponent mode).
    pub ring: Ring,
    /// Ring variable of each net.
    pub net_var: Vec<VarId>,
    /// The output word variable `Z`.
    pub z_var: VarId,
    /// The input word variables, in input-word declaration order.
    pub input_vars: Vec<VarId>,
    /// One polynomial `x + tail(x)` per gate, in gate order.
    pub gate_polys: Vec<Poly>,
    /// The output word-definition polynomial
    /// `f_w : z_0 + z_1·α + … + z_{k-1}·α^{k-1} + Z`.
    pub output_word_poly: Poly,
    /// The input word-definition polynomials
    /// `f_wi : a_0 + a_1·α + … + A`, one per input word.
    pub input_word_polys: Vec<Poly>,
}

impl CircuitModel {
    /// Builds the model from a validated netlist.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Netlist`] if validation fails;
    /// * [`CoreError::WidthMismatch`] if any word is wider than `k`
    ///   (narrower output words are allowed and zero-extend).
    pub fn build(nl: &Netlist, ctx: &Arc<GfContext>) -> Result<Self, CoreError> {
        Self::build_budgeted(nl, ctx, &gfab_field::budget::Budget::unlimited())
    }

    /// [`build`](CircuitModel::build) under a cooperative budget, polled
    /// every few thousand gates while the gate polynomials are
    /// constructed — million-gate netlists spend whole seconds here, long
    /// enough that a deadline must be able to interrupt the build.
    ///
    /// # Errors
    ///
    /// As [`build`](CircuitModel::build), plus
    /// [`CoreError::BudgetExhausted`] when the budget trips mid-build.
    pub fn build_budgeted(
        nl: &Netlist,
        ctx: &Arc<GfContext>,
        budget: &gfab_field::budget::Budget,
    ) -> Result<Self, CoreError> {
        nl.validate()?;
        let k = ctx.k();
        for w in nl.input_words().iter().chain([nl.output_word()]) {
            if w.width() > k {
                return Err(CoreError::WidthMismatch {
                    k,
                    word: w.name.clone(),
                    width: w.width(),
                });
            }
        }

        // --- Variable ordering (RATO) ---------------------------------
        // 1. Gate-output nets by ascending reverse-topological level, with
        //    output-word bits pulled to the front of their level in bit
        //    order ({z0 > z1} in Example 5.1).
        let levels = gfab_netlist::topo::reverse_topological_levels(nl)
            .expect("validated netlist is acyclic");
        // Precomputed per-net output-bit position: the sort below compares
        // O(n log n) keys, and scanning the k-bit output word per
        // comparison is a measurable fixed cost at k = 571.
        let mut out_bit_pos = vec![u32::MAX; nl.num_nets()];
        for (p, &b) in nl.output_word().bits.iter().enumerate() {
            out_bit_pos[b.index()] = p as u32;
        }
        let mut internal: Vec<NetId> = nl
            .gates()
            .iter()
            .map(|g| g.output)
            .filter(|&n| !nl.is_primary_input(n))
            .collect();
        internal.sort_by_key(|&n| (levels[n.index()], out_bit_pos[n.index()], n.0));

        // 2. Primary input bits, word by word, LSB (a_0) first.
        // 3. Z, then the input words.
        let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
        let mut net_var: Vec<Option<VarId>> = vec![None; nl.num_nets()];
        let mut used = std::collections::HashMap::new();
        for &n in &internal {
            let name = unique_var_name(&mut used, nl.net_name(n));
            net_var[n.index()] = Some(rb.add_var(name, VarKind::Bit));
        }
        for w in nl.input_words() {
            for &b in &w.bits {
                let name = unique_var_name(&mut used, nl.net_name(b));
                net_var[b.index()] = Some(rb.add_var(name, VarKind::Bit));
            }
        }
        let z_var = rb.add_var(nl.output_word().name.clone(), VarKind::Word);
        let input_vars: Vec<VarId> = nl
            .input_words()
            .iter()
            .map(|w| rb.add_var(w.name.clone(), VarKind::Word))
            .collect();
        let ring = rb.build();
        let net_var: Vec<VarId> = net_var
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.unwrap_or_else(|| {
                    // Nets that are neither gate outputs nor primary inputs
                    // are unused (validation guarantees this); park them on
                    // Z's id — they never occur in any polynomial.
                    debug_assert!(
                        nl.driver_of(NetId(i as u32)).is_none(),
                        "driven net must have a variable"
                    );
                    z_var
                })
            })
            .collect();

        // --- Gate polynomials ------------------------------------------
        let one = ctx.one();
        let mut gate_polys: Vec<Poly> = Vec::with_capacity(nl.num_gates());
        for (i, g) in nl.gates().iter().enumerate() {
            if i % 4096 == 0 {
                budget.check().map_err(|e| CoreError::BudgetExhausted {
                    phase: gfab_telemetry::Phase::ModelBuild,
                    block: None,
                    reason: e.reason,
                })?;
            }
            gate_polys.push(gate_polynomial(&ring, ctx, g, &|n: NetId| {
                net_var[n.index()]
            }));
        }

        // --- Word-definition polynomials (Eqn. 1) ----------------------
        let word_poly = |bits: &[NetId], word: VarId| -> Poly {
            let mut terms: Vec<(Monomial, gfab_field::Gf)> = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| (Monomial::var(net_var[b.index()]), ctx.alpha_pow(i as u64)))
                .collect();
            terms.push((Monomial::var(word), one.clone()));
            Poly::from_terms(terms)
        };
        let output_word_poly = word_poly(&nl.output_word().bits, z_var);
        let input_word_polys: Vec<Poly> = nl
            .input_words()
            .iter()
            .zip(&input_vars)
            .map(|(w, &v)| word_poly(&w.bits, v))
            .collect();

        Ok(CircuitModel {
            ring,
            net_var,
            z_var,
            input_vars,
            gate_polys,
            output_word_poly,
            input_word_polys,
        })
    }

    /// All circuit polynomials `F = {f_1, …, f_s}`: gates plus word
    /// definitions (the generators of the circuit ideal `J`).
    pub fn all_polys(&self) -> Vec<&Poly> {
        self.gate_polys
            .iter()
            .chain([&self.output_word_poly])
            .chain(self.input_word_polys.iter())
            .collect()
    }

    /// The divisor set used by the guided extraction: every polynomial
    /// **except** the output word definition (which is the dividend side of
    /// the single surviving critical pair).
    pub fn divisors(&self) -> Vec<&Poly> {
        self.gate_polys
            .iter()
            .chain(self.input_word_polys.iter())
            .collect()
    }
}

/// Produces a ring-unique variable name from a net name: net names are
/// not guaranteed unique (e.g. after netlist rebuilding passes), but ring
/// variable names must be.
pub(crate) fn unique_var_name(
    used: &mut std::collections::HashMap<String, u32>,
    base: &str,
) -> String {
    match used.entry(base.to_string()) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(0);
            base.to_string()
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let c = e.get_mut();
            *c += 1;
            format!("{base}@{c}")
        }
    }
}

/// Multiplies single-variable monomials (gate inputs). In Quotient mode a
/// gate fed twice from the same net yields `x·x = x` automatically.
fn product(ring: &Ring, ms: &[Monomial]) -> Monomial {
    let mut acc = Monomial::one();
    for m in ms {
        acc = acc.mul(m, ring).expect("bit exponents cannot overflow");
    }
    acc
}

/// The polynomial model of one gate (Section 4 of the paper): output
/// variable plus the tail implementing the Boolean operator over
/// `F_2 ⊂ F_{2^k}`. Shared between the abstraction model and the
/// ideal-membership baseline (which uses a different variable order).
pub(crate) fn gate_polynomial(
    ring: &Ring,
    ctx: &GfContext,
    g: &gfab_netlist::Gate,
    net_var: &dyn Fn(NetId) -> VarId,
) -> Poly {
    let one = ctx.one();
    let out = Monomial::var(net_var(g.output));
    let ins: Vec<Monomial> = g
        .inputs
        .iter()
        .map(|&i| Monomial::var(net_var(i)))
        .collect();
    let mut terms = vec![(out, one.clone())];
    match g.kind {
        GateKind::And => {
            terms.push((product(ring, &ins), one.clone()));
        }
        GateKind::Xor => {
            terms.push((ins[0].clone(), one.clone()));
            terms.push((ins[1].clone(), one.clone()));
        }
        GateKind::Or => {
            terms.push((ins[0].clone(), one.clone()));
            terms.push((ins[1].clone(), one.clone()));
            terms.push((product(ring, &ins), one.clone()));
        }
        GateKind::Xnor => {
            terms.push((ins[0].clone(), one.clone()));
            terms.push((ins[1].clone(), one.clone()));
            terms.push((Monomial::one(), one.clone()));
        }
        GateKind::Nand => {
            terms.push((product(ring, &ins), one.clone()));
            terms.push((Monomial::one(), one.clone()));
        }
        GateKind::Nor => {
            terms.push((ins[0].clone(), one.clone()));
            terms.push((ins[1].clone(), one.clone()));
            terms.push((product(ring, &ins), one.clone()));
            terms.push((Monomial::one(), one.clone()));
        }
        GateKind::Not => {
            terms.push((ins[0].clone(), one.clone()));
            terms.push((Monomial::one(), one.clone()));
        }
        GateKind::Buf => {
            terms.push((ins[0].clone(), one.clone()));
        }
        GateKind::Const0 => {}
        GateKind::Const1 => {
            terms.push((Monomial::one(), one.clone()));
        }
    }
    Poly::from_terms(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::Gf2Poly;

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn fig2_model_has_expected_shape() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let nl = fig2();
        let m = CircuitModel::build(&nl, &ctx).unwrap();
        // 7 internal nets + 4 PI bits + Z + A + B = 14 variables.
        assert_eq!(m.ring.num_vars(), 14);
        assert_eq!(m.gate_polys.len(), 7);
        assert_eq!(m.input_word_polys.len(), 2);
        // z0 is the greatest variable; Z ranks above A and B.
        assert_eq!(m.ring.var_info(VarId(0)).name, "z0");
        assert!(m.z_var < m.input_vars[0]);
        assert!(m.input_vars[0] < m.input_vars[1]);
    }

    #[test]
    fn gate_polys_lead_with_their_output() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let nl = fig2();
        let m = CircuitModel::build(&nl, &ctx).unwrap();
        for (g, p) in nl.gates().iter().zip(&m.gate_polys) {
            let lm = p.leading_monomial().expect("gate polys are non-zero");
            assert_eq!(lm, &Monomial::var(m.net_var[g.output.index()]));
        }
    }

    #[test]
    fn word_polys_lead_with_bit0() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let nl = fig2();
        let m = CircuitModel::build(&nl, &ctx).unwrap();
        // f_w leads with z0.
        let lm = m.output_word_poly.leading_monomial().unwrap();
        assert_eq!(m.ring.var_info(lm.leading_var().unwrap()).name, "z0");
        // f_wA leads with a0, f_wB with b0.
        for (wp, want) in m.input_word_polys.iter().zip(["a0", "b0"]) {
            let lv = wp.leading_monomial().unwrap().leading_var().unwrap();
            assert_eq!(m.ring.var_info(lv).name, want);
        }
    }

    #[test]
    fn gate_polynomials_vanish_on_gate_behaviour() {
        // For every gate kind, the polynomial must vanish exactly on the
        // gate's truth table (z = f(a, b) ⇒ poly(z, a, b) = 0).
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        for kind in GateKind::ALL {
            let mut nl = Netlist::new("g");
            let arity = kind.arity();
            let a = nl.add_input_word("A", arity.max(1));
            let ins: Vec<NetId> = a.iter().copied().take(arity).collect();
            let z = nl.add_gate(kind, &ins);
            nl.set_output_word("Z", vec![z]);
            let m = CircuitModel::build(&nl, &ctx).unwrap();
            let p = &m.gate_polys[0];
            // Enumerate all input combinations.
            for bits in 0u32..(1 << arity.max(1)) {
                let in_vals: Vec<bool> = (0..arity).map(|i| (bits >> i) & 1 == 1).collect();
                let out = kind.eval(&in_vals);
                // Assignment for every ring variable.
                let mut assign = vec![ctx.zero(); m.ring.num_vars()];
                let to_gf = |b: bool| if b { ctx.one() } else { ctx.zero() };
                assign[m.net_var[z.index()].index()] = to_gf(out);
                for (i, &inet) in ins.iter().enumerate() {
                    assign[m.net_var[inet.index()].index()] = to_gf(in_vals[i]);
                }
                assert!(
                    p.eval(&m.ring, &assign).is_zero(),
                    "{kind} polynomial must vanish on its truth table"
                );
                // And must NOT vanish when the output is flipped.
                assign[m.net_var[z.index()].index()] = to_gf(!out);
                assert!(
                    !p.eval(&m.ring, &assign).is_zero(),
                    "{kind} polynomial must reject wrong outputs"
                );
            }
        }
    }

    #[test]
    fn oversized_word_rejected() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut nl = Netlist::new("wide");
        let a = nl.add_input_word("A", 3); // wider than k = 2
        let z = nl.not(a[0]);
        nl.set_output_word("Z", vec![z]);
        assert!(matches!(
            CircuitModel::build(&nl, &ctx),
            Err(CoreError::WidthMismatch { .. })
        ));
    }
}
