//! Error type for the abstraction engine.

use gfab_netlist::NetlistError;
use gfab_poly::PolyError;
use std::fmt;

/// Errors produced by the word-level abstraction and equivalence engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The netlist failed structural validation.
    Netlist(NetlistError),
    /// Polynomial arithmetic failed (exponent overflow, vanishing
    /// polynomial unavailable for this field size).
    Poly(PolyError),
    /// The circuit's output word width does not match the field degree `k`.
    WidthMismatch {
        /// The field degree.
        k: usize,
        /// The offending word name.
        word: String,
        /// Its actual width.
        width: usize,
    },
    /// Case-2 canonical completion was requested but the Gröbner basis
    /// computation hit its resource limits.
    CompletionLimit(String),
    /// The Gröbner basis unexpectedly lacked a `Z + G(A)` polynomial —
    /// this contradicts the Abstraction Theorem and indicates an internal
    /// bug, so it is surfaced loudly rather than silently.
    MissingAbstractionPolynomial,
    /// Two designs cannot be compared (different input signatures).
    SignatureMismatch(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Poly(e) => write!(f, "polynomial error: {e}"),
            CoreError::WidthMismatch { k, word, width } => {
                write!(f, "word {word} has width {width} but the field is F_2^{k}")
            }
            CoreError::CompletionLimit(msg) => {
                write!(f, "case-2 canonical completion gave up: {msg}")
            }
            CoreError::MissingAbstractionPolynomial => write!(
                f,
                "no Z + G(A) polynomial in the Groebner basis (internal error)"
            ),
            CoreError::SignatureMismatch(msg) => write!(f, "signature mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Netlist(e) => Some(e),
            CoreError::Poly(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<PolyError> for CoreError {
    fn from(e: PolyError) -> Self {
        CoreError::Poly(e)
    }
}
