//! Error type for the abstraction engine.

use gfab_field::budget::ExhaustedReason;
use gfab_netlist::NetlistError;
use gfab_poly::PolyError;
use gfab_telemetry::Phase;
use std::fmt;

/// Errors produced by the word-level abstraction and equivalence engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The netlist failed structural validation.
    Netlist(NetlistError),
    /// Polynomial arithmetic failed (exponent overflow, vanishing
    /// polynomial unavailable for this field size).
    Poly(PolyError),
    /// The circuit's output word width does not match the field degree `k`.
    WidthMismatch {
        /// The field degree.
        k: usize,
        /// The offending word name.
        word: String,
        /// Its actual width.
        width: usize,
    },
    /// Case-2 canonical completion was requested but the Gröbner basis
    /// computation hit its resource limits.
    CompletionLimit(String),
    /// The Gröbner basis unexpectedly lacked a `Z + G(A)` polynomial —
    /// this contradicts the Abstraction Theorem and indicates an internal
    /// bug, so it is surfaced loudly rather than silently.
    MissingAbstractionPolynomial,
    /// Two designs cannot be compared (different input signatures).
    SignatureMismatch(String),
    /// A cooperative resource budget ran out in a phase with no partial
    /// result worth keeping (model construction, hierarchical block
    /// extraction). Phases that *can* degrade gracefully report through
    /// `Extraction::TimedOut` / `Verdict::Unknown` instead.
    BudgetExhausted {
        /// The pipeline phase that was cut short — the same [`Phase`]
        /// vocabulary telemetry spans use, so errors, stats and traces
        /// all name phases identically.
        phase: Phase,
        /// The hierarchical block being extracted when the budget ran
        /// out, if the trip happened inside one.
        block: Option<String>,
        /// Which resource ran out.
        reason: ExhaustedReason,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Poly(e) => write!(f, "polynomial error: {e}"),
            CoreError::WidthMismatch { k, word, width } => {
                write!(f, "word {word} has width {width} but the field is F_2^{k}")
            }
            CoreError::CompletionLimit(msg) => {
                write!(f, "case-2 canonical completion gave up: {msg}")
            }
            CoreError::MissingAbstractionPolynomial => write!(
                f,
                "no Z + G(A) polynomial in the Groebner basis (internal error)"
            ),
            CoreError::SignatureMismatch(msg) => write!(f, "signature mismatch: {msg}"),
            CoreError::BudgetExhausted {
                phase,
                block,
                reason,
            } => match block {
                Some(b) => {
                    write!(f, "budget exhausted during {phase} (block {b}): {reason}")
                }
                None => write!(f, "budget exhausted during {phase}: {reason}"),
            },
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Netlist(e) => Some(e),
            CoreError::Poly(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<PolyError> for CoreError {
    fn from(e: PolyError) -> Self {
        match e {
            // Budget trips surface as a first-class outcome, not as an
            // opaque polynomial error: callers match on them to trigger
            // the SAT fallback ladder.
            PolyError::BudgetExceeded(b) => CoreError::BudgetExhausted {
                phase: Phase::Algebra,
                block: None,
                reason: b.reason,
            },
            e => CoreError::Poly(e),
        }
    }
}
