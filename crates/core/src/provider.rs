//! Pluggable flat-netlist extraction: the seam the batch engine's
//! artifact cache injects through.
//!
//! Every equivalence path in this crate — per-side extraction in the
//! flat check, per-block extraction in the hierarchical flow — funnels
//! its gate-level → word-level abstraction through one
//! [`ExtractProvider`] call. The default provider ([`DirectExtract`])
//! simply runs [`extract_word_polynomial_budgeted`]; the batch engine
//! substitutes a caching provider that answers repeated structures from
//! memory.
//!
//! # Determinism contract
//!
//! A provider must be *extensionally equal* to [`DirectExtract`]: for
//! any input it either returns exactly what a fresh
//! [`extract_word_polynomial_budgeted`] call would return (same
//! outcome, same stats), or an error a fresh call could produce.
//! Extraction itself is deterministic whenever no wall-clock budget
//! trips, so a cache that only stores completed, budget-clean results
//! and verifies keys byte-for-byte satisfies the contract — which is
//! what makes batch verdicts bit-identical to sequential ones at any
//! thread count.

use crate::error::CoreError;
use crate::extract::{extract_word_polynomial_budgeted, ExtractOptions, ExtractionResult};
use gfab_field::budget::Budget;
use gfab_field::GfContext;
use gfab_netlist::Netlist;
use std::sync::Arc;

/// A source of flat-netlist extraction results (see module docs).
pub trait ExtractProvider: Send + Sync {
    /// Extracts (or recalls) the word-level polynomial of `nl`.
    ///
    /// # Errors
    ///
    /// As [`extract_word_polynomial_budgeted`].
    fn extract(
        &self,
        nl: &Netlist,
        ctx: &Arc<GfContext>,
        options: &ExtractOptions,
        budget: &Budget,
    ) -> Result<ExtractionResult, CoreError>;
}

/// The default provider: every call runs the extraction pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectExtract;

impl ExtractProvider for DirectExtract {
    fn extract(
        &self,
        nl: &Netlist,
        ctx: &Arc<GfContext>,
        options: &ExtractOptions,
        budget: &Budget,
    ) -> Result<ExtractionResult, CoreError> {
        extract_word_polynomial_budgeted(nl, ctx, options, budget)
    }
}
