//! The guided word-level abstraction (Section 5 of the paper).
//!
//! Under RATO every circuit polynomial is `x + tail(x)` with a unique
//! leading variable, so all critical pairs but one are pruned by the
//! product criterion (Lemma 5.1). The surviving pair is
//! `(f_w, f_g)` — the output word definition and the driver of bit `z_0` —
//! and `Spoly(f_w, f_g)` is precisely the first step of dividing `f_w` by
//! `f_g`. The whole abstraction therefore collapses to one normal-form
//! computation:
//!
//! ```text
//! r = NF(f_w  modulo  {gate polynomials} ∪ {input word definitions} ∪ J_0)
//! ```
//!
//! with `J_0` applied eagerly through the Quotient exponent mode.
//!
//! * **Case 1** — `r` contains only word variables: `r = Z + G(A, B, …)`
//!   and `G` is the canonical polynomial (Theorem 4.2 / Corollary 4.1).
//! * **Case 2** — `r` still contains primary-input bits (typical for buggy
//!   circuits): complete with a reduced Gröbner basis of
//!   `{r, f_wi} ∪ J_0'` over the remaining variables, which must contain
//!   the unique `Z + G(A, B, …)`.

use crate::error::CoreError;
use crate::model::CircuitModel;
use crate::wordfn::WordFunction;
use gfab_field::budget::{Budget, BudgetSpec, ExhaustedReason};
use gfab_field::GfContext;
use gfab_netlist::Netlist;
use gfab_poly::buchberger::{reduced_groebner_basis_traced, GbLimits, GbOutcome};
use gfab_poly::reduce::Reducer;
use gfab_poly::vanishing::vanishing_ideal_all;
use gfab_poly::{ExponentMode, Monomial, Poly, PolyError, Ring, RingBuilder, VarId, VarKind};
use gfab_telemetry::{Counter, Hist, Phase, Telemetry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`extract_word_polynomial_with`].
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Attempt the Case-2 Gröbner-basis completion when the remainder
    /// retains primary-input bits. Requires `k ≤ 63` (the completion needs
    /// the word vanishing polynomial `X^(2^k) − X`).
    pub complete_case2: bool,
    /// Resource limits for the Case-2 completion.
    pub gb_limits: GbLimits,
    /// Worker threads for the parallel phases of the pipeline (hierarchical
    /// block extraction, spec/impl extraction in equivalence checking, and
    /// the sharded simulation sweep). `0` means "use all available
    /// parallelism". Results are bit-identical for every thread count.
    pub threads: usize,
    /// Per-query resource budget (wall-clock deadline and/or work-unit
    /// cap); the deadline is pinned when each query starts. Exhaustion is
    /// not an error: extraction degrades to [`Extraction::TimedOut`] and
    /// equivalence checking to an `Unknown` verdict (or the SAT fallback,
    /// when driven through the `Verifier` ladder).
    pub budget: BudgetSpec,
    /// Telemetry handle under which the extraction records its phase
    /// spans (model build, guided reduction, Case-2 completion, …).
    /// Disabled by default: the off path is a single branch, so tier-1
    /// timings and deterministic fingerprints are unchanged.
    pub telemetry: Telemetry,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            complete_case2: true,
            // The completion Gröbner basis grows with q = 2^k (the word
            // vanishing polynomials have degree q); beyond k ≈ 5 it can
            // take minutes. Budget it so buggy large circuits degrade to a
            // residual (which equivalence checking refutes by simulation)
            // instead of hanging.
            gb_limits: GbLimits {
                max_wall_ms: 15_000,
                ..GbLimits::default()
            },
            threads: 0,
            budget: BudgetSpec::none(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ExtractOptions {
    /// Returns a copy with the given worker-thread count (`0` = available
    /// parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with the given per-query resource budget.
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Returns a copy recording spans through the given telemetry handle
    /// (used to re-parent nested extractions under a caller's span).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The effective worker-thread count.
    pub fn effective_threads(&self) -> usize {
        gfab_netlist::sim::resolve_threads(self.threads)
    }
}

/// Effort statistics of one extraction.
#[derive(Debug, Clone, Default)]
pub struct ExtractionStats {
    /// Gates in the circuit.
    pub gates: usize,
    /// Variables in the RATO ring.
    pub ring_vars: usize,
    /// Leading-term cancellations during the guided reduction.
    pub reduction_steps: u64,
    /// Peak live terms in the working polynomial.
    pub peak_terms: usize,
    /// Coefficient cancellations during the guided reduction (terms that
    /// vanished when equal monomials merged to a zero coefficient).
    pub cancellations: u64,
    /// Terms in the remainder `r`.
    pub remainder_terms: usize,
    /// Whether the Case-2 completion ran.
    pub case2_completion: bool,
    /// Wall-clock time of the whole extraction.
    pub duration: Duration,
    /// Wall-clock time of building the polynomial model (RATO ring, gate
    /// polynomials, word definitions).
    pub model_time: Duration,
    /// Wall-clock time of the guided normal-form reduction.
    pub reduce_time: Duration,
    /// Wall-clock time of the Case-2 completion (zero when it did not run).
    pub case2_time: Duration,
    /// Set when a resource budget cut the extraction short: which phase
    /// was interrupted and which resource ran out.
    pub budget_exhausted: Option<String>,
}

/// The outcome of an extraction.
#[derive(Debug, Clone)]
pub enum Extraction {
    /// The canonical word-level polynomial was identified.
    Canonical(WordFunction),
    /// The remainder retains primary-input bits and no completion was
    /// performed (disabled, too large a field, or resource-limited — see
    /// the accompanying note).
    Residual {
        /// The remainder `r` over the model ring.
        remainder: Poly,
        /// Why no canonical form was produced.
        note: String,
    },
    /// The resource budget ran out mid-phase, before even a residual was
    /// available. A structured partial outcome, not an error: the stats
    /// carry the per-phase accounting up to the interruption.
    TimedOut {
        /// The phase that was interrupted (e.g. [`Phase::GuidedReduction`]).
        phase: Phase,
        /// Which resource ran out.
        reason: ExhaustedReason,
    },
}

/// An extraction outcome plus the model it was computed in.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The circuit's polynomial model (ring, gate polynomials, word maps).
    pub model: CircuitModel,
    /// Canonical polynomial or residual.
    pub outcome: Extraction,
    /// Effort statistics.
    pub stats: ExtractionStats,
}

impl ExtractionResult {
    /// The canonical word function, if one was identified.
    pub fn canonical(&self) -> Option<&WordFunction> {
        match &self.outcome {
            Extraction::Canonical(f) => Some(f),
            Extraction::Residual { .. } | Extraction::TimedOut { .. } => None,
        }
    }

    /// The Case-2 residual, if no canonical form was produced.
    pub fn residual(&self) -> Option<&Poly> {
        match &self.outcome {
            Extraction::Residual { remainder, .. } => Some(remainder),
            Extraction::Canonical(_) | Extraction::TimedOut { .. } => None,
        }
    }
}

/// Extracts the canonical word-level polynomial `Z = F(A, B, …)` from a
/// gate-level netlist with default options.
///
/// # Errors
///
/// See [`extract_word_polynomial_with`].
pub fn extract_word_polynomial(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
) -> Result<ExtractionResult, CoreError> {
    extract_word_polynomial_with(nl, ctx, &ExtractOptions::default())
}

/// Extracts the canonical word-level polynomial with explicit options.
///
/// # Errors
///
/// * [`CoreError::Netlist`] / [`CoreError::WidthMismatch`] from model
///   construction;
/// * [`CoreError::Poly`] on exponent overflow (pathological inputs).
///
/// A Case-2 circuit whose completion is disabled or resource-limited is
/// **not** an error: the result carries the residual.
pub fn extract_word_polynomial_with(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
) -> Result<ExtractionResult, CoreError> {
    extract_word_polynomial_budgeted(nl, ctx, options, &options.budget.start())
}

/// [`extract_word_polynomial_with`] under an already-running cooperative
/// [`Budget`] — the entry point used when one budget spans several
/// extractions (both sides of an equivalence query, all blocks of a
/// hierarchical design). The budget is polled in the division hot loop
/// and throughout the Case-2 completion; exhaustion mid-reduction yields
/// [`Extraction::TimedOut`], exhaustion during Case 2 a residual.
///
/// # Errors
///
/// * [`CoreError::Netlist`] / [`CoreError::WidthMismatch`] from model
///   construction;
/// * [`CoreError::BudgetExhausted`] when the budget is already spent
///   before the model exists (no partial result to return);
/// * [`CoreError::Poly`] on exponent overflow (pathological inputs).
pub fn extract_word_polynomial_budgeted(
    nl: &Netlist,
    ctx: &Arc<GfContext>,
    options: &ExtractOptions,
    budget: &Budget,
) -> Result<ExtractionResult, CoreError> {
    let start = Instant::now();
    let tele = &options.telemetry;
    // Phase spans are the single timing source: each stats duration below
    // is the value returned by `Span::finish`, not a second clock.
    let mut model_span = tele.span(Phase::ModelBuild);
    let model = CircuitModel::build_budgeted(nl, ctx, budget)?;
    model_span.counter(Counter::Gates, nl.num_gates() as u64);
    let mut stats = ExtractionStats {
        gates: nl.num_gates(),
        ring_vars: model.ring.num_vars(),
        model_time: model_span.finish(),
        ..ExtractionStats::default()
    };

    // The guided reduction: one normal form of f_w against F ∪ J_0.
    let mut reduce_span = tele.span(Phase::GuidedReduction);
    let reducer = Reducer::new(&model.ring, model.divisors());
    let (r, rstats) = match reducer.normal_form_budgeted(&model.output_word_poly, budget) {
        Ok(ok) => ok,
        Err(PolyError::BudgetExceeded(e)) => {
            // Graceful degradation: the interruption is a structured
            // outcome carrying per-phase accounting, not an error.
            stats.reduce_time = reduce_span.finish();
            stats.budget_exhausted = Some(format!("{}: {}", Phase::GuidedReduction, e.reason));
            stats.duration = start.elapsed();
            return Ok(ExtractionResult {
                model,
                outcome: Extraction::TimedOut {
                    phase: Phase::GuidedReduction,
                    reason: e.reason,
                },
                stats,
            });
        }
        Err(e) => return Err(e.into()),
    };
    reduce_span.counter(Counter::ReductionSteps, rstats.steps);
    reduce_span.counter(Counter::PeakTerms, rstats.peak_terms as u64);
    reduce_span.counter(Counter::Cancellations, rstats.cancellations);
    reduce_span.counter(Counter::BudgetPolls, rstats.polls);
    reduce_span.counter(Counter::RemainderTerms, r.num_terms() as u64);
    reduce_span.counter(Counter::CoeffMuls, rstats.kernel.coeff_muls);
    reduce_span.counter(Counter::CoeffSquares, rstats.kernel.coeff_squares);
    reduce_span.counter(Counter::ReductionFolds, rstats.kernel.reduction_folds);
    reduce_span.counter(Counter::CoeffsInline, rstats.kernel.inline_results);
    reduce_span.counter(Counter::CoeffsHeap, rstats.kernel.heap_results);
    reduce_span.observe(Hist::DivisionChainLen, rstats.steps);
    reduce_span.observe_hist(Hist::ReductionPolySize, &rstats.size_hist);
    stats.reduce_time = reduce_span.finish();
    stats.reduction_steps = rstats.steps;
    stats.peak_terms = rstats.peak_terms;
    stats.cancellations = rstats.cancellations;
    stats.remainder_terms = r.num_terms();

    let has_bits = r
        .variables()
        .iter()
        .any(|&v| model.ring.var_info(v).kind == VarKind::Bit);

    let outcome = if !has_bits {
        // Case 1: r = Z + G(A, B, …).
        Extraction::Canonical(canonical_from_remainder(&model, ctx, &r)?)
    } else if !options.complete_case2 {
        Extraction::Residual {
            remainder: r,
            note: "case-2 completion disabled".into(),
        }
    } else if ctx.order_u64().is_none() {
        Extraction::Residual {
            remainder: r,
            note: format!(
                "case-2 completion needs k <= 63 (k = {}): X^q - X is not representable",
                ctx.k()
            ),
        }
    } else {
        stats.case2_completion = true;
        let case2_span = tele.span(Phase::Case2Completion);
        let case2 = complete_case2(
            &model,
            ctx,
            &r,
            &options.gb_limits,
            budget,
            &case2_span.telemetry(),
        );
        stats.case2_time = case2_span.finish();
        match case2? {
            Case2Outcome::Canonical(f) => Extraction::Canonical(f),
            Case2Outcome::GaveUp(note) => {
                if let Some(reason) = budget.exhausted() {
                    stats.budget_exhausted = Some(format!("{}: {reason}", Phase::Case2Completion));
                }
                Extraction::Residual { remainder: r, note }
            }
        }
    };

    stats.duration = start.elapsed();
    Ok(ExtractionResult {
        model,
        outcome,
        stats,
    })
}

/// Turns a Case-1 remainder `r = Z + G(A, B, …)` into a [`WordFunction`].
fn canonical_from_remainder(
    model: &CircuitModel,
    ctx: &Arc<GfContext>,
    r: &Poly,
) -> Result<WordFunction, CoreError> {
    // G = r + Z (characteristic 2).
    let z_poly = Poly::from_terms(vec![(Monomial::var(model.z_var), ctx.one())]);
    let g = r.add(&z_poly);
    if g.contains_var(model.z_var) {
        // Z had a non-unit coefficient or appeared non-linearly — cannot
        // happen for a well-formed model.
        return Err(CoreError::MissingAbstractionPolynomial);
    }
    // Relabel input word variables to 0..n (order preserving: input_vars is
    // ascending by construction).
    let relabeled = g.relabel(|v| {
        let pos = model
            .input_vars
            .iter()
            .position(|&w| w == v)
            .expect("case-1 remainder contains only input word variables");
        VarId(pos as u32)
    });
    let names = model
        .input_vars
        .iter()
        .map(|&v| model.ring.var_info(v).name.clone())
        .collect();
    Ok(WordFunction::new(ctx.clone(), names, relabeled))
}

enum Case2Outcome {
    Canonical(WordFunction),
    GaveUp(String),
}

/// Case 2 of Section 5: compute the reduced Gröbner basis of
/// `{r, f_wi} ∪ J_0'` over the remaining variables (primary-input bits,
/// `Z`, input words) and pick out the unique `Z + G(A, B, …)`.
fn complete_case2(
    model: &CircuitModel,
    ctx: &Arc<GfContext>,
    r: &Poly,
    limits: &GbLimits,
    budget: &Budget,
    tele: &Telemetry,
) -> Result<Case2Outcome, CoreError> {
    // The completion ring is the tail of the model ring: every variable
    // from the first primary-input bit onward, in the same order, but in
    // Plain mode (the vanishing polynomials must be explicit generators).
    let first_pi = model
        .input_word_polys
        .iter()
        .filter_map(|p| p.leading_monomial().and_then(|m| m.leading_var()))
        .min()
        .expect("at least one input word");
    let offset = first_pi.index() as u32;
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
    for (v, info) in model.ring.vars() {
        if v.0 >= offset {
            rb.add_var(info.name.clone(), info.kind);
        }
    }
    let cring = rb.build();
    let down = |v: VarId| VarId(v.0 - offset);

    let mut generators: Vec<Poly> = Vec::new();
    generators.push(r.relabel(down));
    for p in &model.input_word_polys {
        generators.push(p.relabel(down));
    }
    generators.extend(vanishing_ideal_all(&cring)?);

    match reduced_groebner_basis_traced(&cring, &generators, limits, budget, tele)? {
        GbOutcome::LimitExceeded { reason, .. } => Ok(Case2Outcome::GaveUp(reason)),
        GbOutcome::Complete { basis, .. } => {
            let z = down(model.z_var);
            let hit = basis
                .iter()
                .find(|p| p.leading_monomial() == Some(&Monomial::var(z)));
            let Some(p) = hit else {
                return Err(CoreError::MissingAbstractionPolynomial);
            };
            // G = p + Z; must contain only input word variables.
            let g = p.add(&Poly::from_terms(vec![(Monomial::var(z), ctx.one())]));
            let word_ok = g
                .variables()
                .iter()
                .all(|&v| cring.var_info(v).kind == VarKind::Word && v != z);
            if !word_ok {
                return Err(CoreError::MissingAbstractionPolynomial);
            }
            // Move into a Quotient-mode word ring (exponents are already
            // reduced: the GB ran with explicit vanishing polynomials).
            let input_vars_c: Vec<VarId> = model.input_vars.iter().map(|&v| down(v)).collect();
            let relabeled = g.relabel(|v| {
                let pos = input_vars_c
                    .iter()
                    .position(|&w| w == v)
                    .expect("only input word variables remain");
                VarId(pos as u32)
            });
            let names = model
                .input_vars
                .iter()
                .map(|&v| model.ring.var_info(v).name.clone())
                .collect();
            Ok(Case2Outcome::Canonical(WordFunction::new(
                ctx.clone(),
                names,
                relabeled,
            )))
        }
    }
}

/// Reduces an arbitrary polynomial to its canonical exponent form in a
/// Quotient-mode ring (helper shared with the interpolation oracle).
pub(crate) fn quotient_normalize(ring: &Ring, p: &Poly) -> Poly {
    Poly::from_terms(
        p.terms()
            .iter()
            .map(|(m, c)| {
                let reduced = Monomial::from_factors(
                    m.factors()
                        .iter()
                        .map(|&(v, e)| {
                            let e = match ring.var_info(v).kind {
                                VarKind::Bit => e.min(1),
                                VarKind::Word => ring.reduce_word_exponent(e),
                            };
                            (v, e)
                        })
                        .collect(),
                );
                (reduced, c.clone())
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::Gf2Poly;
    use gfab_netlist::{GateKind, NetId};

    fn f4() -> Arc<GfContext> {
        GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
    }

    /// The Fig. 2 multiplier.
    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn example_5_1_correct_circuit_gives_z_plus_ab() {
        // Example 5.1 (correct circuit): r = Z + A·B, i.e. F = A·B.
        let ctx = f4();
        let result = extract_word_polynomial(&fig2(), &ctx).unwrap();
        let f = result.canonical().expect("Case 1");
        assert_eq!(format!("{}", f.display()), "A*B");
        assert!(!result.stats.case2_completion);
    }

    #[test]
    fn example_5_1_buggy_circuit_matches_paper() {
        // Example 5.1 (bug injected): replace f8 : r0 = s1 + s2 by
        // r0 = s0 + s2. The paper derives the buggy canonical polynomial
        //   Z + α·A²B² + A²B + (α+1)·A·B² + (α+1)·A·B.
        let ctx = f4();
        let mut nl = fig2();
        let r0_gate = gfab_netlist::GateId(4);
        let s0_net = nl.gate(gfab_netlist::GateId(0)).output;
        gfab_netlist::mutate::swap_wire(&mut nl, r0_gate, 0, s0_net);

        let result = extract_word_polynomial(&nl, &ctx).unwrap();
        assert!(result.stats.case2_completion, "bug forces Case 2");
        let f = result.canonical().expect("completion succeeds on F_4");

        // Build the paper's polynomial: α·A²B² + A²B + (α+1)·AB² + (α+1)·AB.
        let alpha = ctx.alpha();
        let a1 = ctx.add(&alpha, &ctx.one());
        let (a, b) = (VarId(0), VarId(1));
        let expected = Poly::from_terms(vec![
            (Monomial::from_factors(vec![(a, 2), (b, 2)]), alpha.clone()),
            (Monomial::from_factors(vec![(a, 2), (b, 1)]), ctx.one()),
            (Monomial::from_factors(vec![(a, 1), (b, 2)]), a1.clone()),
            (Monomial::from_factors(vec![(a, 1), (b, 1)]), a1),
        ]);
        assert_eq!(
            f.poly(),
            &expected,
            "got {} (paper Example 5.1)",
            f.display()
        );
    }

    #[test]
    fn canonical_function_agrees_with_simulation_exhaustively() {
        let ctx = f4();
        let nl = fig2();
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let sim = gfab_netlist::sim::simulate_word(&nl, &ctx, &[a.clone(), b.clone()]);
                assert_eq!(f.eval(&[a.clone(), b.clone()]), sim);
            }
        }
    }

    #[test]
    fn buggy_case2_function_agrees_with_simulation() {
        let ctx = f4();
        for seed in 0..8 {
            let (bad, what) = gfab_netlist::mutate::inject_random_bug(&fig2(), seed);
            let result = extract_word_polynomial(&bad, &ctx).unwrap();
            let f = result
                .canonical()
                .unwrap_or_else(|| panic!("completion must succeed on F_4 ({what})"));
            for a in ctx.iter_elements() {
                for b in ctx.iter_elements() {
                    let sim = gfab_netlist::sim::simulate_word(&bad, &ctx, &[a.clone(), b.clone()]);
                    assert_eq!(f.eval(&[a.clone(), b.clone()]), sim, "seed {seed}: {what}");
                }
            }
        }
    }

    #[test]
    fn residual_mode_reports_case2_without_completing() {
        let ctx = f4();
        let mut nl = fig2();
        gfab_netlist::mutate::swap_gate_kind(&mut nl, gfab_netlist::GateId(4), GateKind::Or);
        let opts = ExtractOptions {
            complete_case2: false,
            ..ExtractOptions::default()
        };
        let result = extract_word_polynomial_with(&nl, &ctx, &opts).unwrap();
        let res = result.residual().expect("residual kept");
        assert!(res.num_terms() > 0);
        assert!(matches!(
            &result.outcome,
            Extraction::Residual { note, .. } if note.contains("disabled")
        ));
    }

    #[test]
    fn single_input_circuits_work() {
        // Z = NOT applied bitwise: Z = A + (1 + α) … actually per-bit NOT
        // is Z = A + (1 + α + … + α^{k-1}).
        let ctx = f4();
        let mut nl = Netlist::new("inv");
        let a = nl.add_input_word("A", 2);
        let z0 = nl.not(a[0]);
        let z1 = nl.not(a[1]);
        nl.set_output_word("Z", vec![z0, z1]);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        let ones = ctx.add(&ctx.one(), &ctx.alpha());
        for a in ctx.iter_elements() {
            assert_eq!(f.eval(std::slice::from_ref(&a)), ctx.add(&a, &ones));
        }
    }

    #[test]
    fn constant_circuit_extracts_constant() {
        let ctx = f4();
        let mut nl = Netlist::new("const");
        nl.add_input_word("A", 2);
        let c0 = nl.constant(true);
        let c1 = nl.constant(false);
        nl.set_output_word("Z", vec![c0, c1]);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        assert_eq!(f.num_terms(), 1);
        for a in ctx.iter_elements() {
            assert_eq!(f.eval(std::slice::from_ref(&a)), ctx.one());
        }
    }

    #[test]
    fn output_bound_directly_to_input_net() {
        // Identity circuit: output word IS the input nets (plus one buffer
        // to exercise mixed binding).
        let ctx = f4();
        let mut nl = Netlist::new("id");
        let a = nl.add_input_word("A", 2);
        let z1 = nl.add_gate(GateKind::Buf, &[a[1]]);
        nl.set_output_word("Z", vec![a[0], z1]);
        let f = extract_word_polynomial(&nl, &ctx)
            .unwrap()
            .canonical()
            .cloned()
            .unwrap();
        for a in ctx.iter_elements() {
            assert_eq!(f.eval(std::slice::from_ref(&a)), a);
        }
        let _ = NetId(0);
    }
}
