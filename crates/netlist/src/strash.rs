//! Structural hashing (strash): merges structurally identical gates, the
//! classic AIG-style redundancy removal used by equivalence checkers
//! ("able to identify internal structural equivalences between the Spec
//! and Impl circuits", Section 2 of the paper).
//!
//! Two gates merge when they have the same kind and the same input nets
//! (up to commutativity). Applied before abstraction or SAT it shrinks
//! generated netlists whose XOR/AND trees share sub-terms.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use crate::topo::topological_gates;
use std::collections::HashMap;

/// Statistics of one strash run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrashStats {
    /// Gates merged into an earlier structural twin.
    pub gates_merged: usize,
}

/// Runs structural hashing, returning the reduced netlist and statistics.
///
/// The result computes the same output word function; primary inputs and
/// word bindings are preserved. Output bits whose driver merged away are
/// re-bound to the surviving twin's net.
///
/// # Panics
///
/// Panics if the netlist is cyclic or has no output word.
pub fn structural_hash(nl: &Netlist) -> (Netlist, StrashStats) {
    let order = topological_gates(nl).expect("netlist must be acyclic");
    let mut stats = StrashStats::default();

    let mut out = Netlist::new(nl.name().to_string());
    // Map from source net to rebuilt net.
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.num_nets()];
    for word in nl.input_words() {
        let bits: Vec<NetId> = word
            .bits
            .iter()
            .map(|&b| {
                let nb = out.add_named_net(nl.net_name(b).to_string());
                net_map[b.index()] = Some(nb);
                nb
            })
            .collect();
        out.add_input_word_from_nets(word.name.clone(), bits);
    }

    // Structural key -> surviving output net (in the rebuilt netlist).
    let mut table: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();

    for g in order {
        let gate = nl.gate(g);
        let mut ins: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|i| net_map[i.index()].expect("inputs visited in topological order"))
            .collect();
        if is_commutative(gate.kind) {
            ins.sort();
        }
        let key = (gate.kind, ins.clone());
        match table.get(&key) {
            Some(&existing) => {
                stats.gates_merged += 1;
                net_map[gate.output.index()] = Some(existing);
            }
            None => {
                let new_out = out.add_named_net(nl.net_name(gate.output).to_string());
                out.push_gate(gate.kind, ins, new_out);
                table.insert(key, new_out);
                net_map[gate.output.index()] = Some(new_out);
            }
        }
    }

    let zbits: Vec<NetId> = nl
        .output_word()
        .bits
        .iter()
        .map(|&b| net_map[b.index()].expect("output bits are driven or inputs"))
        .collect();
    out.set_output_word(nl.output_word().name.clone(), zbits);
    (out, stats)
}

fn is_commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Nand
            | GateKind::Nor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_circuit, RandomCircuitSpec};
    use crate::sim::random_equivalence_check;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::{GfContext, Rng};

    #[test]
    fn merges_identical_gates() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input_word("A", 2);
        let t1 = nl.and(a[0], a[1]);
        let t2 = nl.and(a[0], a[1]); // structural twin
        let z = nl.xor(t1, t2); // x ⊕ x, but strash only merges, not folds
        nl.set_output_word("Z", vec![z]);
        let (hashed, stats) = structural_hash(&nl);
        hashed.validate().unwrap();
        assert_eq!(stats.gates_merged, 1);
        assert_eq!(hashed.num_gates(), 2);
    }

    #[test]
    fn commutativity_is_canonicalized() {
        let mut nl = Netlist::new("comm");
        let a = nl.add_input_word("A", 2);
        let t1 = nl.and(a[0], a[1]);
        let t2 = nl.and(a[1], a[0]); // same gate, swapped inputs
        let z = nl.xor(t1, t2);
        nl.set_output_word("Z", vec![z]);
        let (hashed, stats) = structural_hash(&nl);
        assert_eq!(stats.gates_merged, 1);
        assert_eq!(hashed.num_gates(), 2);
    }

    #[test]
    fn cascaded_twins_merge_transitively() {
        let mut nl = Netlist::new("cascade");
        let a = nl.add_input_word("A", 2);
        let t1 = nl.and(a[0], a[1]);
        let t2 = nl.and(a[1], a[0]);
        let u1 = nl.not(t1);
        let u2 = nl.not(t2); // merges only because t1/t2 merged first
        let z = nl.xor(u1, u2);
        nl.set_output_word("Z", vec![z]);
        let (hashed, stats) = structural_hash(&nl);
        assert_eq!(stats.gates_merged, 2);
        assert_eq!(hashed.num_gates(), 3);
    }

    #[test]
    fn preserves_function_on_random_circuits() {
        let ctx = GfContext::shared(irreducible_polynomial(3).unwrap()).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        for seed in 0..30 {
            let nl = random_circuit(&RandomCircuitSpec {
                num_input_words: 2,
                width: 3,
                num_gates: 40,
                seed,
            });
            let (hashed, _) = structural_hash(&nl);
            hashed.validate().unwrap();
            assert!(hashed.num_gates() <= nl.num_gates());
            random_equivalence_check(&nl, &hashed, &ctx, 32, &mut rng)
                .unwrap_or_else(|w| panic!("seed {seed}: differs at {w:?}"));
        }
    }

    #[test]
    fn output_bound_to_merged_gate_survives() {
        let mut nl = Netlist::new("obm");
        let a = nl.add_input_word("A", 2);
        let t1 = nl.xor(a[0], a[1]);
        let t2 = nl.xor(a[1], a[0]);
        nl.set_output_word("Z", vec![t1, t2]); // both bits alias post-strash
        let (hashed, stats) = structural_hash(&nl);
        assert_eq!(stats.gates_merged, 1);
        assert_eq!(hashed.output_word().bits[0], hashed.output_word().bits[1]);
    }
}
