//! Topological analyses: gate evaluation order and the reverse-topological
//! net ordering that underlies RATO (Definition 5.1 of the paper).

use crate::netlist::{GateId, NetId, Netlist};
use std::collections::VecDeque;

/// Gates in a topological (evaluation) order: every gate appears after the
/// drivers of all its inputs. Returns `None` if the gate graph is cyclic.
pub fn topological_gates(nl: &Netlist) -> Option<Vec<GateId>> {
    let n = nl.num_gates();
    // indegree[g] = number of inputs of g that are driven by another gate.
    let mut indegree = vec![0usize; n];
    // consumers[g] = gates that read g's output net.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, gate) in nl.gates().iter().enumerate() {
        for &inp in &gate.inputs {
            if let Some(drv) = nl.driver_of(inp) {
                indegree[gi] += 1;
                consumers[drv.index()].push(gi);
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&g| indegree[g] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(g) = queue.pop_front() {
        order.push(GateId(g as u32));
        for &c in &consumers[g] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push_back(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Reverse-topological level of every net: output-word bits have level 0
/// and each gate's inputs sit at least one level above (farther from) its
/// output. Nets not reaching any output get the maximum observed level + 1.
///
/// This is the "reverse topological traversal toward the primary inputs"
/// of Definition 5.1: a *smaller* level means the net comes *earlier* in the
/// reverse topological order and is therefore *greater* in RATO.
///
/// Returns `None` on a cyclic netlist.
pub fn reverse_topological_levels(nl: &Netlist) -> Option<Vec<u32>> {
    let order = topological_gates(nl)?;
    let mut level = vec![0u32; nl.num_nets()];
    // Walk gates in reverse topological order: when we see a gate, its
    // output level is final, and its inputs must be strictly above it.
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        let out_level = level[gate.output.index()];
        for &inp in &gate.inputs {
            let li = &mut level[inp.index()];
            *li = (*li).max(out_level + 1);
        }
    }
    Some(level)
}

/// The RATO net ordering: all gate-output nets sorted by ascending reverse
/// topological level (greatest variables first), with ties broken by net
/// id for determinism. Primary-input bits are **excluded** — the caller
/// appends them after the internal nets (word by word, LSB first), then the
/// word variables, exactly as in Example 5.1 of the paper:
///
/// `{z0 > z1} > {r0 > s0 > s3} > {s1 > s2} > {a0 > a1 > b0 > b1} > Z > A, B`
///
/// Returns `None` on a cyclic netlist.
pub fn rato_gate_output_order(nl: &Netlist) -> Option<Vec<NetId>> {
    let levels = reverse_topological_levels(nl)?;
    let mut nets: Vec<NetId> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|&n| !nl.is_primary_input(n))
        .collect();
    nets.sort_by_key(|n| (levels[n.index()], n.0));
    Some(nets)
}

/// Longest path length (in gates) from any primary input to any output —
/// the circuit's logic depth. Constant-only circuits have depth 0.
pub fn logic_depth(nl: &Netlist) -> Option<u32> {
    let order = topological_gates(nl)?;
    let mut depth = vec![0u32; nl.num_nets()];
    for &g in &order {
        let gate = nl.gate(g);
        let d = gate
            .inputs
            .iter()
            .map(|i| depth[i.index()])
            .max()
            .unwrap_or(0);
        depth[gate.output.index()] = d + 1;
    }
    nl.try_output_word()
        .map(|w| w.bits.iter().map(|b| depth[b.index()]).max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// The Fig. 2 multiplier (2-bit, over F_4).
    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let nl = fig2();
        let order = topological_gates(&nl).unwrap();
        assert_eq!(order.len(), nl.num_gates());
        let mut pos = vec![0usize; nl.num_gates()];
        for (i, g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        for (gi, gate) in nl.gates().iter().enumerate() {
            for &inp in &gate.inputs {
                if let Some(drv) = nl.driver_of(inp) {
                    assert!(pos[drv.index()] < pos[gi]);
                }
            }
        }
    }

    #[test]
    fn reverse_levels_zero_at_outputs() {
        let nl = fig2();
        let levels = reverse_topological_levels(&nl).unwrap();
        for &z in &nl.output_word().bits {
            assert_eq!(levels[z.index()], 0);
        }
        // s3 feeds both z0 and z1 (level-0 nets): level 1.
        // s1, s2 feed r0 (level 1): level 2.
        // PIs feed the AND row: at least level 2 + 1.
        for &pi in &nl.input_bits() {
            assert!(levels[pi.index()] >= 2);
        }
    }

    #[test]
    fn rato_order_matches_paper_example_5_1() {
        // Example 5.1: {z0 > z1} > {r0 > s0 > s3} > {s1 > s2} > PIs.
        // Levels here: z0=z1=0; r0=s0=s3=1; s1=s2=2.
        let nl = fig2();
        let order = rato_gate_output_order(&nl).unwrap();
        // The two output bits come first, z0 before z1.
        assert_eq!(nl.net_name(order[0]), "z0");
        assert_eq!(nl.net_name(order[1]), "z1");
        // Check the level structure (internal nets carry automatic names).
        let levels = reverse_topological_levels(&nl).unwrap();
        let ls: Vec<u32> = order.iter().map(|&n| levels[n.index()]).collect();
        assert!(ls.windows(2).all(|w| w[0] <= w[1]), "levels ascend: {ls:?}");
        assert_eq!(ls.iter().filter(|&&l| l == 0).count(), 2); // z0, z1
        assert_eq!(ls.iter().filter(|&&l| l == 1).count(), 3); // r0, s0, s3
        assert_eq!(ls.iter().filter(|&&l| l == 2).count(), 2); // s1, s2
    }

    #[test]
    fn cycle_detection() {
        let mut nl = Netlist::new("cyclic");
        let a = nl.add_input_word("A", 1);
        let fb = nl.add_net();
        let t = nl.xor(a[0], fb);
        nl.push_gate(GateKind::Buf, vec![t], fb);
        nl.set_output_word("Z", vec![t]);
        assert!(topological_gates(&nl).is_none());
        assert!(nl.validate().is_err());
    }

    #[test]
    fn logic_depth_of_fig2() {
        let nl = fig2();
        // Depth: AND (1) -> XOR r0 (2) -> XOR z1 (3).
        assert_eq!(logic_depth(&nl), Some(3));
    }
}
