//! Gate primitives.

use std::fmt;

/// The combinational gate library.
///
/// Two-input gates take exactly two inputs, `Not`/`Buf` exactly one,
/// constants none. This is the library the abstraction engine knows how to
/// model as polynomials over `F_{2^k}` (Section 4 of the paper):
///
/// | gate   | polynomial (output `z`, inputs `a`, `b`) |
/// |--------|------------------------------------------|
/// | AND    | `z + a·b`                                |
/// | OR     | `z + a + b + a·b`                        |
/// | XOR    | `z + a + b`                              |
/// | XNOR   | `z + a + b + 1`                          |
/// | NAND   | `z + a·b + 1`                            |
/// | NOR    | `z + a + b + a·b + 1`                    |
/// | NOT    | `z + a + 1`                              |
/// | BUF    | `z + a`                                  |
/// | CONST0 | `z`                                      |
/// | CONST1 | `z + 1`                                  |
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR (addition modulo 2).
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// Constant 0 driver.
    Const0,
    /// Constant 1 driver.
    Const1,
}

impl GateKind {
    /// The number of inputs this gate kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::And
            | GateKind::Or
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Nand
            | GateKind::Nor => 2,
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Const0 | GateKind::Const1 => 0,
        }
    }

    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "gate arity mismatch");
        match self {
            GateKind::And => inputs[0] & inputs[1],
            GateKind::Or => inputs[0] | inputs[1],
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Nand => !(inputs[0] & inputs[1]),
            GateKind::Nor => !(inputs[0] | inputs[1]),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// Evaluates the gate on 64 packed boolean patterns at once.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval_wide(self, inputs: &[u64]) -> u64 {
        assert_eq!(inputs.len(), self.arity(), "gate arity mismatch");
        match self {
            GateKind::And => inputs[0] & inputs[1],
            GateKind::Or => inputs[0] | inputs[1],
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Nand => !(inputs[0] & inputs[1]),
            GateKind::Nor => !(inputs[0] | inputs[1]),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
        }
    }

    /// The lowercase mnemonic used by the text format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
        }
    }

    /// Parses a mnemonic produced by [`GateKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        Some(match s {
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "not" => GateKind::Not,
            "buf" => GateKind::Buf,
            "const0" => GateKind::Const0,
            "const1" => GateKind::Const1,
            _ => return None,
        })
    }

    /// All gate kinds (useful for exhaustive tests and mutation).
    pub const ALL: [GateKind; 10] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use GateKind::*;
        let cases = [
            (And, [false, false, false, true]),
            (Or, [false, true, true, true]),
            (Xor, [false, true, true, false]),
            (Xnor, [true, false, false, true]),
            (Nand, [true, true, true, false]),
            (Nor, [true, false, false, false]),
        ];
        for (kind, expect) in cases {
            for (i, &(a, b)) in [(false, false), (false, true), (true, false), (true, true)]
                .iter()
                .enumerate()
            {
                assert_eq!(kind.eval(&[a, b]), expect[i], "{kind} on ({a},{b})");
            }
        }
        assert!(Not.eval(&[false]));
        assert!(!Not.eval(&[true]));
        assert!(Buf.eval(&[true]));
        assert!(!Const0.eval(&[]));
        assert!(Const1.eval(&[]));
    }

    #[test]
    fn wide_eval_matches_scalar() {
        for kind in GateKind::ALL {
            match kind.arity() {
                2 => {
                    for a in [0u64, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA] {
                        for b in [0u64, u64::MAX, 0x5555_5555_5555_5555] {
                            let wide = kind.eval_wide(&[a, b]);
                            for bit in [0, 17, 63] {
                                let sa = (a >> bit) & 1 == 1;
                                let sb = (b >> bit) & 1 == 1;
                                assert_eq!((wide >> bit) & 1 == 1, kind.eval(&[sa, sb]));
                            }
                        }
                    }
                }
                1 => {
                    let wide = kind.eval_wide(&[0xF0F0]);
                    assert_eq!((wide >> 4) & 1 == 1, kind.eval(&[true]));
                    assert_eq!(wide & 1 == 1, kind.eval(&[false]));
                }
                _ => {
                    let wide = kind.eval_wide(&[]);
                    assert_eq!(wide & 1 == 1, kind.eval(&[]));
                }
            }
        }
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("bogus"), None);
    }
}
