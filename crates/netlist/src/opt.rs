//! Netlist optimization: constant propagation, buffer collapsing and dead
//! gate elimination.
//!
//! The Montgomery multiplier's input and output blocks have one constant
//! operand (`R²` and `1`, see Fig. 1 of the paper); the paper notes those
//! blocks were "simplified by constant-propagation, hence they have
//! different sizes". This pass performs that simplification on any netlist.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use crate::topo::topological_gates;

/// What a net is known to be after propagation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NetValue {
    /// Constant 0 or 1.
    Const(bool),
    /// Equal to another (earlier) net.
    Alias(NetId),
    /// Unknown (a genuine logic signal).
    Opaque,
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates removed as constant or aliased.
    pub gates_folded: usize,
    /// Gates removed as unreachable from the output word.
    pub gates_dead: usize,
}

/// Runs constant propagation, alias collapsing and dead-gate elimination,
/// returning the simplified netlist and statistics.
///
/// The resulting netlist computes the same output word function. Primary
/// input nets and output word bindings are preserved; an output bit that
/// folds to a constant is re-driven by a `Const0`/`Const1` gate, and one
/// that aliases another net is re-driven by a `Buf`.
///
/// # Panics
///
/// Panics if the netlist is cyclic or has no output word.
pub fn optimize(nl: &Netlist) -> (Netlist, OptStats) {
    let order = topological_gates(nl).expect("netlist must be acyclic");
    let mut value = vec![NetValue::Opaque; nl.num_nets()];
    let mut stats = OptStats::default();

    // Resolve an alias chain to its root.
    fn resolve(value: &[NetValue], mut n: NetId) -> NetValue {
        loop {
            match value[n.index()] {
                NetValue::Alias(m) => n = m,
                NetValue::Const(c) => return NetValue::Const(c),
                NetValue::Opaque => return NetValue::Opaque,
            }
        }
    }
    fn root(value: &[NetValue], mut n: NetId) -> NetId {
        while let NetValue::Alias(m) = value[n.index()] {
            n = m;
        }
        n
    }

    // Forward propagation over gates.
    for g in &order {
        let gate = nl.gate(*g);
        let out = gate.output;
        let ins: Vec<NetValue> = gate.inputs.iter().map(|&i| resolve(&value, i)).collect();
        let roots: Vec<NetId> = gate.inputs.iter().map(|&i| root(&value, i)).collect();
        let folded = match (gate.kind, ins.as_slice()) {
            (GateKind::Const0, _) => Some(NetValue::Const(false)),
            (GateKind::Const1, _) => Some(NetValue::Const(true)),
            (GateKind::Buf, [v]) => Some(match v {
                NetValue::Const(c) => NetValue::Const(*c),
                _ => NetValue::Alias(roots[0]),
            }),
            (GateKind::Not, [NetValue::Const(c)]) => Some(NetValue::Const(!c)),
            (kind, [a, b]) => fold2(kind, *a, *b, roots[0], roots[1]),
            _ => None,
        };
        if let Some(v) = folded {
            value[out.index()] = v;
            stats.gates_folded += 1;
        }
    }

    // Rebuild: keep gates whose outputs stayed opaque, remapping inputs.
    let mut out = Netlist::new(nl.name().to_string());
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.num_nets()];

    // Recreate primary inputs with their names.
    for word in nl.input_words() {
        let bits: Vec<NetId> = word
            .bits
            .iter()
            .map(|&b| {
                let nb = out.add_named_net(nl.net_name(b).to_string());
                net_map[b.index()] = Some(nb);
                nb
            })
            .collect();
        out.add_input_word_from_nets(word.name.clone(), bits);
    }

    // Map a source net to a net in the rebuilt netlist, materializing one
    // shared constant driver per polarity on demand.
    let mut const_nets: [Option<NetId>; 2] = [None, None];
    #[allow(clippy::too_many_arguments)]
    fn map_net(
        out: &mut Netlist,
        net_map: &mut [Option<NetId>],
        const_nets: &mut [Option<NetId>; 2],
        value: &[NetValue],
        src: &Netlist,
        n: NetId,
    ) -> NetId {
        match resolve(value, n) {
            NetValue::Const(c) => {
                *const_nets[usize::from(c)].get_or_insert_with(|| out.constant(c))
            }
            _ => {
                let r = root(value, n);
                if let Some(m) = net_map[r.index()] {
                    return m;
                }
                let m = out.add_named_net(src.net_name(r).to_string());
                net_map[r.index()] = Some(m);
                m
            }
        }
    }

    // Reachability from output bits (over the *folded* structure).
    let mut live = vec![false; nl.num_nets()];
    let mut stack: Vec<NetId> = nl
        .output_word()
        .bits
        .iter()
        .map(|&b| root(&value, b))
        .collect();
    while let Some(n) = stack.pop() {
        if live[n.index()] {
            continue;
        }
        live[n.index()] = true;
        if resolve(&value, n) != NetValue::Opaque {
            continue; // folded away; no fan-in needed
        }
        if let Some(g) = nl.driver_of(n) {
            for &i in &nl.gate(g).inputs {
                stack.push(root(&value, i));
            }
        }
    }

    for g in &order {
        let gate = nl.gate(*g);
        let outn = gate.output;
        if resolve(&value, outn) != NetValue::Opaque {
            continue; // folded
        }
        if !live[outn.index()] {
            stats.gates_dead += 1;
            continue;
        }
        let new_inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&i| map_net(&mut out, &mut net_map, &mut const_nets, &value, nl, i))
            .collect();
        let new_out = map_net(&mut out, &mut net_map, &mut const_nets, &value, nl, outn);
        out.push_gate(gate.kind, new_inputs, new_out);
    }

    // Rebind the output word; folded bits get Buf/Const drivers.
    let mut zbits = Vec::with_capacity(nl.output_word().width());
    let out_word_name = nl.output_word().name.clone();
    for &b in &nl.output_word().bits.clone() {
        let mapped = map_net(&mut out, &mut net_map, &mut const_nets, &value, nl, b);
        // If the mapped net is a primary input or shared with another output
        // bit we can still bind it directly; output bits may alias.
        zbits.push(mapped);
    }
    out.set_output_word(out_word_name, zbits);
    (out, stats)
}

/// Folds a 2-input gate given (partially) known inputs.
fn fold2(kind: GateKind, a: NetValue, b: NetValue, ra: NetId, rb: NetId) -> Option<NetValue> {
    use GateKind::*;
    use NetValue::*;
    let (ca, cb) = (
        matches!(a, Const(_)).then(|| matches!(a, Const(true))),
        matches!(b, Const(_)).then(|| matches!(b, Const(true))),
    );
    match (ca, cb) {
        (Some(x), Some(y)) => Some(Const(kind.eval(&[x, y]))),
        (Some(x), None) => fold_half(kind, x, rb),
        (None, Some(y)) => fold_half(kind, y, ra),
        (None, None) => {
            if ra == rb {
                // Idempotent / complementary same-input simplifications.
                match kind {
                    And | Or => Some(Alias(ra)),
                    Xor => Some(Const(false)),
                    Xnor => Some(Const(true)),
                    Nand | Nor => None, // = NOT a: keep as a gate
                    _ => None,
                }
            } else {
                None
            }
        }
    }
}

/// Folds a 2-input gate where one input is the constant `c` and the other
/// is the opaque net `n`.
fn fold_half(kind: GateKind, c: bool, n: NetId) -> Option<NetValue> {
    use GateKind::*;
    use NetValue::*;
    match (kind, c) {
        (And, false) => Some(Const(false)),
        (And, true) => Some(Alias(n)),
        (Or, true) => Some(Const(true)),
        (Or, false) => Some(Alias(n)),
        (Xor, false) => Some(Alias(n)),
        (Xor, true) => None, // NOT n: keep as a gate (kind change avoided)
        (Xnor, true) => Some(Alias(n)),
        (Xnor, false) => None, // NOT n
        (Nand, false) => Some(Const(true)),
        (Nand, true) => None, // NOT n
        (Nor, true) => Some(Const(false)),
        (Nor, false) => None, // NOT n
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_word;
    use gfab_field::{Gf2Poly, GfContext};

    #[test]
    fn constant_and_folds_to_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_word("A", 1);
        let zero = nl.constant(false);
        let z = nl.and(a[0], zero);
        nl.set_output_word("Z", vec![z]);
        let (opt, stats) = optimize(&nl);
        opt.validate().unwrap();
        assert!(stats.gates_folded >= 2);
        // Output is a constant-0 driver only.
        assert_eq!(opt.num_gates(), 1);
        assert_eq!(opt.gates()[0].kind, GateKind::Const0);
    }

    #[test]
    fn and_with_true_aliases_input() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_word("A", 1);
        let one = nl.constant(true);
        let t = nl.and(a[0], one);
        let z = nl.xor(t, a[0]); // x XOR x = 0
        nl.set_output_word("Z", vec![z]);
        let (opt, _) = optimize(&nl);
        opt.validate().unwrap();
        assert_eq!(opt.gates()[0].kind, GateKind::Const0);
        assert_eq!(opt.num_gates(), 1);
    }

    #[test]
    fn dead_gates_are_removed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_word("A", 2);
        let _dead = nl.and(a[0], a[1]);
        let z = nl.xor(a[0], a[1]);
        nl.set_output_word("Z", vec![z]);
        let (opt, stats) = optimize(&nl);
        opt.validate().unwrap();
        assert_eq!(stats.gates_dead, 1);
        assert_eq!(opt.num_gates(), 1);
    }

    #[test]
    fn optimization_preserves_function() {
        // A 2-bit multiplier with one operand wired to the constant α
        // (bits 01): Z = α·A.
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input_word("A", 2);
        let b0 = nl.constant(false);
        let b1 = nl.constant(true);
        let s0 = nl.and(a[0], b0);
        let s1 = nl.and(a[0], b1);
        let s2 = nl.and(a[1], b0);
        let s3 = nl.and(a[1], b1);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        let (opt, _) = optimize(&nl);
        opt.validate().unwrap();
        assert!(opt.num_gates() < nl.num_gates());
        let alpha = ctx.alpha();
        for x in ctx.iter_elements() {
            let want = ctx.mul(&alpha, &x);
            assert_eq!(simulate_word(&opt, &ctx, std::slice::from_ref(&x)), want);
            assert_eq!(simulate_word(&nl, &ctx, std::slice::from_ref(&x)), want);
        }
    }

    #[test]
    fn output_aliasing_input_gets_buffer_binding() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input_word("A", 1);
        let one = nl.constant(true);
        let z = nl.and(a[0], one); // folds to alias of a0
        nl.set_output_word("Z", vec![z]);
        let (opt, _) = optimize(&nl);
        // Output bit may be bound directly to the input net.
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        for v in [ctx.zero(), ctx.one()] {
            assert_eq!(simulate_word(&opt, &ctx, std::slice::from_ref(&v)), v);
        }
    }
}
