//! The netlist data structure and builder.

use crate::gate::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (a signal wire).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NetId(pub u32);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GateId(pub u32);

impl GateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One gate instance: a kind, its input nets and its single output net.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Input nets (`kind.arity()` of them).
    pub inputs: Vec<NetId>,
    /// The driven output net.
    pub output: NetId,
}

/// A word: a named group of nets interpreted as a bit-vector element of
/// `F_{2^k}`, LSB first (`bits[i]` is the coefficient of `α^i`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Word {
    /// The word name (e.g. `"A"`, `"Z"`).
    pub name: String,
    /// The member nets, LSB first.
    pub bits: Vec<NetId>,
}

impl Word {
    /// The bit width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Structural errors detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by more than one gate.
    MultipleDrivers(NetId),
    /// A net is neither a primary input nor driven by a gate.
    Undriven(NetId),
    /// The gate graph contains a combinational cycle.
    CombinationalCycle,
    /// The output word has not been declared.
    MissingOutputWord,
    /// A gate has the wrong number of inputs for its kind.
    ArityMismatch(GateId),
    /// A primary input net is also driven by a gate.
    DrivenInput(NetId),
    /// A parse error from the text format.
    Parse(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n} is undriven and not an input"),
            NetlistError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            NetlistError::MissingOutputWord => write!(f, "no output word declared"),
            NetlistError::ArityMismatch(g) => write!(f, "gate g{} has wrong input count", g.0),
            NetlistError::DrivenInput(n) => write!(f, "primary input {n} is driven by a gate"),
            NetlistError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A combinational, single-driver gate-level netlist with word bindings.
///
/// Build with the `add_input_word` / `gate2` / `set_output_word` methods,
/// then call [`Netlist::validate`]. Nets are named automatically
/// (`a0…`, `n17…`) but can be renamed via [`Netlist::set_net_name`].
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    gates: Vec<Gate>,
    /// Driver gate per net (`None` for primary inputs / undriven).
    driver: Vec<Option<GateId>>,
    input_words: Vec<Word>,
    output_word: Option<Word>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            gates: Vec::new(),
            driver: Vec::new(),
            input_words: Vec::new(),
            output_word: None,
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates, in creation order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// A gate by id.
    pub fn gate(&self, g: GateId) -> &Gate {
        &self.gates[g.index()]
    }

    /// The gate driving `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<GateId> {
        self.driver.get(net.index()).copied().flatten()
    }

    /// The name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Renames a net.
    pub fn set_net_name(&mut self, net: NetId, name: impl Into<String>) {
        self.net_names[net.index()] = name.into();
    }

    /// The declared input words.
    pub fn input_words(&self) -> &[Word] {
        &self.input_words
    }

    /// The declared output word.
    ///
    /// # Panics
    ///
    /// Panics if no output word was declared; use
    /// [`Netlist::try_output_word`] for a fallible accessor.
    pub fn output_word(&self) -> &Word {
        self.output_word.as_ref().expect("output word declared")
    }

    /// The declared output word, if any.
    pub fn try_output_word(&self) -> Option<&Word> {
        self.output_word.as_ref()
    }

    /// All primary input bits, in word declaration order, LSB first.
    pub fn input_bits(&self) -> Vec<NetId> {
        self.input_words
            .iter()
            .flat_map(|w| w.bits.iter().copied())
            .collect()
    }

    /// Whether `net` is a primary input bit.
    pub fn is_primary_input(&self, net: NetId) -> bool {
        self.input_words.iter().any(|w| w.bits.contains(&net))
    }

    /// Creates a fresh unnamed net.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(format!("n{}", id.0));
        self.driver.push(None);
        id
    }

    /// Creates a fresh named net.
    pub fn add_named_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net();
        self.net_names[id.index()] = name.into();
        id
    }

    /// Declares a `width`-bit input word; nets are named `<name‑lower>0…`.
    pub fn add_input_word(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        let prefix = name.to_lowercase();
        let bits: Vec<NetId> = (0..width)
            .map(|i| self.add_named_net(format!("{prefix}{i}")))
            .collect();
        self.input_words.push(Word {
            name,
            bits: bits.clone(),
        });
        bits
    }

    /// Declares an input word over existing nets (used by parsing and
    /// flattening).
    pub fn add_input_word_from_nets(&mut self, name: impl Into<String>, bits: Vec<NetId>) {
        self.input_words.push(Word {
            name: name.into(),
            bits,
        });
    }

    /// Declares the output word over existing nets, renaming them `z0…` if
    /// they still carry their automatic names.
    pub fn set_output_word(&mut self, name: impl Into<String>, bits: Vec<NetId>) {
        let name = name.into();
        let prefix = name.to_lowercase();
        for (i, &b) in bits.iter().enumerate() {
            if self.net_names[b.index()].starts_with('n') {
                self.net_names[b.index()] = format!("{prefix}{i}");
            }
        }
        self.output_word = Some(Word { name, bits });
    }

    /// Adds a gate driving a fresh net; returns the output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate arity.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "gate arity mismatch for {kind}");
        let output = self.add_net();
        self.push_gate(kind, inputs.to_vec(), output);
        output
    }

    /// Convenience for 2-input gates.
    pub fn gate2(&mut self, kind: GateKind, a: NetId, b: NetId) -> NetId {
        self.add_gate(kind, &[a, b])
    }

    /// Convenience: AND gate.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate2(GateKind::And, a, b)
    }

    /// Convenience: XOR gate.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate2(GateKind::Xor, a, b)
    }

    /// Convenience: inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Not, &[a])
    }

    /// Convenience: constant driver.
    pub fn constant(&mut self, value: bool) -> NetId {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.add_gate(kind, &[])
    }

    /// XOR-reduces a list of nets into one (balanced tree). An empty list
    /// produces a constant 0; a single net is returned unchanged.
    pub fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        match nets {
            [] => self.constant(false),
            [n] => *n,
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        match pair {
                            [a, b] => next.push(self.xor(*a, *b)),
                            [a] => next.push(*a),
                            _ => unreachable!("chunks(2)"),
                        }
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Adds a gate with an explicit output net (used by parsing/flattening).
    ///
    /// # Panics
    ///
    /// Panics if the output net already has a driver or arity mismatches.
    pub fn push_gate(&mut self, kind: GateKind, inputs: Vec<NetId>, output: NetId) -> GateId {
        assert_eq!(inputs.len(), kind.arity(), "gate arity mismatch for {kind}");
        assert!(
            self.driver[output.index()].is_none(),
            "net {output} already driven"
        );
        let id = GateId(self.gates.len() as u32);
        self.driver[output.index()] = Some(id);
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        id
    }

    /// Replaces a gate in place (used by bug injection). The output net and
    /// id are preserved.
    ///
    /// # Panics
    ///
    /// Panics if the new input count mismatches the new kind's arity.
    pub fn replace_gate(&mut self, g: GateId, kind: GateKind, inputs: Vec<NetId>) {
        assert_eq!(inputs.len(), kind.arity(), "gate arity mismatch for {kind}");
        let gate = &mut self.gates[g.index()];
        gate.kind = kind;
        gate.inputs = inputs;
    }

    /// Structural validation: single drivers, no undriven internal nets,
    /// correct arities, an output word, and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.output_word.is_none() {
            return Err(NetlistError::MissingOutputWord);
        }
        // Arity and driver checks.
        let mut seen_driver: Vec<Option<GateId>> = vec![None; self.num_nets()];
        for (idx, gate) in self.gates.iter().enumerate() {
            let gid = GateId(idx as u32);
            if gate.inputs.len() != gate.kind.arity() {
                return Err(NetlistError::ArityMismatch(gid));
            }
            if seen_driver[gate.output.index()].is_some() {
                return Err(NetlistError::MultipleDrivers(gate.output));
            }
            seen_driver[gate.output.index()] = Some(gid);
            if self.is_primary_input(gate.output) {
                return Err(NetlistError::DrivenInput(gate.output));
            }
        }
        // Every net used by a gate or the output word must be driven or an
        // input.
        let mut used: Vec<bool> = vec![false; self.num_nets()];
        for gate in &self.gates {
            for &i in &gate.inputs {
                used[i.index()] = true;
            }
        }
        if let Some(w) = &self.output_word {
            for &b in &w.bits {
                used[b.index()] = true;
            }
        }
        for (idx, &u) in used.iter().enumerate() {
            let net = NetId(idx as u32);
            if u && seen_driver[idx].is_none() && !self.is_primary_input(net) {
                return Err(NetlistError::Undriven(net));
            }
        }
        // Acyclicity via Kahn's algorithm on the gate graph.
        if crate::topo::topological_gates(self).is_none() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(())
    }

    /// A net-name → id lookup map (names are not guaranteed unique unless
    /// the netlist came from the text format, which enforces it).
    pub fn name_map(&self) -> HashMap<&str, NetId> {
        self.net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), NetId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let t = nl.and(a[0], b[0]);
        let u = nl.xor(a[1], b[1]);
        nl.set_output_word("Z", vec![t, u]);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = tiny();
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.input_words().len(), 2);
        assert_eq!(nl.output_word().width(), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn words_are_lsb_first_and_named() {
        let nl = tiny();
        let a = &nl.input_words()[0];
        assert_eq!(a.name, "A");
        assert_eq!(nl.net_name(a.bits[0]), "a0");
        assert_eq!(nl.net_name(a.bits[1]), "a1");
        let z = nl.output_word();
        assert_eq!(nl.net_name(z.bits[0]), "z0");
    }

    #[test]
    fn missing_output_is_rejected() {
        let mut nl = Netlist::new("x");
        nl.add_input_word("A", 1);
        assert_eq!(nl.validate(), Err(NetlistError::MissingOutputWord));
    }

    #[test]
    fn undriven_net_is_rejected() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input_word("A", 1);
        let dangling = nl.add_net();
        let z = nl.xor(a[0], dangling);
        nl.set_output_word("Z", vec![z]);
        assert_eq!(nl.validate(), Err(NetlistError::Undriven(dangling)));
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_panics_at_build() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input_word("A", 1);
        let t = nl.not(a[0]);
        nl.push_gate(GateKind::Buf, vec![a[0]], t);
    }

    #[test]
    fn driven_primary_input_is_rejected() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input_word("A", 2);
        // Manually drive a primary input (bypassing push_gate's net-creation
        // path but not its driver check — a1 has no driver yet).
        nl.push_gate(GateKind::Buf, vec![a[0]], a[1]);
        let z = nl.not(a[0]);
        nl.set_output_word("Z", vec![z]);
        assert_eq!(nl.validate(), Err(NetlistError::DrivenInput(a[1])));
    }

    #[test]
    fn xor_tree_shapes() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input_word("A", 5);
        let out = nl.xor_tree(&a);
        nl.set_output_word("Z", vec![out]);
        nl.validate().unwrap();
        assert_eq!(nl.num_gates(), 4); // 5 leaves -> 4 XORs

        let mut nl2 = Netlist::new("y");
        let b = nl2.add_input_word("B", 1);
        assert_eq!(nl2.xor_tree(&b), b[0]); // single net passthrough

        let mut nl3 = Netlist::new("z");
        nl3.add_input_word("C", 1);
        let c0 = nl3.xor_tree(&[]);
        let g = &nl3.gates()[0];
        assert_eq!(g.kind, GateKind::Const0);
        assert_eq!(g.output, c0);
    }

    #[test]
    fn replace_gate_keeps_output() {
        let mut nl = tiny();
        let g = nl.driver_of(nl.output_word().bits[0]).unwrap();
        let ins = nl.gate(g).inputs.clone();
        nl.replace_gate(g, GateKind::Or, ins);
        assert_eq!(nl.gate(g).kind, GateKind::Or);
        nl.validate().unwrap();
    }
}
