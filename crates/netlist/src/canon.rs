//! Canonical content encoding and hashing of netlists.
//!
//! The batch engine's artifact cache keys extraction results by netlist
//! *content*, not identity: two netlists that describe the same circuit
//! structure over the same words must map to the same key, no matter
//! how they were built or what their nets are called. [`canonical_bytes`]
//! produces that content encoding and [`canonical_hash`] the 64-bit
//! FNV-1a digest of it.
//!
//! # What the encoding covers
//!
//! * net count, gates in creation order (kind, input net ids, output
//!   net id) — net ids are already dense indices, so structurally
//!   identical netlists encode identically;
//! * input words and the output word: name, width and bit net ids.
//!   Word **names** are included because they appear in the extracted
//!   word function (`Z = A*B` vs `Z = P*Q` are different artifacts);
//! * a format version byte, bumped whenever the encoding changes.
//!
//! # What it deliberately ignores
//!
//! * the design name (`Netlist::name`) — a display label only;
//! * individual net names — they never influence extraction.
//!
//! Ignoring the design name is what lets a batch containing, say, the
//! two structurally identical `MonPro` pre-scaling blocks of a
//! Montgomery multiplier extract once and hit the cache once.
//!
//! # Collision safety
//!
//! A 64-bit digest can collide, so the cache never trusts the hash
//! alone: every entry stores the full canonical byte string, and a
//! lookup compares it byte-for-byte before returning a value. The hash
//! is only a bucket index; see `gfab`'s `ArtifactCache`.

use crate::{GateKind, Netlist, Word};

/// Version byte prefixed to every canonical encoding. Bump on any
/// change to the byte layout so stale digests can never alias.
pub const CANON_VERSION: u8 = 1;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes arbitrary bytes with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical content encoding of a netlist (see module docs).
///
/// Deterministic: the same structure always yields the same bytes, on
/// every platform and at every thread count.
#[must_use]
pub fn canonical_bytes(nl: &Netlist) -> Vec<u8> {
    // Rough size guess: ~13 bytes per gate plus word headers.
    let mut out = Vec::with_capacity(16 + nl.num_gates() * 13);
    out.push(CANON_VERSION);
    push_u32(&mut out, nl.num_nets() as u32);

    push_u32(&mut out, nl.input_words().len() as u32);
    for w in nl.input_words() {
        push_word(&mut out, w);
    }

    push_u32(&mut out, nl.num_gates() as u32);
    for g in nl.gates() {
        out.push(gate_kind_code(g.kind));
        out.push(g.inputs.len() as u8);
        for i in &g.inputs {
            push_u32(&mut out, i.0);
        }
        push_u32(&mut out, g.output.0);
    }

    match nl.try_output_word() {
        Some(w) => {
            out.push(1);
            push_word(&mut out, w);
        }
        None => out.push(0),
    }
    out
}

/// FNV-1a digest of [`canonical_bytes`].
#[must_use]
pub fn canonical_hash(nl: &Netlist) -> u64 {
    fnv1a(&canonical_bytes(nl))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_word(out: &mut Vec<u8>, w: &Word) {
    push_u32(out, w.name.len() as u32);
    out.extend_from_slice(w.name.as_bytes());
    push_u32(out, w.bits.len() as u32);
    for b in &w.bits {
        push_u32(out, b.0);
    }
}

/// Stable one-byte code per gate kind (independent of enum layout).
fn gate_kind_code(kind: GateKind) -> u8 {
    match kind {
        GateKind::And => 0,
        GateKind::Or => 1,
        GateKind::Xor => 2,
        GateKind::Xnor => 3,
        GateKind::Nand => 4,
        GateKind::Nor => 5,
        GateKind::Not => 6,
        GateKind::Buf => 7,
        GateKind::Const0 => 8,
        GateKind::Const1 => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str, word: &str, kind: GateKind) -> Netlist {
        let mut nl = Netlist::new(name);
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let z0 = nl.gate2(kind, a[0], b[0]);
        let z1 = nl.gate2(GateKind::Xor, a[1], b[1]);
        nl.set_output_word(word, vec![z0, z1]);
        nl
    }

    #[test]
    fn design_and_net_names_do_not_affect_the_encoding() {
        let mut x = tiny("left", "Z", GateKind::And);
        let y = tiny("right", "Z", GateKind::And);
        assert_eq!(canonical_bytes(&x), canonical_bytes(&y));
        assert_eq!(canonical_hash(&x), canonical_hash(&y));
        // Renaming a net is invisible too.
        x.set_net_name(crate::NetId(0), "fancy_net_name");
        assert_eq!(canonical_bytes(&x), canonical_bytes(&y));
    }

    #[test]
    fn structure_and_word_names_do_affect_it() {
        let base = tiny("m", "Z", GateKind::And);
        let other_gate = tiny("m", "Z", GateKind::Or);
        let other_word = tiny("m", "W", GateKind::And);
        assert_ne!(canonical_bytes(&base), canonical_bytes(&other_gate));
        assert_ne!(canonical_bytes(&base), canonical_bytes(&other_word));
        assert_ne!(canonical_hash(&base), canonical_hash(&other_gate));
    }

    #[test]
    fn encoding_is_stable_across_calls() {
        let nl = tiny("m", "Z", GateKind::Nand);
        assert_eq!(canonical_bytes(&nl), canonical_bytes(&nl));
        assert_eq!(canonical_hash(&nl), canonical_hash(&nl));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
