//! # gfab-netlist
//!
//! Gate-level combinational netlist IR for Galois field arithmetic
//! circuits, together with the structural analyses the word-level
//! abstraction flow needs.
//!
//! * [`Netlist`] — single-driver combinational circuits built from 1- and
//!   2-input gates, with **word bindings**: groups of nets declared as the
//!   bit-vector inputs `A, B, …` and output `Z` over `F_{2^k}`
//!   (`A = a_0 + a_1 α + … + a_{k-1} α^{k-1}`, Eqn. (1) of the paper).
//! * [`topo`] — topological gate order, reverse-topological net levels, and
//!   the net ordering underlying the paper's **RATO** (Refined Abstraction
//!   Term Order, Definition 5.1).
//! * [`sim`] — scalar and 64-way bit-parallel simulation, including
//!   word-level simulation against the field context.
//! * [`opt`] — constant propagation and dead-gate elimination (used by the
//!   Montgomery generator: the paper notes blocks "simplified by
//!   constant-propagation").
//! * [`mutate`] — deterministic bug injection (gate-type swaps, input
//!   swaps) for the buggy-circuit experiments.
//! * [`miter`] — word-aligned miter construction for the SAT baseline.
//! * [`hierarchy`] — word-connected block instances (the four-block
//!   Montgomery multiplier of Fig. 1) with flattening.
//! * [`canon`] — canonical content encoding + FNV-1a hashing, the
//!   artifact-cache key for batch verification.
//! * [`format`] — a small text netlist format (parse/emit) so circuits can
//!   be stored on disk and exchanged.
//!
//! # Example
//!
//! ```
//! use gfab_netlist::{Netlist, GateKind};
//!
//! // The 2-bit multiplier of Fig. 2 of the paper.
//! let mut nl = Netlist::new("fig2");
//! let a = nl.add_input_word("A", 2);
//! let b = nl.add_input_word("B", 2);
//! let s0 = nl.gate2(GateKind::And, a[0], b[0]);
//! let s1 = nl.gate2(GateKind::And, a[0], b[1]);
//! let s2 = nl.gate2(GateKind::And, a[1], b[0]);
//! let s3 = nl.gate2(GateKind::And, a[1], b[1]);
//! let r0 = nl.gate2(GateKind::Xor, s1, s2);
//! let z0 = nl.gate2(GateKind::Xor, s0, s3);
//! let z1 = nl.gate2(GateKind::Xor, r0, s3);
//! nl.set_output_word("Z", vec![z0, z1]);
//! nl.validate().unwrap();
//! assert_eq!(nl.num_gates(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod format;
mod gate;
pub mod hierarchy;
pub mod miter;
pub mod mutate;
mod netlist;
pub mod opt;
pub mod random;
pub mod sim;
pub mod strash;
pub mod topo;

pub use gate::GateKind;
pub use netlist::{Gate, GateId, NetId, Netlist, NetlistError, Word};
