//! Miter construction: the standard equivalence-checking reduction used by
//! the SAT/AIG baseline (Section 6 of the paper: "a miter is constructed
//! between Spec and Impl").

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use std::collections::HashMap;

/// Builds the miter of two netlists with identical input-word signatures
/// and equal output widths: inputs are shared, the two output words are
/// XOR-compared bit-wise and OR-reduced into a single-bit output word
/// `NEQ`. The miter output is 1 for exactly the input assignments on which
/// the two circuits disagree — `spec ≡ impl` iff the miter is unsatisfiable.
///
/// # Panics
///
/// Panics if the input signatures (word count and widths) or output widths
/// differ.
pub fn build_miter(spec: &Netlist, impl_: &Netlist) -> Netlist {
    assert_eq!(
        spec.input_words().len(),
        impl_.input_words().len(),
        "input word count mismatch"
    );
    for (a, b) in spec.input_words().iter().zip(impl_.input_words()) {
        assert_eq!(
            a.width(),
            b.width(),
            "input word width mismatch ({})",
            a.name
        );
    }
    assert_eq!(
        spec.output_word().width(),
        impl_.output_word().width(),
        "output width mismatch"
    );

    let mut miter = Netlist::new(format!("miter_{}_{}", spec.name(), impl_.name()));
    // Shared primary inputs.
    let mut shared_inputs: Vec<NetId> = Vec::new();
    for word in spec.input_words() {
        let bits = miter.add_input_word(word.name.clone(), word.width());
        shared_inputs.extend(bits);
    }

    let z_spec = instantiate(&mut miter, spec, &shared_inputs, "s");
    let z_impl = instantiate(&mut miter, impl_, &shared_inputs, "i");

    let diffs: Vec<NetId> = z_spec
        .iter()
        .zip(&z_impl)
        .map(|(&a, &b)| miter.xor(a, b))
        .collect();
    let neq = or_tree(&mut miter, &diffs);
    miter.set_output_word("NEQ", vec![neq]);
    miter
}

/// Copies `src`'s gates into `dst`, mapping `src`'s primary inputs onto
/// `inputs` (flattened, word order). Returns the mapped output word bits.
/// Net names get `prefix_` prepended to stay unique.
pub fn instantiate(dst: &mut Netlist, src: &Netlist, inputs: &[NetId], prefix: &str) -> Vec<NetId> {
    let src_inputs = src.input_bits();
    assert_eq!(src_inputs.len(), inputs.len(), "input bit count mismatch");
    let mut map: HashMap<NetId, NetId> = src_inputs
        .iter()
        .copied()
        .zip(inputs.iter().copied())
        .collect();
    let order = crate::topo::topological_gates(src).expect("source must be acyclic");
    for g in order {
        let gate = src.gate(g);
        let ins: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|i| *map.get(i).expect("inputs visited in topological order"))
            .collect();
        let out = dst.add_named_net(format!("{prefix}_{}", src.net_name(gate.output)));
        dst.push_gate(gate.kind, ins, out);
        map.insert(gate.output, out);
    }
    src.output_word()
        .bits
        .iter()
        .map(|b| *map.get(b).expect("output bits are driven or inputs"))
        .collect()
}

/// OR-reduces nets into one (balanced tree); empty input gives constant 0.
pub fn or_tree(nl: &mut Netlist, nets: &[NetId]) -> NetId {
    match nets {
        [] => nl.constant(false),
        [n] => *n,
        _ => {
            let mut level: Vec<NetId> = nets.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    match pair {
                        [a, b] => next.push(nl.gate2(GateKind::Or, *a, *b)),
                        [a] => next.push(*a),
                        _ => unreachable!("chunks(2)"),
                    }
                }
                level = next;
            }
            level[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::swap_gate_kind;
    use crate::netlist::GateId;
    use crate::sim::simulate_word;
    use gfab_field::{Gf2Poly, GfContext};

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn miter_of_identical_circuits_is_always_zero() {
        let a = fig2();
        let b = fig2();
        let miter = build_miter(&a, &b);
        miter.validate().unwrap();
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        for x in ctx.iter_elements() {
            for y in ctx.iter_elements() {
                let v = simulate_word(&miter, &ctx, &[x.clone(), y.clone()]);
                assert!(v.is_zero(), "miter fired at ({x}, {y})");
            }
        }
    }

    #[test]
    fn miter_detects_divergence() {
        let good = fig2();
        let mut bad = fig2();
        swap_gate_kind(&mut bad, GateId(4), crate::gate::GateKind::Or);
        let miter = build_miter(&good, &bad);
        miter.validate().unwrap();
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut fired = false;
        for x in ctx.iter_elements() {
            for y in ctx.iter_elements() {
                if !simulate_word(&miter, &ctx, &[x.clone(), y.clone()]).is_zero() {
                    fired = true;
                }
            }
        }
        assert!(fired, "miter must expose the bug");
    }

    #[test]
    #[should_panic(expected = "output width mismatch")]
    fn width_mismatch_rejected() {
        let a = fig2();
        let mut b = Netlist::new("narrow");
        let ain = b.add_input_word("A", 2);
        b.add_input_word("B", 2);
        let z = b.not(ain[0]);
        b.set_output_word("Z", vec![z]);
        let _ = build_miter(&a, &b);
    }
}
