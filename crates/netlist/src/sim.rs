//! Netlist simulation: scalar, 64-way bit-parallel, and word-level over
//! `F_{2^k}`.

use crate::netlist::{NetId, Netlist};
use crate::topo::topological_gates;
use gfab_field::budget::{Budget, ExhaustedReason};
use gfab_field::{Gf, GfContext, Rng};
use gfab_telemetry::{Counter, Hist, Phase, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of a budgeted random-equivalence sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// All sampled assignments agreed.
    Agree,
    /// The circuits differ on this input assignment (a genuine
    /// counterexample: any mismatch found is real even if the sweep was
    /// later cut short).
    Differ(Vec<Gf>),
    /// The budget ran out before the sweep finished and no mismatch had
    /// been found.
    OutOfBudget(ExhaustedReason),
}

/// Resolves a requested thread count: `0` means "use all available
/// parallelism" (falling back to 1 if the platform cannot report it).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Simulates the netlist on a full bit assignment of the primary inputs.
///
/// `inputs[i]` is the value of the i-th primary input bit in
/// [`Netlist::input_bits`] order (input words in declaration order, LSB
/// first). Returns the value of every net.
///
/// # Panics
///
/// Panics if the netlist is cyclic or `inputs` has the wrong length.
pub fn simulate_bits(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let wide: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let vals = simulate_wide(nl, &wide);
    vals.into_iter().map(|v| v & 1 == 1).collect()
}

/// Simulates 64 input patterns at once; each net carries a `u64` whose bit
/// `p` is the net's value under pattern `p`.
///
/// # Panics
///
/// Panics if the netlist is cyclic or `inputs` has the wrong length.
pub fn simulate_wide(nl: &Netlist, inputs: &[u64]) -> Vec<u64> {
    let pis = nl.input_bits();
    assert_eq!(inputs.len(), pis.len(), "input width mismatch");
    let order = topological_gates(nl).expect("netlist must be acyclic");
    let mut vals = vec![0u64; nl.num_nets()];
    for (net, &v) in pis.iter().zip(inputs) {
        vals[net.index()] = v;
    }
    let mut buf: Vec<u64> = Vec::with_capacity(2);
    for g in order {
        let gate = nl.gate(g);
        buf.clear();
        buf.extend(gate.inputs.iter().map(|i| vals[i.index()]));
        vals[gate.output.index()] = gate.kind.eval_wide(&buf);
    }
    vals
}

/// Simulates the netlist on field-element inputs (one per input word) and
/// returns the field-element value of the output word.
///
/// # Panics
///
/// Panics if `words.len()` differs from the number of input words, if any
/// word is wider than the circuit expects, or if the netlist is cyclic.
pub fn simulate_word(nl: &Netlist, ctx: &GfContext, words: &[Gf]) -> Gf {
    assert_eq!(
        words.len(),
        nl.input_words().len(),
        "input word count mismatch"
    );
    let mut bits = Vec::new();
    for (word, value) in nl.input_words().iter().zip(words) {
        for i in 0..word.width() {
            bits.push(value.bit(i));
        }
    }
    let vals = simulate_bits(nl, &bits);
    output_word_value(nl, ctx, &vals)
}

/// Packs the output word's net values into a field element.
pub fn output_word_value(nl: &Netlist, ctx: &GfContext, net_values: &[bool]) -> Gf {
    let bits: Vec<bool> = nl
        .output_word()
        .bits
        .iter()
        .map(|b| net_values[b.index()])
        .collect();
    ctx.from_bits(&bits)
}

/// Exhaustively checks `nl` against `f` on all input combinations; intended
/// for small circuits (total input bits ≤ 20).
///
/// # Panics
///
/// Panics if the circuit has more than 20 input bits.
pub fn exhaustive_check(
    nl: &Netlist,
    ctx: &GfContext,
    f: impl Fn(&[Gf]) -> Gf,
) -> Result<(), Vec<Gf>> {
    let widths: Vec<usize> = nl.input_words().iter().map(|w| w.width()).collect();
    let total: usize = widths.iter().sum();
    assert!(total <= 20, "exhaustive check limited to 20 input bits");
    for pattern in 0u64..(1 << total) {
        let mut words = Vec::with_capacity(widths.len());
        let mut off = 0;
        for &w in &widths {
            let mask = (1u64 << w) - 1;
            words.push(ctx.from_u64((pattern >> off) & mask));
            off += w;
        }
        let got = simulate_word(nl, ctx, &words);
        let want = f(&words);
        if got != want {
            return Err(words);
        }
    }
    Ok(())
}

/// Compares two netlists with identical input signatures on `n` random
/// word assignments; returns the first mismatching assignment found.
///
/// Runs single-threaded; see [`random_equivalence_check_sharded`] for the
/// multi-threaded variant. Both run the same 64-way bit-parallel sweep
/// and return identical results for the same `rng` stream.
pub fn random_equivalence_check(
    a: &Netlist,
    b: &Netlist,
    ctx: &GfContext,
    n: usize,
    rng: &mut Rng,
) -> Result<(), Vec<Gf>> {
    random_equivalence_check_sharded(a, b, ctx, n, rng, 1)
}

/// Packs word assignments `lo..hi` of `assignments` into one 64-lane wide
/// input vector (lane `l` carries assignment `lo + l`).
fn pack_lanes(nl: &Netlist, assignments: &[Vec<Gf>], lo: usize, hi: usize) -> Vec<u64> {
    let mut wide = Vec::with_capacity(nl.input_bits().len());
    for (w, word) in nl.input_words().iter().enumerate() {
        for bit in 0..word.width() {
            let mut v = 0u64;
            for (lane, assignment) in assignments[lo..hi].iter().enumerate() {
                if assignment[w].bit(bit) {
                    v |= 1 << lane;
                }
            }
            wide.push(v);
        }
    }
    wide
}

/// Returns a mask of lanes (bits `0..lanes`) where the output words of the
/// two wide-simulation traces differ.
fn lane_diff_mask(a: &Netlist, avals: &[u64], b: &Netlist, bvals: &[u64], lanes: usize) -> u64 {
    let mut diff = 0u64;
    for (na, nb) in a.output_word().bits.iter().zip(&b.output_word().bits) {
        diff |= avals[na.index()] ^ bvals[nb.index()];
    }
    if lanes == 64 {
        diff
    } else {
        diff & ((1u64 << lanes) - 1)
    }
}

/// Compares two netlists on `n` random word assignments using the 64-way
/// bit-parallel simulator, sharding 64-assignment chunks across `threads`
/// worker threads (`0` = available parallelism).
///
/// The assignments are drawn from `rng` up front, so the verdict — and the
/// specific counterexample returned (the mismatching assignment with the
/// lowest index) — is **identical for every thread count**.
///
/// # Panics
///
/// Panics if the two netlists disagree on input/output word widths, or if
/// either is cyclic.
pub fn random_equivalence_check_sharded(
    a: &Netlist,
    b: &Netlist,
    ctx: &GfContext,
    n: usize,
    rng: &mut Rng,
    threads: usize,
) -> Result<(), Vec<Gf>> {
    match random_equivalence_check_budgeted(a, b, ctx, n, rng, threads, &Budget::unlimited()) {
        SimOutcome::Agree => Ok(()),
        SimOutcome::Differ(cex) => Err(cex),
        SimOutcome::OutOfBudget(_) => unreachable!("unlimited budget cannot run out"),
    }
}

/// [`random_equivalence_check_budgeted`] under a telemetry span: the
/// sweep is recorded as a labelled [`Phase::Simulation`] span carrying a
/// `sim-vectors` counter. A disabled [`Telemetry`] handle makes this
/// identical to the untraced entry point.
///
/// # Panics
///
/// As [`random_equivalence_check_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn random_equivalence_check_traced(
    a: &Netlist,
    b: &Netlist,
    ctx: &GfContext,
    n: usize,
    rng: &mut Rng,
    threads: usize,
    budget: &Budget,
    tele: &Telemetry,
    label: &str,
) -> SimOutcome {
    let mut span = tele.span_labeled(Phase::Simulation, label);
    let start = std::time::Instant::now();
    let outcome = random_equivalence_check_budgeted(a, b, ctx, n, rng, threads, budget);
    span.counter(Counter::SimVectors, n as u64);
    if span.is_enabled() {
        // Wall-clock sample; Hist::SimBatchUs is flagged non-deterministic
        // so trace-diff never gates on it.
        span.observe(Hist::SimBatchUs, start.elapsed().as_micros() as u64);
    }
    let _ = span.finish();
    outcome
}

/// [`random_equivalence_check_sharded`] polled against a cooperative
/// [`Budget`] once per 64-assignment chunk. Simulation charges no work
/// units (work caps are an algebra knob); it honours the wall-clock
/// deadline and cancellation only. A [`SimOutcome::Differ`] counterexample
/// is always genuine; when the sweep completes within budget it is also
/// the lowest-index mismatch, identical for every thread count.
///
/// # Panics
///
/// Panics if the two netlists disagree on input/output word widths, or if
/// either is cyclic.
#[allow(clippy::too_many_arguments)]
pub fn random_equivalence_check_budgeted(
    a: &Netlist,
    b: &Netlist,
    ctx: &GfContext,
    n: usize,
    rng: &mut Rng,
    threads: usize,
    budget: &Budget,
) -> SimOutcome {
    assert_eq!(
        a.input_words().len(),
        b.input_words().len(),
        "input signature mismatch"
    );
    for (wa, wb) in a.input_words().iter().zip(b.input_words()) {
        assert_eq!(wa.width(), wb.width(), "input width mismatch");
    }
    assert_eq!(
        a.output_word().width(),
        b.output_word().width(),
        "output width mismatch"
    );
    let num_words = a.input_words().len();
    // Draw every assignment up front from the caller's RNG: the stream
    // consumed is independent of the sharding, which keeps the check
    // bit-identical between serial and parallel runs.
    let assignments: Vec<Vec<Gf>> = (0..n)
        .map(|_| (0..num_words).map(|_| ctx.random(rng)).collect())
        .collect();
    let num_chunks = n.div_ceil(64);
    let threads = resolve_threads(threads).min(num_chunks.max(1));

    let check_chunk = |chunk: usize| -> Option<usize> {
        let lo = chunk * 64;
        let hi = (lo + 64).min(n);
        let wide_a = pack_lanes(a, &assignments, lo, hi);
        let wide_b = pack_lanes(b, &assignments, lo, hi);
        let avals = simulate_wide(a, &wide_a);
        let bvals = simulate_wide(b, &wide_b);
        let diff = lane_diff_mask(a, &avals, b, &bvals, hi - lo);
        if diff == 0 {
            None
        } else {
            Some(lo + diff.trailing_zeros() as usize)
        }
    };

    let first_mismatch = if threads <= 1 {
        let mut best = None;
        for chunk in 0..num_chunks {
            if budget.check().is_err() {
                break;
            }
            if let Some(idx) = check_chunk(chunk) {
                best = Some(idx);
                break;
            }
        }
        best
    } else {
        let next_chunk = AtomicUsize::new(0);
        let found = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut best: Option<usize> = None;
                        loop {
                            if budget.check().is_err() {
                                break;
                            }
                            let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                            if chunk >= num_chunks {
                                break;
                            }
                            if let Some(idx) = check_chunk(chunk) {
                                best = Some(best.map_or(idx, |b| b.min(idx)));
                            }
                        }
                        best
                    })
                })
                .collect();
            workers
                .into_iter()
                .filter_map(|w| w.join().expect("simulation worker panicked"))
                .min()
        });
        found
    };
    match first_mismatch {
        // Any mismatch is a real counterexample, budget or not.
        Some(idx) => SimOutcome::Differ(assignments[idx].clone()),
        None => match budget.exhausted() {
            Some(reason) => SimOutcome::OutOfBudget(reason),
            None => SimOutcome::Agree,
        },
    }
}

/// The per-net value trace for one input assignment, for debugging:
/// `(net name, value)` pairs in net-id order.
pub fn trace(nl: &Netlist, inputs: &[bool]) -> Vec<(String, bool)> {
    let vals = simulate_bits(nl, inputs);
    (0..nl.num_nets())
        .map(|i| (nl.net_name(NetId(i as u32)).to_string(), vals[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use gfab_field::Gf2Poly;

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    fn f4() -> GfContext {
        GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
    }

    #[test]
    fn fig2_multiplies_over_f4() {
        let nl = fig2();
        let ctx = f4();
        exhaustive_check(&nl, &ctx, |w| ctx.mul(&w[0], &w[1]))
            .unwrap_or_else(|w| panic!("mismatch at {w:?}"));
    }

    #[test]
    fn wide_simulation_matches_scalar() {
        let nl = fig2();
        // Patterns 0..16 in parallel lanes.
        let mut wide = vec![0u64; 4];
        for p in 0..16u64 {
            for (i, w) in wide.iter_mut().enumerate() {
                if (p >> i) & 1 == 1 {
                    *w |= 1 << p;
                }
            }
        }
        let vals = simulate_wide(&nl, &wide);
        for p in 0..16u64 {
            let scalar: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
            let svals = simulate_bits(&nl, &scalar);
            for (net, &wv) in vals.iter().enumerate() {
                assert_eq!((wv >> p) & 1 == 1, svals[net], "net {net} pattern {p}");
            }
        }
    }

    #[test]
    fn word_simulation_respects_lsb_first() {
        let nl = fig2();
        let ctx = f4();
        let alpha = ctx.alpha();
        // α * α = α + 1 in F_4.
        let got = simulate_word(&nl, &ctx, &[alpha.clone(), alpha.clone()]);
        assert_eq!(got, ctx.add(&alpha, &ctx.one()));
    }

    #[test]
    fn random_check_detects_buggy_clone() {
        let good = fig2();
        let mut bad = fig2();
        // Flip the r0 XOR into an OR.
        let r0_gate = crate::netlist::GateId(4);
        assert_eq!(bad.gate(r0_gate).kind, GateKind::Xor);
        let ins = bad.gate(r0_gate).inputs.clone();
        bad.replace_gate(r0_gate, GateKind::Or, ins);
        let ctx = f4();
        let mut rng = Rng::from_entropy();
        // 64 random samples over F_4 x F_4 will very likely hit (1,1)*(1,*)…
        // use exhaustive instead to be deterministic:
        let mut found = false;
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                if simulate_word(&good, &ctx, &[a.clone(), b.clone()])
                    != simulate_word(&bad, &ctx, &[a.clone(), b.clone()])
                {
                    found = true;
                }
            }
        }
        assert!(found, "bug must be observable");
        // random_equivalence_check on equal circuits passes.
        random_equivalence_check(&good, &good.clone(), &ctx, 16, &mut rng).unwrap();
    }
}
