//! A small line-oriented text format for netlists, so benchmark circuits
//! can be written to disk and re-read (the paper's tool "takes the circuit
//! as input" as a flattened gate-level netlist file).
//!
//! ```text
//! # comment
//! netlist fig2
//! input A a0 a1
//! input B b0 b1
//! gate and s0 a0 b0
//! gate xor z0 s0 s3
//! ...
//! output Z z0 z1
//! ```
//!
//! Net names are introduced on first use; `input`/`output` list their bit
//! nets LSB first. Gate lines are `gate <kind> <out> <in...>`.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a netlist to the text format.
///
/// Gates are emitted in topological order so the output re-parses without
/// forward references.
///
/// # Panics
///
/// Panics if the netlist is cyclic or has no output word.
pub fn emit(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "netlist {}", nl.name());
    for w in nl.input_words() {
        let _ = write!(out, "input {}", w.name);
        for &b in &w.bits {
            let _ = write!(out, " {}", nl.net_name(b));
        }
        out.push('\n');
    }
    let order = crate::topo::topological_gates(nl).expect("netlist must be acyclic");
    for g in order {
        let gate = nl.gate(g);
        let _ = write!(out, "gate {} {}", gate.kind, nl.net_name(gate.output));
        for &i in &gate.inputs {
            let _ = write!(out, " {}", nl.net_name(i));
        }
        out.push('\n');
    }
    let w = nl.output_word();
    let _ = write!(out, "output {}", w.name);
    for &b in &w.bits {
        let _ = write!(out, " {}", nl.net_name(b));
    }
    out.push('\n');
    out
}

/// Parses the text format.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input and any structural
/// error surfaced by [`Netlist::validate`].
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new("unnamed");
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let perr =
        |line_no: usize, msg: &str| NetlistError::Parse(format!("line {}: {msg}", line_no + 1));

    let lookup = |nl: &mut Netlist, nets: &mut HashMap<String, NetId>, name: &str| -> NetId {
        if let Some(&id) = nets.get(name) {
            return id;
        }
        let id = nl.add_named_net(name.to_string());
        nets.insert(name.to_string(), id);
        id
    };

    let mut saw_output = false;
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line");
        match head {
            "netlist" => {
                let name = tok
                    .next()
                    .ok_or_else(|| perr(line_no, "missing netlist name"))?;
                nl.set_name(name.to_string());
            }
            "input" => {
                let word = tok
                    .next()
                    .ok_or_else(|| perr(line_no, "missing input word name"))?
                    .to_string();
                let mut bits = Vec::new();
                for name in tok {
                    if nets.contains_key(name) {
                        return Err(perr(line_no, &format!("net {name} already declared")));
                    }
                    bits.push(lookup(&mut nl, &mut nets, name));
                }
                if bits.is_empty() {
                    return Err(perr(line_no, "input word needs at least one bit"));
                }
                nl.add_input_word_from_nets(word, bits);
            }
            "gate" => {
                let kind_s = tok
                    .next()
                    .ok_or_else(|| perr(line_no, "missing gate kind"))?;
                let kind = GateKind::from_mnemonic(kind_s)
                    .ok_or_else(|| perr(line_no, &format!("unknown gate kind {kind_s}")))?;
                let out_name = tok
                    .next()
                    .ok_or_else(|| perr(line_no, "missing gate output"))?;
                let out = lookup(&mut nl, &mut nets, out_name);
                let inputs: Vec<NetId> = tok.map(|name| lookup(&mut nl, &mut nets, name)).collect();
                if inputs.len() != kind.arity() {
                    return Err(perr(
                        line_no,
                        &format!(
                            "gate {kind_s} expects {} inputs, got {}",
                            kind.arity(),
                            inputs.len()
                        ),
                    ));
                }
                if nl.driver_of(out).is_some() {
                    return Err(perr(line_no, &format!("net {out_name} already driven")));
                }
                nl.push_gate(kind, inputs, out);
            }
            "output" => {
                let word = tok
                    .next()
                    .ok_or_else(|| perr(line_no, "missing output word name"))?
                    .to_string();
                let bits: Result<Vec<NetId>, NetlistError> = tok
                    .map(|name| {
                        nets.get(name).copied().ok_or_else(|| {
                            perr(line_no, &format!("output references unknown net {name}"))
                        })
                    })
                    .collect();
                nl.set_output_word(word, bits?);
                saw_output = true;
            }
            other => return Err(perr(line_no, &format!("unknown directive {other}"))),
        }
    }
    if !saw_output {
        return Err(NetlistError::MissingOutputWord);
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_word;
    use gfab_field::{Gf2Poly, GfContext};

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn roundtrip_preserves_function() {
        let nl = fig2();
        let text = emit(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(back.name(), "fig2");
        assert_eq!(back.num_gates(), nl.num_gates());
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                assert_eq!(
                    simulate_word(&back, &ctx, &[a.clone(), b.clone()]),
                    simulate_word(&nl, &ctx, &[a.clone(), b.clone()])
                );
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("bogus line").is_err());
        assert!(parse("netlist x\ninput A a0\ngate xor z0 a0\noutput Z z0").is_err()); // arity
        assert!(parse("netlist x\ninput A a0\noutput Z nope").is_err()); // unknown net
        assert!(parse("netlist x\ninput A a0\ngate not z a0\noutput Z z").is_ok());
        assert!(parse("netlist x\ninput A a0").is_err()); // no output
    }

    #[test]
    fn parse_rejects_double_driver() {
        let text = "netlist x\ninput A a0\ngate not z a0\ngate buf z a0\noutput Z z";
        assert!(matches!(parse(text), Err(NetlistError::Parse(_))));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nnetlist x\ninput A a0\n# mid\ngate not z a0\noutput Z z\n";
        let nl = parse(text).unwrap();
        assert_eq!(nl.num_gates(), 1);
    }
}
