//! Hierarchical designs: word-connected block instances.
//!
//! The Montgomery multiplier of Fig. 1 of the paper is "hierarchically
//! designed as an interconnection of blocks": four MonPro blocks wired at
//! the word level. This module captures exactly that structure — each
//! instance is a full gate-level [`Netlist`] with word I/O, and instances
//! are connected by naming which word feeds which block input.
//!
//! Hierarchical extraction in `gfab-core` abstracts each block to its
//! word-level polynomial and composes the polynomials; [`HierDesign::flatten`]
//! produces the equivalent flat netlist for the baselines (SAT, flattened
//! abstraction).

use crate::netlist::{NetId, Netlist, NetlistError};
use std::collections::HashMap;

/// A word-level signal inside a hierarchical design.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// The `i`-th primary input word of the design.
    PrimaryInput(usize),
    /// The output word of the `i`-th block instance.
    BlockOutput(usize),
}

/// One block instance: a gate-level netlist plus the word-level signals
/// feeding each of its input words (in declaration order).
#[derive(Clone, Debug)]
pub struct BlockInst {
    /// Instance name (unique within the design).
    pub name: String,
    /// The block's gate-level implementation.
    pub netlist: Netlist,
    /// One signal per input word of `netlist`, in order.
    pub connections: Vec<Signal>,
}

/// A hierarchical design: primary input words, block instances in
/// topological order, and the signal that is the design output.
#[derive(Clone, Debug)]
pub struct HierDesign {
    /// Design name.
    pub name: String,
    /// Primary input words: `(name, width)`.
    pub inputs: Vec<(String, usize)>,
    /// Block instances; instance `i` may only reference block outputs `< i`.
    pub blocks: Vec<BlockInst>,
    /// The design output signal.
    pub output: Signal,
    /// The design output word name.
    pub output_name: String,
}

impl HierDesign {
    /// Structural validation: connection arities, forward-only references,
    /// per-block validity, and width agreement along every connection.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError::Parse`] describing the first structural
    /// problem, or the underlying block's own validation error.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let err = |msg: String| Err(NetlistError::Parse(msg));
        for (bi, inst) in self.blocks.iter().enumerate() {
            inst.netlist.validate()?;
            if inst.connections.len() != inst.netlist.input_words().len() {
                return err(format!(
                    "instance {} has {} connections for {} input words",
                    inst.name,
                    inst.connections.len(),
                    inst.netlist.input_words().len()
                ));
            }
            for (wi, (&sig, word)) in inst
                .connections
                .iter()
                .zip(inst.netlist.input_words())
                .enumerate()
            {
                let width = match sig {
                    Signal::PrimaryInput(i) => {
                        let Some((_, w)) = self.inputs.get(i) else {
                            return err(format!(
                                "instance {} connection {wi}: no primary input #{i}",
                                inst.name
                            ));
                        };
                        *w
                    }
                    Signal::BlockOutput(i) => {
                        if i >= bi {
                            return err(format!(
                                "instance {} connection {wi}: forward reference to block #{i}",
                                inst.name
                            ));
                        }
                        self.blocks[i].netlist.output_word().width()
                    }
                };
                if width != word.width() {
                    return err(format!(
                        "instance {} input word {} has width {}, connected signal has {width}",
                        inst.name,
                        word.name,
                        word.width()
                    ));
                }
            }
        }
        match self.output {
            Signal::PrimaryInput(i) if i >= self.inputs.len() => {
                err(format!("output references missing primary input #{i}"))
            }
            Signal::BlockOutput(i) if i >= self.blocks.len() => {
                err(format!("output references missing block #{i}"))
            }
            _ => Ok(()),
        }
    }

    /// Total gate count across all instances.
    pub fn num_gates(&self) -> usize {
        self.blocks.iter().map(|b| b.netlist.num_gates()).sum()
    }

    /// Flattens the hierarchy into a single gate-level netlist computing
    /// the same word function.
    ///
    /// # Panics
    ///
    /// Panics on an invalid design (call [`HierDesign::validate`] first).
    pub fn flatten(&self) -> Netlist {
        let mut flat = Netlist::new(self.name.clone());
        // Primary input words.
        let mut pi_bits: Vec<Vec<NetId>> = Vec::new();
        for (name, width) in &self.inputs {
            pi_bits.push(flat.add_input_word(name.clone(), *width));
        }
        // Signal -> nets table, filled as blocks are instantiated.
        let mut signal_bits: HashMap<Signal, Vec<NetId>> = pi_bits
            .iter()
            .enumerate()
            .map(|(i, bits)| (Signal::PrimaryInput(i), bits.clone()))
            .collect();
        for (bi, inst) in self.blocks.iter().enumerate() {
            let inputs: Vec<NetId> = inst
                .connections
                .iter()
                .flat_map(|sig| signal_bits[sig].clone())
                .collect();
            let outs = crate::miter::instantiate(&mut flat, &inst.netlist, &inputs, &inst.name);
            signal_bits.insert(Signal::BlockOutput(bi), outs);
        }
        let out_bits = signal_bits[&self.output].clone();
        flat.set_output_word(self.output_name.clone(), out_bits);
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_word;
    use gfab_field::{Gf2Poly, GfContext};

    /// A 2-bit XOR "adder" block over F_4.
    fn adder_block(name: &str) -> Netlist {
        let mut nl = Netlist::new(name);
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let z0 = nl.xor(a[0], b[0]);
        let z1 = nl.xor(a[1], b[1]);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    /// (A + B) + (A + C): two adder levels.
    fn two_level() -> HierDesign {
        HierDesign {
            name: "sum3".into(),
            inputs: vec![("A".into(), 2), ("B".into(), 2), ("C".into(), 2)],
            blocks: vec![
                BlockInst {
                    name: "u0".into(),
                    netlist: adder_block("add0"),
                    connections: vec![Signal::PrimaryInput(0), Signal::PrimaryInput(1)],
                },
                BlockInst {
                    name: "u1".into(),
                    netlist: adder_block("add1"),
                    connections: vec![Signal::PrimaryInput(0), Signal::PrimaryInput(2)],
                },
                BlockInst {
                    name: "u2".into(),
                    netlist: adder_block("add2"),
                    connections: vec![Signal::BlockOutput(0), Signal::BlockOutput(1)],
                },
            ],
            output: Signal::BlockOutput(2),
            output_name: "Z".into(),
        }
    }

    #[test]
    fn validates_and_counts() {
        let d = two_level();
        d.validate().unwrap();
        assert_eq!(d.num_gates(), 6);
    }

    #[test]
    fn flatten_preserves_function() {
        let d = two_level();
        let flat = d.flatten();
        flat.validate().unwrap();
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        // (A+B)+(A+C) = B + C over F_4.
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                for c in ctx.iter_elements() {
                    let got = simulate_word(&flat, &ctx, &[a.clone(), b.clone(), c.clone()]);
                    assert_eq!(got, ctx.add(&b, &c));
                }
            }
        }
    }

    #[test]
    fn forward_reference_rejected() {
        let mut d = two_level();
        d.blocks[0].connections[0] = Signal::BlockOutput(2);
        assert!(d.validate().is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut d = two_level();
        d.inputs[0].1 = 3;
        assert!(d.validate().is_err());
    }
}
