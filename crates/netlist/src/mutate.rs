//! Deterministic bug injection for the buggy-circuit experiments
//! (Example 5.1 of the paper introduces a bug by rewiring one XOR input).

use crate::gate::GateKind;
use crate::netlist::{GateId, NetId, Netlist};
use gfab_field::Rng;
use std::fmt;

/// A structural mutation applied to a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Gate `gate` changed kind `from → to` (same inputs).
    GateTypeSwap {
        /// The mutated gate.
        gate: GateId,
        /// Original kind.
        from: GateKind,
        /// New kind.
        to: GateKind,
    },
    /// Input `position` of `gate` rewired `from → to` — the paper's bug in
    /// Example 5.1 (`r0 = s1 ⊕ s2` became `r0 = s0 ⊕ s2`).
    WireSwap {
        /// The mutated gate.
        gate: GateId,
        /// Which input was rewired.
        position: usize,
        /// Original net.
        from: NetId,
        /// New net.
        to: NetId,
    },
    /// Gate `gate` replaced by a constant driver (stuck-at fault): the
    /// gate's output net is tied to `value` and its inputs are dropped.
    StuckAt {
        /// The mutated gate.
        gate: GateId,
        /// Original kind.
        from: GateKind,
        /// The stuck value driven onto the gate's output net.
        value: bool,
    },
    /// One operand of an XOR/XNOR `gate` dropped — the classic "missing
    /// reduction term" bug in modular multipliers, where one summand of a
    /// reduction XOR tree is forgotten. The gate degenerates to a buffer
    /// (XOR) or inverter (XNOR) of the surviving operand.
    DropTerm {
        /// The mutated gate.
        gate: GateId,
        /// Original kind (`Xor` or `Xnor`).
        from: GateKind,
        /// The operand that survives.
        kept: NetId,
        /// The operand that was dropped.
        dropped: NetId,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::GateTypeSwap { gate, from, to } => {
                write!(f, "gate g{} kind {from} -> {to}", gate.0)
            }
            Mutation::WireSwap {
                gate,
                position,
                from,
                to,
            } => write!(f, "gate g{} input #{position} {from} -> {to}", gate.0),
            Mutation::StuckAt { gate, from, value } => {
                write!(f, "gate g{} ({from}) stuck-at-{}", gate.0, u8::from(*value))
            }
            Mutation::DropTerm {
                gate,
                from,
                kept,
                dropped,
            } => write!(
                f,
                "gate g{} ({from}) dropped term {dropped} (kept {kept})",
                gate.0
            ),
        }
    }
}

/// Changes the kind of gate `g` to `to`, preserving its inputs.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn swap_gate_kind(nl: &mut Netlist, g: GateId, to: GateKind) -> Mutation {
    let gate = nl.gate(g).clone();
    assert_eq!(
        gate.kind.arity(),
        to.arity(),
        "mutation must preserve arity"
    );
    nl.replace_gate(g, to, gate.inputs);
    Mutation::GateTypeSwap {
        gate: g,
        from: gate.kind,
        to,
    }
}

/// Rewires input `position` of gate `g` to net `to`.
///
/// # Panics
///
/// Panics if `position` is out of range, or if the rewiring would create a
/// combinational cycle (checked by re-validating topology).
pub fn swap_wire(nl: &mut Netlist, g: GateId, position: usize, to: NetId) -> Mutation {
    let gate = nl.gate(g).clone();
    let from = gate.inputs[position];
    let mut inputs = gate.inputs;
    inputs[position] = to;
    nl.replace_gate(g, gate.kind, inputs);
    assert!(
        crate::topo::topological_gates(nl).is_some(),
        "wire swap created a combinational cycle"
    );
    Mutation::WireSwap {
        gate: g,
        position,
        from,
        to,
    }
}

/// Replaces gate `g` by a constant driver of `value` (a stuck-at fault on
/// the gate's output net). The gate's former inputs are disconnected; any
/// logic they fed only through `g` becomes dead.
pub fn stuck_at(nl: &mut Netlist, g: GateId, value: bool) -> Mutation {
    let from = nl.gate(g).kind;
    let kind = if value {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    nl.replace_gate(g, kind, Vec::new());
    Mutation::StuckAt {
        gate: g,
        from,
        value,
    }
}

/// Drops one operand of the XOR/XNOR gate `g`, keeping input `keep`
/// (0 or 1): XOR degenerates to a buffer of the kept operand, XNOR to an
/// inverter. This models a forgotten summand in a reduction XOR tree.
///
/// # Panics
///
/// Panics if `g` is not a 2-input XOR or XNOR, or `keep > 1`.
pub fn drop_xor_term(nl: &mut Netlist, g: GateId, keep: usize) -> Mutation {
    let gate = nl.gate(g).clone();
    assert!(
        matches!(gate.kind, GateKind::Xor | GateKind::Xnor) && gate.inputs.len() == 2,
        "drop_xor_term needs a 2-input XOR/XNOR gate"
    );
    assert!(keep <= 1, "keep must select one of the two operands");
    let kept = gate.inputs[keep];
    let dropped = gate.inputs[1 - keep];
    let kind = if gate.kind == GateKind::Xor {
        GateKind::Buf
    } else {
        GateKind::Not
    };
    nl.replace_gate(g, kind, vec![kept]);
    Mutation::DropTerm {
        gate: g,
        from: gate.kind,
        kept,
        dropped,
    }
}

/// Injects one random, *observable-in-principle* bug: either a gate-kind
/// swap between AND/OR/XOR/XNOR or a wire swap to another net at the same
/// or higher reverse-topological level (so no cycle arises).
///
/// Deterministic in `seed`. Returns the netlist and the mutation applied.
///
/// # Panics
///
/// Panics if the netlist has no 2-input gates to mutate.
pub fn inject_random_bug(nl: &Netlist, seed: u64) -> (Netlist, Mutation) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = nl.clone();
    let two_input: Vec<GateId> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind.arity() == 2)
        .map(|(i, _)| GateId(i as u32))
        .collect();
    assert!(!two_input.is_empty(), "no 2-input gates to mutate");
    let g = *rng.choose(&two_input).expect("non-empty");
    if rng.random_bool(0.5) {
        // Gate-type swap to a different 2-input kind.
        let from = nl.gate(g).kind;
        let choices: Vec<GateKind> = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Xnor]
            .into_iter()
            .filter(|&k| k != from)
            .collect();
        let to = *rng.choose(&choices).expect("non-empty");
        let m = swap_gate_kind(&mut out, g, to);
        (out, m)
    } else {
        // Wire swap: rewire one input to a random primary input bit (always
        // acyclic).
        let pis = nl.input_bits();
        let position = rng.random_range(0..2);
        let current = nl.gate(g).inputs[position];
        let candidates: Vec<NetId> = pis.into_iter().filter(|&n| n != current).collect();
        let to = *rng.choose(&candidates).expect("multiple inputs exist");
        let m = swap_wire(&mut out, g, position, to);
        (out, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_word;
    use gfab_field::{Gf2Poly, GfContext};

    fn fig2() -> Netlist {
        let mut nl = Netlist::new("fig2");
        let a = nl.add_input_word("A", 2);
        let b = nl.add_input_word("B", 2);
        let s0 = nl.and(a[0], b[0]);
        let s1 = nl.and(a[0], b[1]);
        let s2 = nl.and(a[1], b[0]);
        let s3 = nl.and(a[1], b[1]);
        let r0 = nl.xor(s1, s2);
        let z0 = nl.xor(s0, s3);
        let z1 = nl.xor(r0, s3);
        nl.set_output_word("Z", vec![z0, z1]);
        nl
    }

    #[test]
    fn paper_bug_example_5_1() {
        // Replace f8: r0 = s1 + s2 by r0 = s0 + s2.
        let mut nl = fig2();
        let r0_gate = GateId(4);
        let s0_net = nl.gate(GateId(0)).output;
        let m = swap_wire(&mut nl, r0_gate, 0, s0_net);
        assert!(matches!(m, Mutation::WireSwap { .. }));
        nl.validate().unwrap();
        // The buggy circuit differs from multiplication somewhere.
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut differs = false;
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                if simulate_word(&nl, &ctx, &[a.clone(), b.clone()]) != ctx.mul(&a, &b) {
                    differs = true;
                }
            }
        }
        assert!(differs);
    }

    #[test]
    fn gate_type_swap_preserves_structure() {
        let mut nl = fig2();
        let m = swap_gate_kind(&mut nl, GateId(4), GateKind::Or);
        assert_eq!(
            m,
            Mutation::GateTypeSwap {
                gate: GateId(4),
                from: GateKind::Xor,
                to: GateKind::Or
            }
        );
        nl.validate().unwrap();
        assert_eq!(nl.num_gates(), 7);
    }

    #[test]
    fn random_bugs_are_deterministic_and_valid() {
        let nl = fig2();
        for seed in 0..20 {
            let (m1, b1) = inject_random_bug(&nl, seed);
            let (m2, b2) = inject_random_bug(&nl, seed);
            assert_eq!(b1, b2, "same seed, same bug");
            assert_eq!(m1.num_gates(), m2.num_gates());
            m1.validate().unwrap();
        }
    }

    #[test]
    fn display_is_informative() {
        let mut nl = fig2();
        let m = swap_gate_kind(&mut nl, GateId(0), GateKind::Or);
        assert_eq!(m.to_string(), "gate g0 kind and -> or");
    }

    #[test]
    fn stuck_at_replaces_gate_with_constant() {
        for value in [false, true] {
            let mut nl = fig2();
            let m = stuck_at(&mut nl, GateId(4), value);
            assert_eq!(
                m,
                Mutation::StuckAt {
                    gate: GateId(4),
                    from: GateKind::Xor,
                    value,
                }
            );
            nl.validate().unwrap();
            let g = nl.gate(GateId(4));
            assert!(g.inputs.is_empty());
            assert_eq!(
                g.kind,
                if value {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                }
            );
            // The stuck net now simulates to the constant for every input.
            let vals = crate::sim::simulate_bits(&nl, &[true, false, true, true]);
            assert_eq!(vals[g.output.index()], value);
        }
    }

    #[test]
    fn drop_term_degenerates_xor_to_buffer() {
        let mut nl = fig2();
        let before = nl.gate(GateId(4)).clone();
        let m = drop_xor_term(&mut nl, GateId(4), 1);
        assert_eq!(
            m,
            Mutation::DropTerm {
                gate: GateId(4),
                from: GateKind::Xor,
                kept: before.inputs[1],
                dropped: before.inputs[0],
            }
        );
        nl.validate().unwrap();
        assert_eq!(nl.gate(GateId(4)).kind, GateKind::Buf);
        assert_eq!(nl.gate(GateId(4)).inputs, vec![before.inputs[1]]);
        assert!(m.to_string().contains("dropped term"));
    }
}
