//! Random combinational circuit generation for property-based testing.
//!
//! The Abstraction Theorem (Theorem 4.2 of the paper) holds for *every*
//! combinational circuit over `F_{2^k}`, not only multipliers; random DAGs
//! let the test suite exercise that generality.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use gfab_field::Rng;

/// Parameters for [`random_circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitSpec {
    /// Number of input words.
    pub num_input_words: usize,
    /// Bit width `k` of every word.
    pub width: usize,
    /// Number of internal gates to generate (before the output stage).
    pub num_gates: usize,
    /// RNG seed (generation is deterministic in the seed).
    pub seed: u64,
}

impl Default for RandomCircuitSpec {
    fn default() -> Self {
        RandomCircuitSpec {
            num_input_words: 2,
            width: 3,
            num_gates: 24,
            seed: 0,
        }
    }
}

/// Generates a random acyclic circuit with `num_input_words` `width`-bit
/// input words and a `width`-bit output word `Z`. Every gate draws its
/// inputs from already-created nets, so the result is a DAG by
/// construction; output bits are sampled from the last generated nets to
/// keep most logic live.
///
/// # Panics
///
/// Panics if `width == 0` or `num_input_words == 0`.
pub fn random_circuit(spec: &RandomCircuitSpec) -> Netlist {
    assert!(
        spec.width > 0 && spec.num_input_words > 0,
        "degenerate spec"
    );
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut nl = Netlist::new(format!("random_{}", spec.seed));
    let mut pool: Vec<NetId> = Vec::new();
    for w in 0..spec.num_input_words {
        let name = format!("W{w}");
        pool.extend(nl.add_input_word(name, spec.width));
    }
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Not,
    ];
    for _ in 0..spec.num_gates {
        let kind = *rng.choose(&kinds).expect("non-empty");
        let out = match kind.arity() {
            1 => {
                let a = *rng.choose(&pool).expect("non-empty pool");
                nl.add_gate(kind, &[a])
            }
            _ => {
                let a = *rng.choose(&pool).expect("non-empty pool");
                let b = *rng.choose(&pool).expect("non-empty pool");
                nl.add_gate(kind, &[a, b])
            }
        };
        pool.push(out);
    }
    // Output bits: bias towards recently created nets.
    let zbits: Vec<NetId> = (0..spec.width)
        .map(|_| {
            let lo = pool.len().saturating_sub(spec.num_gates.max(1));
            pool[rng.random_range(lo..pool.len())]
        })
        .collect();
    nl.set_output_word("Z", zbits);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuits_validate() {
        for seed in 0..50 {
            let spec = RandomCircuitSpec {
                seed,
                ..RandomCircuitSpec::default()
            };
            let nl = random_circuit(&spec);
            nl.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(nl.output_word().width(), spec.width);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = RandomCircuitSpec::default();
        let a = random_circuit(&spec);
        let b = random_circuit(&spec);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(
            crate::format::emit(&a),
            crate::format::emit(&b),
            "same seed must give identical netlists"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitSpec {
            seed: 1,
            ..Default::default()
        });
        let b = random_circuit(&RandomCircuitSpec {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(crate::format::emit(&a), crate::format::emit(&b));
    }
}
