//! Benchmark-row comparison: align two `--json` result files from the
//! paper-table binaries and report per-row deltas (`gfab bench-diff`).
//!
//! # Alignment
//!
//! Each line of a result file is one flat JSON object emitted by
//! [`JsonRow`](crate::JsonRow). Rows are keyed by their identity fields —
//! `table`, `ablation` (when present), `k` and `threads` (when present) —
//! and matched across the two files by that key.
//!
//! # Gating
//!
//! Only *deterministic* fields participate in regression gating:
//! integer-valued fields whose name does not look like a wall-time or
//! memory measurement (no `_s` suffix, no `time`/`mem`/`bytes`
//! substring), plus verdict strings and booleans, which must match
//! exactly. Wall times and peak-memory readings vary run to run and are
//! reported as informational context only — a CI gate built on the gated
//! fields is stable across machines and thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON scalar from a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON number (integer fields are whole-valued `f64`s).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl Value {
    /// The integer value, if this is a whole number representable in u64.
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n:.3}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// One result row: its identity key plus all fields in file order.
#[derive(Debug, Clone)]
pub struct Row {
    /// Identity: `table[/ablation] k=<k>[ t=<threads>]`.
    pub key: String,
    /// All fields of the row, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Row {
    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Whether a field takes part in regression gating (see module docs).
/// Identity fields and measurements that vary run to run do not.
#[must_use]
pub fn is_gated(key: &str) -> bool {
    !(key == "table"
        || key == "ablation"
        || key == "k"
        || key == "threads"
        || key.ends_with("_s")
        || key.contains("time")
        || key.contains("mem")
        || key.contains("bytes"))
}

/// Parses one result file (one JSON object per non-blank line).
///
/// # Errors
///
/// A message naming the 1-based line on any malformed line.
pub fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields = parse_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let lookup = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.render())
        };
        let table = lookup("table").ok_or_else(|| format!("line {}: no `table` field", i + 1))?;
        let mut key = table;
        if let Some(a) = lookup("ablation") {
            let _ = write!(key, "/{a}");
        }
        if let Some(k) = lookup("k") {
            let _ = write!(key, " k={k}");
        }
        if let Some(t) = lookup("threads") {
            let _ = write!(key, " t={t}");
        }
        rows.push(Row { key, fields });
    }
    Ok(rows)
}

/// A gated field whose current value regressed against baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRegression {
    /// The row's identity key.
    pub key: String,
    /// The offending field (`"<missing row>"` when the whole row is gone).
    pub field: String,
    /// Rendered baseline value.
    pub baseline: String,
    /// Rendered current value.
    pub current: String,
}

impl std::fmt::Display for BenchRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {} -> {}",
            self.key, self.field, self.baseline, self.current
        )
    }
}

/// One aligned row pair (either side may be missing).
#[derive(Debug, Clone)]
pub struct BenchDiffRow {
    /// The shared identity key.
    pub key: String,
    /// The baseline row, when present.
    pub a: Option<Row>,
    /// The current row, when present.
    pub b: Option<Row>,
}

/// The result of aligning two result files.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// One entry per identity key in either file, sorted by key.
    pub rows: Vec<BenchDiffRow>,
}

impl BenchDiff {
    /// Aligns baseline rows `a` against current rows `b` by identity key.
    /// Duplicate keys within one file keep the *last* row (a re-run of the
    /// same configuration supersedes earlier lines).
    #[must_use]
    pub fn compute(a: Vec<Row>, b: Vec<Row>) -> BenchDiff {
        let index = |rows: Vec<Row>| -> BTreeMap<String, Row> {
            rows.into_iter().map(|r| (r.key.clone(), r)).collect()
        };
        let mut map_a = index(a);
        let mut map_b = index(b);
        let keys: Vec<String> = map_a
            .keys()
            .chain(map_b.keys())
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        BenchDiff {
            rows: keys
                .into_iter()
                .map(|key| BenchDiffRow {
                    a: map_a.remove(&key),
                    b: map_b.remove(&key),
                    key,
                })
                .collect(),
        }
    }

    /// Gated-field regressions against `threshold_pct`:
    ///
    /// * an integer field grew beyond `baseline * (1 + pct/100)`;
    /// * a verdict string or boolean changed at all;
    /// * a whole baseline row is missing from the current file.
    ///
    /// Shrinking integers and rows only present in the current file are
    /// improvements/additions, never regressions.
    #[must_use]
    pub fn regressions(&self, threshold_pct: f64) -> Vec<BenchRegression> {
        let mut out = Vec::new();
        for row in &self.rows {
            let (Some(a), b) = (&row.a, &row.b) else {
                continue; // new row: not a regression
            };
            let Some(b) = b else {
                out.push(BenchRegression {
                    key: row.key.clone(),
                    field: "<missing row>".into(),
                    baseline: "present".into(),
                    current: "absent".into(),
                });
                continue;
            };
            for (name, va) in &a.fields {
                if !is_gated(name) {
                    continue;
                }
                let Some(vb) = b.field(name) else {
                    out.push(BenchRegression {
                        key: row.key.clone(),
                        field: name.clone(),
                        baseline: va.render(),
                        current: "<missing>".into(),
                    });
                    continue;
                };
                let regressed = match (va.as_int(), vb.as_int()) {
                    (Some(ia), Some(ib)) => {
                        ib > ia && ib as f64 > ia as f64 * (1.0 + threshold_pct / 100.0)
                    }
                    _ => va != vb,
                };
                if regressed {
                    out.push(BenchRegression {
                        key: row.key.clone(),
                        field: name.clone(),
                        baseline: va.render(),
                        current: vb.render(),
                    });
                }
            }
        }
        out
    }

    /// Renders the human-readable diff: one block per row with every
    /// differing field (gated and informational alike).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            match (&row.a, &row.b) {
                (Some(a), Some(b)) => {
                    let mut lines = String::new();
                    for (name, va) in &a.fields {
                        match b.field(name) {
                            Some(vb) if va == vb => {}
                            Some(vb) => {
                                let tag = if is_gated(name) { "" } else { " (info)" };
                                let _ = writeln!(
                                    lines,
                                    "    {name}: {} -> {}{tag}",
                                    va.render(),
                                    vb.render()
                                );
                            }
                            None => {
                                let _ = writeln!(lines, "    {name}: {} -> <missing>", va.render());
                            }
                        }
                    }
                    if lines.is_empty() {
                        let _ = writeln!(out, "{}: unchanged", row.key);
                    } else {
                        let _ = writeln!(out, "{}:", row.key);
                        out.push_str(&lines);
                    }
                }
                (Some(_), None) => {
                    let _ = writeln!(out, "{}: MISSING in current", row.key);
                }
                (None, Some(_)) => {
                    let _ = writeln!(out, "{}: new in current", row.key);
                }
                (None, None) => unreachable!("row key from neither side"),
            }
        }
        out
    }
}

/// Parses one flat JSON object of string/number/boolean values — exactly
/// the grammar [`JsonRow`](crate::JsonRow) emits.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    expect(bytes, &mut pos, b'{')?;
    skip_ws(bytes, &mut pos);
    if peek(bytes, pos) == Some(b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let key = parse_string(line, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        expect(bytes, &mut pos, b':')?;
        skip_ws(bytes, &mut pos);
        let value = parse_value(line, bytes, &mut pos)?;
        fields.push((key, value));
        skip_ws(bytes, &mut pos);
        match peek(bytes, pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(fields),
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(peek(bytes, *pos), Some(b' ' | b'\t')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if peek(bytes, *pos) == Some(want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", want as char))
    }
}

fn parse_value(line: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match peek(bytes, *pos) {
        Some(b'"') => parse_string(line, bytes, pos).map(Value::Str),
        Some(b't') if line[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if line[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(c) if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while matches!(
                peek(bytes, *pos),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                *pos += 1;
            }
            line[start..*pos]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unsupported value at byte {pos}", pos = *pos)),
    }
}

fn parse_string(line: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match peek(bytes, *pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match peek(bytes, *pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = line.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 character.
                let rest = &line[*pos..];
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = concat!(
        r#"{"table":"table1","k":16,"gates":1088,"time_s":0.12,"reduction_steps":512,"peak_terms":300,"peak_mem_bytes":1048576,"result":"Z=A*B"}"#,
        "\n",
        r#"{"table":"table3","k":8,"sat_verdict":"eq","sat_time_s":0.5,"guided_verdict":"eq","guided_time_s":0.01}"#,
        "\n",
        r#"{"table":"table4","ablation":"case2_cost","k":16,"trials":10,"case1":7,"case2":3,"case2_total_s":0.4}"#,
        "\n",
    );

    #[test]
    fn rows_parse_and_key() {
        let rows = parse_rows(BASE).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].key, "table1 k=16");
        assert_eq!(rows[2].key, "table4/case2_cost k=16");
        assert_eq!(rows[0].field("gates").unwrap().as_int(), Some(1088));
        assert_eq!(
            rows[0].field("result"),
            Some(&Value::Str("Z=A*B".to_string()))
        );
    }

    #[test]
    fn malformed_line_is_numbered() {
        let err = parse_rows("{\"table\":\"t\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn self_diff_is_clean() {
        let rows = || parse_rows(BASE).unwrap();
        let d = BenchDiff::compute(rows(), rows());
        assert!(d.regressions(0.0).is_empty());
        assert!(d.render().contains("table1 k=16: unchanged"));
    }

    #[test]
    fn wall_time_and_memory_never_gate() {
        let cur = BASE
            .replace("\"time_s\":0.12", "\"time_s\":99.0")
            .replace("\"peak_mem_bytes\":1048576", "\"peak_mem_bytes\":99999999")
            .replace("\"sat_time_s\":0.5", "\"sat_time_s\":50.0");
        let d = BenchDiff::compute(parse_rows(BASE).unwrap(), parse_rows(&cur).unwrap());
        assert!(d.regressions(0.0).is_empty());
        // ... but they do show up as informational context.
        assert!(d.render().contains("(info)"));
    }

    #[test]
    fn step_growth_gates_with_threshold() {
        let cur = BASE.replace("\"reduction_steps\":512", "\"reduction_steps\":600");
        let d = BenchDiff::compute(parse_rows(BASE).unwrap(), parse_rows(&cur).unwrap());
        // +17%: above a 5% threshold, below a 50% one.
        let regs = d.regressions(5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "table1 k=16");
        assert_eq!(regs[0].field, "reduction_steps");
        assert!(d.regressions(50.0).is_empty());
        // Shrinking steps is an improvement.
        let d = BenchDiff::compute(parse_rows(&cur).unwrap(), parse_rows(BASE).unwrap());
        assert!(d.regressions(0.0).is_empty());
    }

    #[test]
    fn verdict_flip_always_gates() {
        let cur = BASE.replace(
            "\"guided_verdict\":\"eq\"",
            "\"guided_verdict\":\"give-up\"",
        );
        let d = BenchDiff::compute(parse_rows(BASE).unwrap(), parse_rows(&cur).unwrap());
        let regs = d.regressions(1000.0); // threshold does not apply to verdicts
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "guided_verdict");
    }

    #[test]
    fn missing_row_is_a_regression_new_row_is_not() {
        let rows = parse_rows(BASE).unwrap();
        let fewer: Vec<Row> = parse_rows(BASE)
            .unwrap()
            .into_iter()
            .filter(|r| r.key != "table3 k=8")
            .collect();
        let d = BenchDiff::compute(rows, fewer);
        let regs = d.regressions(0.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "<missing row>");
        // The reverse (a new row in current) is fine.
        let d = BenchDiff::compute(
            parse_rows(BASE)
                .unwrap()
                .into_iter()
                .filter(|r| r.key != "table3 k=8")
                .collect(),
            parse_rows(BASE).unwrap(),
        );
        assert!(d.regressions(0.0).is_empty());
    }
}
