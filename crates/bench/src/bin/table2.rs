//! **Table 2 of the paper** — Abstraction of Montgomery blocks.
//!
//! "Table II depicts the results for Montgomery multipliers. BLK A and B
//! denote the input blocks, BLK Mid denotes the middle block and BLK Out
//! is the output block. … First, a polynomial is extracted for each block,
//! and then the approach is re-applied at word-level to derive the
//! input-output relation (solved trivially in < 1 second). Our approach
//! can extract the word-level polynomial for up to 571-bit circuits!"
//!
//! Paper totals (seconds): k=163: 636, k=233: 1909, k=283: 8186,
//! k=409: 34002, k=571: 87458.
//!
//! Run: `cargo run --release -p gfab-bench --bin table2 [--full] [k ...]`
//! Default sweep: 8 16 32 64 163; `--full` adds 233 283 409 571.

use gfab_bench::{fmt_gates, fmt_mb, fmt_secs, PeakAlloc, TableArgs};
use gfab_circuits::montgomery_multiplier_hier;
use gfab_core::hier::extract_hierarchical;
use gfab_core::ExtractOptions;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let args = TableArgs::parse();
    let ks = args.sweep(&[8, 16, 32, 64, 163], &[233, 283, 409, 571]);

    println!("Table 2: Abstraction of Montgomery blocks (Fig. 1: AR, BR, ABR, G)");
    println!("(paper totals: k=163: 636 s ... k=571: 87458 s)\n");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "k",
        "gA",
        "gB",
        "gMid",
        "gOut",
        "tA_s",
        "tB_s",
        "tMid_s",
        "tOut_s",
        "compose",
        "total_s",
        "mem_MB",
        "result"
    );
    for k in ks {
        let Some(p) = irreducible_polynomial(k) else {
            eprintln!("{k:>5}  no irreducible polynomial found");
            continue;
        };
        let ctx = GfContext::shared(p).expect("irreducible");
        let design = montgomery_multiplier_hier(&ctx);
        let gates: Vec<usize> = design
            .blocks
            .iter()
            .map(|b| b.netlist.num_gates())
            .collect();
        ALLOC.reset_peak();
        let t = Instant::now();
        let result = extract_hierarchical(&design, &ctx, &ExtractOptions::default())
            .expect("all blocks are Case 1");
        let total = t.elapsed();
        let times: Vec<String> = result
            .blocks
            .iter()
            .map(|(_, _, s)| fmt_secs(s.duration))
            .collect();
        let verdict = if format!("{}", result.function.display()) == "A*B" {
            "G=A*B"
        } else {
            "WRONG"
        };
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
            k,
            fmt_gates(gates[0]),
            fmt_gates(gates[1]),
            fmt_gates(gates[2]),
            fmt_gates(gates[3]),
            times[0],
            times[1],
            times[2],
            times[3],
            fmt_secs(result.compose_time),
            fmt_secs(total),
            fmt_mb(ALLOC.peak_bytes()),
            verdict
        );
    }
}
