//! **Table 2 of the paper** — Abstraction of Montgomery blocks.
//!
//! "Table II depicts the results for Montgomery multipliers. BLK A and B
//! denote the input blocks, BLK Mid denotes the middle block and BLK Out
//! is the output block. … First, a polynomial is extracted for each block,
//! and then the approach is re-applied at word-level to derive the
//! input-output relation (solved trivially in < 1 second). Our approach
//! can extract the word-level polynomial for up to 571-bit circuits!"
//!
//! Paper totals (seconds): k=163: 636, k=233: 1909, k=283: 8186,
//! k=409: 34002, k=571: 87458.
//!
//! Run: `cargo run --release -p gfab-bench --bin table2
//!       [--full] [--threads N] [k ...]`
//! Default sweep: 8 16 32 64 163; `--full` adds 233 283 409 571.
//! With `--threads N` (N ≠ 1) each row is additionally run serially and a
//! speedup column is printed; the two runs must produce byte-identical
//! polynomials.

use gfab_bench::{fmt_gates, fmt_mb, fmt_secs, JsonRow, PeakAlloc, TableArgs};
use gfab_circuits::montgomery_multiplier_hier;
use gfab_core::hier::extract_hierarchical;
use gfab_core::ExtractOptions;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let args = TableArgs::parse();
    let ks = args.sweep(&[8, 16, 32, 64, 163], &[233, 283, 409, 571]);
    let options = ExtractOptions::default().with_threads(args.threads);
    let compare_serial = options.effective_threads() > 1;

    if !args.json {
        println!("Table 2: Abstraction of Montgomery blocks (Fig. 1: AR, BR, ABR, G)");
        println!(
            "(paper totals: k=163: 636 s ... k=571: 87458 s; threads = {})\n",
            options.effective_threads()
        );
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}{}",
            "k",
            "gA",
            "gB",
            "gMid",
            "gOut",
            "tA_s",
            "tB_s",
            "tMid_s",
            "tOut_s",
            "model_s",
            "reduce_s",
            "compose",
            "total_s",
            "mem_MB",
            "result",
            if compare_serial { "  serial_s  speedup" } else { "" }
        );
    }
    for k in ks {
        let Some(p) = irreducible_polynomial(k) else {
            eprintln!("{k:>5}  no irreducible polynomial found");
            continue;
        };
        let ctx = GfContext::shared(p).expect("irreducible");
        let design = montgomery_multiplier_hier(&ctx);
        let gates: Vec<usize> = design
            .blocks
            .iter()
            .map(|b| b.netlist.num_gates())
            .collect();
        ALLOC.reset_peak();
        let t = Instant::now();
        let result = extract_hierarchical(&design, &ctx, &options).expect("all blocks are Case 1");
        let total = t.elapsed();
        let peak_mb = fmt_mb(ALLOC.peak_bytes());
        let times: Vec<String> = result
            .blocks
            .iter()
            .map(|(_, _, s)| fmt_secs(s.duration))
            .collect();
        // Per-phase wall clock, summed over blocks (with > 1 thread the
        // blocks overlap, so these exceed the elapsed total by design).
        let model_s: std::time::Duration = result.blocks.iter().map(|(_, _, s)| s.model_time).sum();
        let reduce_s: std::time::Duration =
            result.blocks.iter().map(|(_, _, s)| s.reduce_time).sum();
        let verdict = if format!("{}", result.function.display()) == "A*B" {
            "G=A*B"
        } else {
            "WRONG"
        };
        let tail = if compare_serial {
            let t = Instant::now();
            let serial = extract_hierarchical(&design, &ctx, &options.clone().with_threads(1))
                .expect("all blocks are Case 1");
            let serial_total = t.elapsed();
            assert_eq!(
                serial.function.poly(),
                result.function.poly(),
                "k={k}: serial and threaded polynomials differ"
            );
            format!(
                "  {:>8} {:>8.2}x",
                fmt_secs(serial_total),
                serial_total.as_secs_f64() / total.as_secs_f64().max(1e-9)
            )
        } else {
            String::new()
        };
        if args.json {
            let mut row = JsonRow::new("table2")
                .num("k", k as u64)
                .num("threads", options.effective_threads() as u64);
            for (i, (name, _, s)) in result.blocks.iter().enumerate() {
                row = row
                    .num(&format!("gates_{name}"), gates[i] as u64)
                    .secs(&format!("time_{name}_s"), s.duration);
            }
            row.secs("model_s", model_s)
                .secs("reduce_s", reduce_s)
                .secs("compose_s", result.compose_time)
                .secs("total_s", total)
                .num("peak_mem_bytes", ALLOC.peak_bytes() as u64)
                .str("result", verdict)
                .emit();
        } else {
            println!(
                "{:>5} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}{}",
                k,
                fmt_gates(gates[0]),
                fmt_gates(gates[1]),
                fmt_gates(gates[2]),
                fmt_gates(gates[3]),
                times[0],
                times[1],
                times[2],
                times[3],
                fmt_secs(model_s),
                fmt_secs(reduce_s),
                fmt_secs(result.compose_time),
                fmt_secs(total),
                peak_mb,
                verdict,
                tail
            );
        }
    }
}
