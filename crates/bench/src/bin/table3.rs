//! **Method-comparison table** (Section 6 text + Tables I/II of \[5\]):
//! who can prove Mastrovito ≡ Montgomery at which datapath width?
//!
//! The paper reports: ABC/CSAT miters die beyond 16-bit; SINGULAR full GB
//! dies beyond 32-bit; the Lv-Kalla-Enescu ideal-membership tool \[5\] dies
//! beyond 163-bit; the paper's guided abstraction reaches 409-bit
//! (flattened) / 571-bit (hierarchical).
//!
//! We run all four engines with explicit budgets so give-ups are graceful:
//!
//! * SAT: CDCL on the miter, conflict budget (default 300k conflicts);
//! * full GB: Buchberger with pair/size limits;
//! * ideal membership: reduce `Z + A·B` modulo the circuit (needs spec);
//! * guided abstraction: extract both canonical forms and coefficient-match.
//!
//! Run: `cargo run --release -p gfab-bench --bin table3 [--full] [k ...]`
//! Default sweep: 2 3 4 6 8 10 12 16; `--full` adds 24 32 48 64.

use gfab_bench::{fmt_secs, JsonRow, TableArgs};
use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab_core::equiv::{check_equivalence, Verdict};
use gfab_core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab_core::ideal_membership::{multiplier_spec, spec_ring, verify_against_spec};
use gfab_core::ExtractOptions;
use gfab_field::budget::BudgetSpec;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use gfab_poly::buchberger::GbLimits;
use gfab_sat::equiv::{check_equivalence_sat_with, SatVerdict};
use std::time::Instant;

const SAT_CONFLICT_BUDGET: u64 = 300_000;
/// Per-cell wall-clock "timeout" (the paper used 24 h; we use 2 min;
/// override with `--timeout SECS`).
const WALL_BUDGET: std::time::Duration = std::time::Duration::from_secs(120);

fn main() {
    let args = TableArgs::parse();
    let wall = args.wall_budget(WALL_BUDGET);
    let ks = args.sweep(&[2, 3, 4, 6, 8, 10, 12, 16], &[24, 32, 48, 64]);

    if !args.json {
        println!("Method comparison: prove Mastrovito == Montgomery (flattened miter)");
        println!("(paper: SAT dies >16 bit, full GB >32 bit, [5] >163 bit, ours 409+)\n");
        println!(
            "{:>4} {:>12} {:>14} {:>16} {:>14}",
            "k", "sat_miter", "full_groebner", "ideal_member[5]", "guided(ours)"
        );
    }

    for k in ks {
        let Some(p) = irreducible_polynomial(k) else {
            continue;
        };
        let ctx = GfContext::shared(p).expect("irreducible");
        let spec = mastrovito_multiplier(&ctx);
        let impl_ = montgomery_multiplier_hier(&ctx).flatten();

        // (a) SAT miter.
        let t = Instant::now();
        let sat = check_equivalence_sat_with(&spec, &impl_, SAT_CONFLICT_BUDGET, Some(wall));
        let sat_time = t.elapsed();
        let sat_verdict = match sat.verdict {
            SatVerdict::Equivalent => "eq".to_string(),
            SatVerdict::Counterexample(_) => "CEX".to_string(),
            SatVerdict::Unknown(_) => "give-up".to_string(),
        };
        let sat_cell = cell(&sat_verdict, sat_time);

        // (b) Full Gröbner basis abstraction on the (smaller) spec circuit.
        let gb_limits = GbLimits {
            max_pair_reductions: 20_000,
            max_basis: 5_000,
            max_poly_terms: 2_000_000,
            max_wall_ms: wall.as_millis() as u64,
        };
        let t = Instant::now();
        let gb_verdict =
            match full_gb_abstraction(&spec, &ctx, CircuitVarOrder::ReverseTopological, &gb_limits)
            {
                Ok(FullGbOutcome::Canonical { .. }) => "eq".to_string(),
                Ok(FullGbOutcome::GaveUp { .. }) => "give-up".to_string(),
                Err(e) => format!("err:{e}"),
            };
        let gb_time = t.elapsed();
        let gb_cell = cell(&gb_verdict, gb_time);

        // (c) Ideal membership \[5\] on the impl circuit (spec poly given).
        let t = Instant::now();
        let sr = spec_ring(&impl_, &ctx);
        let f = multiplier_spec(&sr, &ctx);
        let im_verdict = match verify_against_spec(&impl_, &ctx, &sr, &f) {
            Ok(out) if out.verified => "eq".to_string(),
            Ok(_) => "REFUTED".to_string(),
            Err(e) => format!("err:{e}"),
        };
        let im_time = t.elapsed();
        let im_cell = cell(&im_verdict, im_time);

        // (d) Guided abstraction (ours): full equivalence check, under the
        // same per-cell wall budget as the baselines (budget exhaustion
        // shows up as a graceful give-up cell, not an abort).
        let options = ExtractOptions::default().with_budget(BudgetSpec::wall(wall));
        let t = Instant::now();
        let ours_verdict = match check_equivalence(&spec, &impl_, &ctx, &options) {
            Ok(report) if report.verdict.is_equivalent() => "eq".to_string(),
            Ok(report) => match report.verdict {
                Verdict::Unknown { .. } => "give-up".to_string(),
                _ => "INEQ".to_string(),
            },
            Err(e) => format!("err:{e}"),
        };
        let ours_time = t.elapsed();
        let ours_cell = cell(&ours_verdict, ours_time);

        if args.json {
            JsonRow::new("table3")
                .num("k", k as u64)
                .str("sat_verdict", &sat_verdict)
                .secs("sat_time_s", sat_time)
                .str("fullgb_verdict", &gb_verdict)
                .secs("fullgb_time_s", gb_time)
                .str("ideal_verdict", &im_verdict)
                .secs("ideal_time_s", im_time)
                .str("guided_verdict", &ours_verdict)
                .secs("guided_time_s", ours_time)
                .emit();
        } else {
            println!("{k:>4} {sat_cell:>12} {gb_cell:>14} {im_cell:>16} {ours_cell:>14}");
        }
    }
}

/// A human table cell: `eq <secs>` for decided runs, the bare verdict for
/// give-ups and errors.
fn cell(verdict: &str, elapsed: std::time::Duration) -> String {
    match verdict {
        "eq" | "CEX" => format!("{verdict} {}", fmt_secs(elapsed)),
        other => other.to_string(),
    }
}
