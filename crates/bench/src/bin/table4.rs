//! **Ablations** of the design choices the paper calls out:
//!
//! 1. **RATO vs. arbitrary variable order** (Definition 4.2 vs. 5.1): the
//!    product-criterion collapse is what makes the guided flow possible.
//!    We measure Buchberger effort under both circuit-variable orders.
//! 2. **Case-2 completion cost**: buggy circuits leave primary-input bits
//!    in the remainder; the completion Gröbner basis is "a much simplified
//!    computation" (Section 5) — but how much does it cost as k grows?
//! 3. **Constant-operand blocks**: the paper's Table 2 notes Blk A/B/Out
//!    are "simplified by constant-propagation". We compare extracting the
//!    constant-folded block vs. the full two-operand block.
//!
//! Run: `cargo run --release -p gfab-bench --bin table4 [--json]`

use gfab_bench::{fmt_secs, JsonRow, TableArgs};
use gfab_circuits::{mastrovito_multiplier, monpro, MonproOperand};
use gfab_core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab_core::{extract_word_polynomial, extract_word_polynomial_with, ExtractOptions};
use gfab_field::budget::BudgetSpec;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use gfab_netlist::mutate::inject_random_bug;
use gfab_poly::buchberger::GbLimits;
use std::time::Instant;

fn main() {
    let args = TableArgs::parse();
    ablation_variable_order(&args);
    ablation_case2_cost(&args);
    ablation_constant_blocks(&args);
}

fn ablation_variable_order(args: &TableArgs) {
    if !args.json {
        println!("Ablation 1: full-GB effort, RATO vs. declaration variable order");
        println!(
            "{:>4} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "k", "pairs_rato", "pairs_decl", "pruned_rato", "pruned_decl", "t_rato", "t_decl"
        );
    }
    let limits = GbLimits {
        max_pair_reductions: 200_000,
        ..GbLimits::default()
    };
    for k in [2usize, 3] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        let mut cells = Vec::new();
        for order in [
            CircuitVarOrder::ReverseTopological,
            CircuitVarOrder::Declaration,
        ] {
            let t = Instant::now();
            match full_gb_abstraction(&nl, &ctx, order, &limits).unwrap() {
                FullGbOutcome::Canonical { stats, .. } => {
                    cells.push((
                        stats.pairs_reduced.to_string(),
                        (stats.pairs_skipped_product + stats.pairs_skipped_chain).to_string(),
                        fmt_secs(t.elapsed()),
                    ));
                }
                FullGbOutcome::GaveUp { stats, .. } => {
                    cells.push((
                        format!("{}+", stats.pairs_reduced),
                        (stats.pairs_skipped_product + stats.pairs_skipped_chain).to_string(),
                        "give-up".to_string(),
                    ));
                }
            }
        }
        if args.json {
            JsonRow::new("table4")
                .str("ablation", "variable_order")
                .num("k", k as u64)
                .str("pairs_rato", &cells[0].0)
                .str("pairs_decl", &cells[1].0)
                .str("pruned_rato", &cells[0].1)
                .str("pruned_decl", &cells[1].1)
                .str("t_rato_s", &cells[0].2)
                .str("t_decl_s", &cells[1].2)
                .emit();
        } else {
            println!(
                "{:>4} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
                k, cells[0].0, cells[1].0, cells[0].1, cells[1].1, cells[0].2, cells[1].2
            );
        }
    }
    if !args.json {
        println!();
    }
}

fn ablation_case2_cost(args: &TableArgs) {
    if !args.json {
        println!("Ablation 2: Case-2 completion cost on buggy Mastrovito multipliers");
        println!(
            "{:>4} {:>6} {:>14} {:>14} {:>12}",
            "k", "bugs", "case1(benign)", "case2(buggy)", "avg_t_case2"
        );
    }
    // A deterministic *work* budget instead of the default 15 s wall
    // limit: whether a completion finishes or is capped is then identical
    // on every machine (work units are machine-independent), so the
    // emitted counts can gate CI, and the sweep's wall time stays bounded
    // on slow hardware. The largest completions at k = 5 land well under
    // this cap; a capped trial is reported, not a panic.
    let options = ExtractOptions {
        gb_limits: GbLimits {
            max_wall_ms: 0,
            ..GbLimits::default()
        },
        budget: BudgetSpec::work(5_000_000),
        ..ExtractOptions::default()
    };
    for k in [2usize, 3, 4, 5] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let golden = mastrovito_multiplier(&ctx);
        let (mut case1, mut case2, mut capped) = (0usize, 0usize, 0usize);
        let mut case2_time = std::time::Duration::ZERO;
        let trials = 8u64;
        for seed in 0..trials {
            let (bad, _) = inject_random_bug(&golden, seed);
            let t = Instant::now();
            let result = extract_word_polynomial_with(&bad, &ctx, &options).expect("extraction");
            if result.stats.case2_completion {
                case2 += 1;
                case2_time += t.elapsed();
            } else {
                case1 += 1;
            }
            if result.canonical().is_none() {
                capped += 1;
            }
        }
        let avg = if case2 > 0 {
            fmt_secs(case2_time / case2 as u32)
        } else {
            "-".into()
        };
        if args.json {
            JsonRow::new("table4")
                .str("ablation", "case2_cost")
                .num("k", k as u64)
                .num("trials", trials)
                .num("case1", case1 as u64)
                .num("case2", case2 as u64)
                .num("capped", capped as u64)
                .secs("case2_total_s", case2_time)
                .emit();
        } else {
            println!("{k:>4} {trials:>6} {case1:>14} {case2:>14} {avg:>12}");
            if capped > 0 {
                println!("     ({capped} completion(s) hit the work budget)");
            }
        }
    }
    if !args.json {
        println!();
    }
}

fn ablation_constant_blocks(args: &TableArgs) {
    if !args.json {
        println!("Ablation 3: constant-operand MonPro blocks vs. full two-operand blocks");
        println!(
            "{:>4} {:>12} {:>12} {:>10} {:>10} {:>8}",
            "k", "gates_const", "gates_full", "t_const", "t_full", "ratio"
        );
    }
    for k in args.sweep(&[16, 32, 64, 163], &[]) {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let constant = monpro(&ctx, "c", MonproOperand::Const(ctx.montgomery_r2()));
        let full = monpro(&ctx, "f", MonproOperand::Word);
        let t = Instant::now();
        extract_word_polynomial(&constant, &ctx).expect("const block");
        let t_const = t.elapsed();
        let t = Instant::now();
        extract_word_polynomial(&full, &ctx).expect("full block");
        let t_full = t.elapsed();
        if args.json {
            JsonRow::new("table4")
                .str("ablation", "constant_blocks")
                .num("k", k as u64)
                .num("gates_const", constant.num_gates() as u64)
                .num("gates_full", full.num_gates() as u64)
                .secs("t_const_s", t_const)
                .secs("t_full_s", t_full)
                .emit();
        } else {
            println!(
                "{:>4} {:>12} {:>12} {:>10} {:>10} {:>8.2}",
                k,
                constant.num_gates(),
                full.num_gates(),
                fmt_secs(t_const),
                fmt_secs(t_full),
                t_full.as_secs_f64() / t_const.as_secs_f64().max(1e-9)
            );
        }
    }
}
