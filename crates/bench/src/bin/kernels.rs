//! Coefficient-kernel microbenchmark and differential gate.
//!
//! Exercises the zero-allocation GF(2^k) kernels (windowed comb multiply,
//! spread-table squaring, precomputed modular reduction, batch inversion)
//! against the bit-serial `gfab_field::reference` oracle.
//!
//! Modes:
//!
//! * default — timing sweep: per-op latency of the kernel path vs the
//!   reference path at each k, with the speedup factor and inline-storage
//!   residency. `--json` emits one JSON object per row.
//! * `--smoke` — quick differential self-check over every NIST field plus
//!   small dense moduli; exits 1 on any mismatch (wired into `ci.sh`).
//! * `--pinned` — a fixed seeded workload whose output (kernel work
//!   counters + FNV-1a result checksum per field) is a pure function of
//!   the code, asserted exactly against `scripts/kernel_work_baseline.txt`
//!   by `perf_gate.sh`. No timings, so the output is machine-independent.
//!
//! Run: `cargo run --release -p gfab-bench --bin kernels [--smoke|--pinned] [--json] [k ...]`

use gfab_bench::JsonRow;
use gfab_field::nist::{irreducible_polynomial, NIST_DEGREES};
use gfab_field::rng::Rng;
use gfab_field::{kernel, reference, Gf, Gf2Poly, GfContext};
use std::time::{Duration, Instant};

/// Small dense (non-NIST) moduli exercised by `--smoke`: degrees chosen to
/// cross the limb boundaries (63/64/65) and the u64 packing edge.
const DENSE_SMOKE_DEGREES: [usize; 7] = [2, 8, 63, 64, 65, 128, 129];

fn main() {
    let mut smoke = false;
    let mut pinned = false;
    let mut json = false;
    let mut ks: Vec<usize> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--pinned" => pinned = true,
            "--json" => json = true,
            other => match other.parse::<usize>() {
                Ok(k) => ks.push(k),
                Err(_) => {
                    eprintln!("usage: kernels [--smoke|--pinned] [--json] [k ...]");
                    std::process::exit(2);
                }
            },
        }
    }
    if smoke {
        run_smoke();
    } else if pinned {
        run_pinned();
    } else {
        let sweep = if ks.is_empty() {
            vec![64, 163, 233, 283, 409, 571]
        } else {
            ks
        };
        run_timing(&sweep, json);
    }
}

/// A random reduced element of the field (dense, degree < k).
fn random_element(ctx: &GfContext, rng: &mut Rng) -> Gf {
    ctx.random(rng)
}

/// FNV-1a over the limb bytes of a polynomial, for pinned checksums.
fn fnv1a(acc: u64, p: &Gf2Poly) -> u64 {
    let mut h = acc;
    for &limb in p.limbs() {
        for b in limb.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// --smoke: differential self-check (new kernels vs reference oracle)
// ---------------------------------------------------------------------------

fn smoke_field(ctx: &GfContext, rng: &mut Rng, checks: &mut u64) {
    let m = ctx.modulus().clone();
    let pairs = 8usize;
    let mut batch = Vec::new();
    for _ in 0..pairs {
        let a = random_element(ctx, rng);
        let b = random_element(ctx, rng);
        let want_mul = reference::field_mul(&m, a.as_poly(), b.as_poly());
        let got_mul = ctx.mul(&a, &b);
        assert_differential(ctx.k(), "mul", got_mul.as_poly(), &want_mul);
        let want_sq = reference::field_square(&m, a.as_poly());
        let got_sq = ctx.square(&a);
        assert_differential(ctx.k(), "square", got_sq.as_poly(), &want_sq);
        if !a.is_zero() {
            let want_inv = reference::field_inv(&m, a.as_poly()).expect("nonzero inverts");
            let got_inv = ctx.inv(&a).expect("nonzero inverts");
            assert_differential(ctx.k(), "inv", got_inv.as_poly(), &want_inv);
            batch.push(a.clone());
        }
        *checks += 3;
    }
    // Batch inversion must agree with the element-at-a-time path.
    let inv = ctx.batch_inv(&batch).expect("no zeros in batch");
    for (x, xi) in batch.iter().zip(&inv) {
        assert!(
            ctx.mul(x, xi).is_one(),
            "k={}: batch_inv produced a non-inverse",
            ctx.k()
        );
        *checks += 1;
    }
    // Edge cases: zero annihilates, one is neutral, alpha matches x.
    let alpha = ctx.alpha();
    assert!(ctx.mul(&ctx.zero(), &alpha).is_zero());
    assert_eq!(ctx.mul(&ctx.one(), &alpha), alpha);
    assert_eq!(
        ctx.square(&alpha).as_poly(),
        &reference::field_square(&m, &Gf2Poly::x())
    );
    *checks += 3;
}

fn assert_differential(k: usize, op: &str, got: &Gf2Poly, want: &Gf2Poly) {
    if got != want {
        eprintln!("kernel smoke FAILED: k={k} {op}: kernel={got} reference={want}");
        std::process::exit(1);
    }
}

fn run_smoke() {
    let mut rng = Rng::seed_from_u64(0x5EED_5EED);
    let mut checks = 0u64;
    for k in NIST_DEGREES {
        let ctx = GfContext::new(irreducible_polynomial(k).expect("NIST k")).expect("irreducible");
        smoke_field(&ctx, &mut rng, &mut checks);
    }
    for k in DENSE_SMOKE_DEGREES {
        let ctx = GfContext::new(irreducible_polynomial(k).expect("table k")).expect("irreducible");
        smoke_field(&ctx, &mut rng, &mut checks);
    }
    println!("kernel smoke OK ({checks} differential checks)");
}

// ---------------------------------------------------------------------------
// --pinned: machine-independent work profile for the perf gate
// ---------------------------------------------------------------------------

fn run_pinned() {
    let mut total = kernel::KernelCounts::new();
    let mut checksum = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for k in NIST_DEGREES {
        let ctx = GfContext::new(irreducible_polynomial(k).expect("NIST k")).expect("irreducible");
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00 ^ k as u64);
        let elems: Vec<Gf> = (0..64).map(|_| random_element(&ctx, &mut rng)).collect();
        let before = kernel::snapshot();
        let mut field_sum = checksum;
        for pair in elems.chunks(2) {
            let p = ctx.mul(&pair[0], &pair[1]);
            field_sum = fnv1a(field_sum, p.as_poly());
            let s = ctx.square(&pair[0]);
            field_sum = fnv1a(field_sum, s.as_poly());
        }
        let nonzero: Vec<Gf> = elems.iter().filter(|e| !e.is_zero()).cloned().collect();
        for inv in ctx.batch_inv(&nonzero).expect("no zeros") {
            field_sum = fnv1a(field_sum, inv.as_poly());
        }
        let delta = kernel::snapshot().delta_since(&before);
        checksum = field_sum;
        println!(
            "k={k} coeff-muls={} coeff-squares={} reduction-folds={} inline={} heap={} checksum={:016x}",
            delta.coeff_muls,
            delta.coeff_squares,
            delta.reduction_folds,
            delta.inline_results,
            delta.heap_results,
            field_sum,
        );
        total = total_add(&total, &delta);
    }
    println!(
        "total coeff-muls={} coeff-squares={} reduction-folds={} inline={} heap={} checksum={checksum:016x}",
        total.coeff_muls,
        total.coeff_squares,
        total.reduction_folds,
        total.inline_results,
        total.heap_results,
    );
}

fn total_add(a: &kernel::KernelCounts, b: &kernel::KernelCounts) -> kernel::KernelCounts {
    kernel::KernelCounts {
        coeff_muls: a.coeff_muls + b.coeff_muls,
        coeff_squares: a.coeff_squares + b.coeff_squares,
        reduction_folds: a.reduction_folds + b.reduction_folds,
        inline_results: a.inline_results + b.inline_results,
        heap_results: a.heap_results + b.heap_results,
    }
}

// ---------------------------------------------------------------------------
// default: timing sweep, kernel vs reference
// ---------------------------------------------------------------------------

/// Times `f` over repeated passes until ~40 ms has elapsed; returns the
/// best per-call latency in nanoseconds.
fn best_ns_per_call(calls_per_pass: usize, mut f: impl FnMut()) -> f64 {
    let budget = Duration::from_millis(40);
    let mut best = f64::INFINITY;
    let mut spent = Duration::ZERO;
    let mut passes = 0u32;
    while spent < budget || passes < 3 {
        let t = Instant::now();
        f();
        let dt = t.elapsed();
        spent += dt;
        passes += 1;
        best = best.min(dt.as_nanos() as f64 / calls_per_pass as f64);
    }
    best
}

fn run_timing(sweep: &[usize], json: bool) {
    if !json {
        println!("Coefficient-kernel timings (kernel path vs bit-serial reference)\n");
        println!(
            "{:>5} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>8}",
            "k", "mul_ns", "ref_mul_ns", "speedup", "sq_ns", "ref_sq_ns", "sq_spdup", "inline%"
        );
    }
    for &k in sweep {
        let Some(p) = irreducible_polynomial(k) else {
            eprintln!("{k:>5}  no irreducible polynomial found");
            continue;
        };
        let m = p.clone();
        let ctx = GfContext::new(p).expect("irreducible");
        let mut rng = Rng::seed_from_u64(0xBE2C_0000 ^ k as u64);
        let elems: Vec<Gf> = (0..128).map(|_| random_element(&ctx, &mut rng)).collect();
        let pairs: Vec<(&Gf, &Gf)> = elems.chunks(2).map(|c| (&c[0], &c[1])).collect();

        let before = kernel::snapshot();
        let mul_ns = best_ns_per_call(pairs.len(), || {
            for (a, b) in &pairs {
                std::hint::black_box(ctx.mul(a, b));
            }
        });
        let sq_ns = best_ns_per_call(elems.len(), || {
            for a in &elems {
                std::hint::black_box(ctx.square(a));
            }
        });
        let delta = kernel::snapshot().delta_since(&before);
        let results = delta.inline_results + delta.heap_results;
        let inline_pct = if results == 0 {
            0.0
        } else {
            100.0 * delta.inline_results as f64 / results as f64
        };

        let ref_mul_ns = best_ns_per_call(pairs.len(), || {
            for (a, b) in &pairs {
                std::hint::black_box(reference::field_mul(&m, a.as_poly(), b.as_poly()));
            }
        });
        let ref_sq_ns = best_ns_per_call(elems.len(), || {
            for a in &elems {
                std::hint::black_box(reference::field_square(&m, a.as_poly()));
            }
        });

        let speedup = ref_mul_ns / mul_ns;
        let sq_speedup = ref_sq_ns / sq_ns;
        if json {
            JsonRow::new("kernels")
                .num("k", k as u64)
                .num("mul_ns", mul_ns as u64)
                .num("ref_mul_ns", ref_mul_ns as u64)
                .str("speedup", &format!("{speedup:.1}"))
                .num("square_ns", sq_ns as u64)
                .num("ref_square_ns", ref_sq_ns as u64)
                .str("square_speedup", &format!("{sq_speedup:.1}"))
                .str("inline_pct", &format!("{inline_pct:.1}"))
                .emit();
        } else {
            println!(
                "{:>5} {:>12.0} {:>12.0} {:>8.1}x {:>12.0} {:>12.0} {:>8.1}x {:>7.1}%",
                k, mul_ns, ref_mul_ns, speedup, sq_ns, ref_sq_ns, sq_speedup, inline_pct
            );
        }
    }
}
