//! **Table 1 of the paper** — Abstraction of Mastrovito multipliers.
//!
//! "Table I depicts the time required to derive the polynomial abstraction
//! from Mastrovito circuits. The tool takes the circuit as input, performs
//! a reverse topological traversal to determine RATO, applies the approach
//! presented in Section 5 and derives the polynomial representation
//! Z = A·B."
//!
//! Paper rows (Intel Xeon, 96 GB, 24 h timeout):
//!
//! | k    | 163  | 233  | 283   | 409   | 571 |
//! | gates| 153K | 167K | 399K  | 508K  | 1.6M|
//! | time | 4351 | 5777 | 40114 | 72708 | TO  |
//! | mem  | (MB columns) |
//!
//! Run: `cargo run --release -p gfab-bench --bin table1 [--full] [k ...]`
//! Default sweep: 8 16 32 64 163; `--full` adds 233 283 409 571.

use gfab_bench::{fmt_gates, fmt_mb, fmt_secs, JsonRow, PeakAlloc, TableArgs};
use gfab_circuits::mastrovito_multiplier;
use gfab_core::extract_word_polynomial;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let args = TableArgs::parse();
    let ks = args.sweep(&[8, 16, 32, 64, 163], &[233, 283, 409, 571]);

    if !args.json {
        println!("Table 1: Abstraction of Mastrovito multipliers (Z = A*B)");
        println!("(paper: k=163 in 4351 s / 153K gates ... k=571 timed out at 24 h)\n");
        println!(
            "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10} {:>8}",
            "k", "gates", "time_s", "red.steps", "peak_terms", "mem_MB", "result"
        );
    }
    for k in ks {
        let Some(p) = irreducible_polynomial(k) else {
            eprintln!("{k:>5}  no irreducible polynomial found");
            continue;
        };
        let ctx = GfContext::shared(p).expect("irreducible");
        let nl = mastrovito_multiplier(&ctx);
        ALLOC.reset_peak();
        let t = Instant::now();
        let result = extract_word_polynomial(&nl, &ctx).expect("extraction succeeds");
        let elapsed = t.elapsed();
        let verdict = match result.canonical() {
            Some(f) if format!("{}", f.display()) == "A*B" => "Z=A*B",
            Some(_) => "WRONG",
            None => "residual",
        };
        if args.json {
            JsonRow::new("table1")
                .num("k", k as u64)
                .num("gates", nl.num_gates() as u64)
                .secs("time_s", elapsed)
                .num("reduction_steps", result.stats.reduction_steps)
                .num("peak_terms", result.stats.peak_terms as u64)
                .num("peak_mem_bytes", ALLOC.peak_bytes() as u64)
                .str("result", verdict)
                .emit();
        } else {
            println!(
                "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10} {:>8}",
                k,
                fmt_gates(nl.num_gates()),
                fmt_secs(elapsed),
                result.stats.reduction_steps,
                result.stats.peak_terms,
                fmt_mb(ALLOC.peak_bytes()),
                verdict
            );
        }
    }
}
