//! Shared harness utilities for the paper-table binaries: a peak-tracking
//! global allocator (the paper's "Max Mem" column), small formatting
//! helpers, and the [`diff`] module comparing two `--json` result files
//! (`gfab bench-diff`).

pub mod diff;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A wrapper around the system allocator that tracks current and peak
/// live allocation. Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: gfab_bench::PeakAlloc = gfab_bench::PeakAlloc::new();
/// ```
pub struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    /// A fresh tracker.
    pub const fn new() -> Self {
        PeakAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak bytes since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current level (per-experiment measurement).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates allocation to `System`; the atomic bookkeeping has no
// effect on the returned memory.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = self.current.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Formats a byte count as MB with one decimal.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.4}", s)
    } else if s < 1.0 {
        format!("{:.3}", s)
    } else {
        format!("{:.2}", s)
    }
}

/// Gate-count pretty printer (`153K`, `1.6M` style, like the paper).
pub fn fmt_gates(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Parses the common CLI flags of the table binaries: `--full` enables the
/// NIST-scale rows; `--threads N` sets the extraction thread budget;
/// `--timeout SECS` overrides the per-cell wall budget; `--json` switches
/// the output to one JSON object per row (machine-readable, consumed by
/// `scripts/bench.sh`); a trailing list of integers overrides the k sweep.
pub struct TableArgs {
    /// Whether `--full` was passed.
    pub full: bool,
    /// Explicit k values, if any were given.
    pub ks: Vec<usize>,
    /// Worker-thread budget (`0` = available parallelism).
    pub threads: usize,
    /// Per-cell wall-clock budget override, if `--timeout` was given.
    pub timeout: Option<std::time::Duration>,
    /// Whether `--json` was passed: emit one JSON object per row instead
    /// of the human-readable table.
    pub json: bool,
}

impl TableArgs {
    /// Parses `std::env::args`.
    pub fn parse() -> TableArgs {
        let mut full = false;
        let mut ks = Vec::new();
        let mut threads = 0usize;
        let mut timeout = None;
        let mut json = false;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if a == "--full" {
                full = true;
            } else if a == "--json" {
                json = true;
            } else if a == "--threads" {
                threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                });
            } else if a == "--timeout" {
                let secs: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--timeout needs a number of seconds");
                    std::process::exit(2);
                });
                timeout = Some(std::time::Duration::from_secs(secs));
            } else if let Ok(k) = a.parse::<usize>() {
                ks.push(k);
            } else {
                eprintln!("usage: [--full] [--json] [--threads N] [--timeout SECS] [k ...]");
                std::process::exit(2);
            }
        }
        TableArgs {
            full,
            ks,
            threads,
            timeout,
            json,
        }
    }

    /// The per-cell wall budget: `--timeout` if given, else `default`.
    pub fn wall_budget(&self, default: std::time::Duration) -> std::time::Duration {
        self.timeout.unwrap_or(default)
    }

    /// The k sweep: explicit values win; otherwise `quick`, extended by
    /// `nist_extra` under `--full`.
    pub fn sweep(&self, quick: &[usize], nist_extra: &[usize]) -> Vec<usize> {
        if !self.ks.is_empty() {
            return self.ks.clone();
        }
        let mut v = quick.to_vec();
        if self.full {
            v.extend_from_slice(nist_extra);
        }
        v
    }
}

/// An ordered JSON object builder for the table binaries' `--json` mode:
/// one object per row, keys in insertion order, no external dependencies.
///
/// ```
/// let row = gfab_bench::JsonRow::new("table1")
///     .num("k", 163)
///     .secs("time_s", std::time::Duration::from_millis(1500))
///     .str("result", "Z=A*B");
/// assert_eq!(
///     row.render(),
///     r#"{"table":"table1","k":163,"time_s":1.5,"result":"Z=A*B"}"#
/// );
/// ```
pub struct JsonRow {
    fields: Vec<(String, String)>,
}

impl JsonRow {
    /// Starts a row tagged with its table name (`"table": name`).
    pub fn new(table: &str) -> JsonRow {
        JsonRow { fields: Vec::new() }.str("table", table)
    }

    fn push(mut self, key: &str, encoded: String) -> JsonRow {
        self.fields.push((key.to_string(), encoded));
        self
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> JsonRow {
        let mut s = String::with_capacity(value.len() + 2);
        s.push('"');
        for c in value.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                c => s.push(c),
            }
        }
        s.push('"');
        self.push(key, s)
    }

    /// Adds an integer field.
    #[must_use]
    pub fn num(self, key: &str, value: u64) -> JsonRow {
        self.push(key, value.to_string())
    }

    /// Adds a duration field, in (fractional) seconds.
    #[must_use]
    pub fn secs(self, key: &str, value: std::time::Duration) -> JsonRow {
        self.push(key, format!("{}", value.as_secs_f64()))
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn flag(self, key: &str, value: bool) -> JsonRow {
        self.push(key, value.to_string())
    }

    /// Renders the object on one line.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            out.push_str(v);
        }
        out.push('}');
        out
    }

    /// Prints the rendered object to stdout.
    pub fn emit(&self) {
        println!("{}", self.render());
    }
}

pub mod timing {
    //! A minimal measurement harness for the workspace's `harness = false`
    //! bench targets: warm-up, repeat until a wall-clock budget, report
    //! min/mean. No external dependencies, so `cargo bench` works in
    //! offline builds.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Runs and times closures, printing one line per benchmark.
    pub struct Bench {
        budget: Duration,
        min_iters: u32,
        filter: Option<String>,
    }

    impl Bench {
        /// A harness with the given per-benchmark wall-clock budget; the
        /// first non-flag CLI argument (if any) is a name substring filter,
        /// so `cargo bench --bench X -- blk_mid` selects matching rows.
        pub fn from_args(budget: Duration) -> Bench {
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            Bench {
                budget,
                min_iters: 10,
                filter,
            }
        }

        /// Sets the minimum iteration count (default 10).
        #[must_use]
        pub fn min_iters(mut self, n: u32) -> Bench {
            self.min_iters = n.max(1);
            self
        }

        /// Times `f`, printing `name ... min <t> mean <t> (<n> iters)`.
        /// Skipped (with a note) when a filter is set and does not match.
        pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
            if let Some(filter) = &self.filter {
                if !name.contains(filter.as_str()) {
                    return;
                }
            }
            // Warm-up: one untimed call (page-in, lazy statics).
            black_box(f());
            let mut iters = 0u32;
            let mut total = Duration::ZERO;
            let mut min = Duration::MAX;
            while total < self.budget || iters < self.min_iters {
                let t = Instant::now();
                black_box(f());
                let dt = t.elapsed();
                total += dt;
                min = min.min(dt);
                iters += 1;
            }
            let mean = total / iters;
            println!("{name:40} min {min:>12.3?}  mean {mean:>12.3?}  ({iters} iters)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_harness_runs_and_reports() {
        let b = timing::Bench::from_args(std::time::Duration::from_millis(1));
        let mut calls = 0u32;
        b.run("noop", || calls += 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gates(512), "512");
        assert_eq!(fmt_gates(153_000), "153K");
        assert_eq!(fmt_gates(1_600_000), "1.6M");
        assert_eq!(fmt_mb(1024 * 1024), "1.0");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.50");
    }

    #[test]
    fn peak_alloc_tracks_growth() {
        // Not installed as the global allocator here; exercise the
        // bookkeeping directly through GlobalAlloc.
        let a = PeakAlloc::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(a.peak_bytes() >= 4096);
            a.dealloc(p, layout);
        }
        assert_eq!(a.current_bytes(), 0);
        a.reset_peak();
        assert_eq!(a.peak_bytes(), 0);
    }
}
