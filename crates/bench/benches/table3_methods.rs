//! Bench series for the method-comparison table: the four engines on the
//! same Mastrovito-vs-Montgomery instance. SAT and full-GB run at the
//! sizes they can stomach; the algebraic engines run at k = 8 where all
//! are comfortable (the crossover table itself is the `table3` binary).

use gfab_bench::timing::Bench;
use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab_core::equiv::check_equivalence;
use gfab_core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab_core::ideal_membership::{multiplier_spec, spec_ring, verify_against_spec};
use gfab_core::ExtractOptions;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use gfab_poly::buchberger::GbLimits;
use gfab_sat::equiv::{check_equivalence_sat, SatVerdict};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn setup(k: usize) -> (Arc<GfContext>, gfab_netlist::Netlist, gfab_netlist::Netlist) {
    let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    (ctx, spec, impl_)
}

fn main() {
    let bench = Bench::from_args(Duration::from_secs(3));

    for k in [4usize, 8, 16] {
        let (ctx, spec, impl_) = setup(k);
        bench.run(&format!("table3_guided_equivalence/{k}"), || {
            let r = check_equivalence(black_box(&spec), &impl_, &ctx, &ExtractOptions::default())
                .unwrap();
            assert!(r.verdict.is_equivalent());
        });
    }

    for k in [4usize, 8, 16] {
        let (ctx, _, impl_) = setup(k);
        let sr = spec_ring(&impl_, &ctx);
        let f = multiplier_spec(&sr, &ctx);
        bench.run(&format!("table3_ideal_membership/{k}"), || {
            let out = verify_against_spec(black_box(&impl_), &ctx, &sr, &f).unwrap();
            assert!(out.verified);
        });
    }

    for k in [2usize, 3, 4] {
        let (_, spec, impl_) = setup(k);
        bench.run(&format!("table3_sat_miter/{k}"), || {
            let r = check_equivalence_sat(black_box(&spec), &impl_, u64::MAX);
            assert_eq!(r.verdict, SatVerdict::Equivalent);
        });
    }

    for k in [2usize, 3] {
        let (ctx, spec, _) = setup(k);
        bench.run(
            &format!("table3_full_groebner/{k}"),
            || match full_gb_abstraction(
                black_box(&spec),
                &ctx,
                CircuitVarOrder::ReverseTopological,
                &GbLimits::default(),
            )
            .unwrap()
            {
                FullGbOutcome::Canonical { basis_size, .. } => basis_size,
                FullGbOutcome::GaveUp { reason, .. } => panic!("gave up: {reason}"),
            },
        );
    }
}
