//! Criterion series for the method-comparison table: the four engines on
//! the same Mastrovito-vs-Montgomery instance. SAT and full-GB run at the
//! sizes they can stomach; the algebraic engines run at k = 8 where all
//! are comfortable (the crossover table itself is the `table3` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfab_circuits::{mastrovito_multiplier, montgomery_multiplier_hier};
use gfab_core::equiv::check_equivalence;
use gfab_core::fullgb::{full_gb_abstraction, CircuitVarOrder, FullGbOutcome};
use gfab_core::ideal_membership::{multiplier_spec, spec_ring, verify_against_spec};
use gfab_core::ExtractOptions;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use gfab_poly::buchberger::GbLimits;
use gfab_sat::equiv::{check_equivalence_sat, SatVerdict};
use std::hint::black_box;
use std::sync::Arc;

fn setup(k: usize) -> (Arc<GfContext>, gfab_netlist::Netlist, gfab_netlist::Netlist) {
    let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
    let spec = mastrovito_multiplier(&ctx);
    let impl_ = montgomery_multiplier_hier(&ctx).flatten();
    (ctx, spec, impl_)
}

fn bench_guided(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_guided_equivalence");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [4usize, 8, 16] {
        let (ctx, spec, impl_) = setup(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = check_equivalence(
                    black_box(&spec),
                    &impl_,
                    &ctx,
                    &ExtractOptions::default(),
                )
                .unwrap();
                assert!(r.verdict.is_equivalent());
            })
        });
    }
    group.finish();
}

fn bench_ideal_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_ideal_membership");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [4usize, 8, 16] {
        let (ctx, _, impl_) = setup(k);
        let sr = spec_ring(&impl_, &ctx);
        let f = multiplier_spec(&sr, &ctx);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let out = verify_against_spec(black_box(&impl_), &ctx, &sr, &f).unwrap();
                assert!(out.verified);
            })
        });
    }
    group.finish();
}

fn bench_sat_miter(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_sat_miter");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [2usize, 3, 4] {
        let (_, spec, impl_) = setup(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = check_equivalence_sat(black_box(&spec), &impl_, u64::MAX);
                assert_eq!(r.verdict, SatVerdict::Equivalent);
            })
        });
    }
    group.finish();
}

fn bench_full_gb(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_full_groebner");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [2usize, 3] {
        let (ctx, spec, _) = setup(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                match full_gb_abstraction(
                    black_box(&spec),
                    &ctx,
                    CircuitVarOrder::ReverseTopological,
                    &GbLimits::default(),
                )
                .unwrap()
                {
                    FullGbOutcome::Canonical { basis_size, .. } => basis_size,
                    FullGbOutcome::GaveUp { reason, .. } => panic!("gave up: {reason}"),
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_guided,
    bench_ideal_membership,
    bench_sat_miter,
    bench_full_gb
);
criterion_main!(benches);
