//! Criterion series for Table 1: guided abstraction time on flattened
//! Mastrovito multipliers as k grows. (The paper's NIST-scale rows are in
//! the `table1` binary; Criterion keeps the series small so `cargo bench`
//! stays fast.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfab_circuits::mastrovito_multiplier;
use gfab_core::extract_word_polynomial;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::hint::black_box;

fn bench_mastrovito_abstraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_mastrovito_abstraction");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        group.throughput(criterion::Throughput::Elements(nl.num_gates() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = extract_word_polynomial(black_box(&nl), &ctx).unwrap();
                assert!(r.canonical().is_some());
                r.stats.reduction_steps
            })
        });
    }
    group.finish();
}

fn bench_mastrovito_generation(c: &mut Criterion) {
    // Substrate cost: netlist generation alone, to separate it from
    // abstraction time in the Table 1 numbers.
    let mut group = c.benchmark_group("table1_mastrovito_generation");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [32usize, 64, 163] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| mastrovito_multiplier(black_box(&ctx)).num_gates())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mastrovito_abstraction, bench_mastrovito_generation);
criterion_main!(benches);
