//! Bench series for Table 1: guided abstraction time on flattened
//! Mastrovito multipliers as k grows. (The paper's NIST-scale rows are in
//! the `table1` binary; this series stays small so `cargo bench` is fast.)

use gfab_bench::timing::Bench;
use gfab_circuits::mastrovito_multiplier;
use gfab_core::extract_word_polynomial;
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let bench = Bench::from_args(Duration::from_secs(3));
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        bench.run(&format!("table1_mastrovito_abstraction/{k}"), || {
            let r = extract_word_polynomial(black_box(&nl), &ctx).unwrap();
            assert!(r.canonical().is_some());
            r.stats.reduction_steps
        });
    }
    // Substrate cost: netlist generation alone, to separate it from
    // abstraction time in the Table 1 numbers.
    for k in [32usize, 64, 163] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        bench.run(&format!("table1_mastrovito_generation/{k}"), || {
            mastrovito_multiplier(black_box(&ctx)).num_gates()
        });
    }
}
