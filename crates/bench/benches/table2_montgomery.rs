//! Bench series for Table 2: per-block and whole-hierarchy abstraction of
//! the four-block Montgomery multiplier (Fig. 1), serial vs. threaded.

use gfab_bench::timing::Bench;
use gfab_circuits::{monpro, montgomery_multiplier_hier, MonproOperand};
use gfab_core::hier::extract_hierarchical;
use gfab_core::{extract_word_polynomial, ExtractOptions};
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let bench = Bench::from_args(Duration::from_secs(3));

    // The dominating block of Table 2 (two word operands).
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = monpro(&ctx, "mid", MonproOperand::Word);
        bench.run(&format!("table2_blk_mid_abstraction/{k}"), || {
            extract_word_polynomial(black_box(&nl), &ctx)
                .unwrap()
                .stats
                .reduction_steps
        });
    }

    // The constant-propagated input block (Blk A of Table 2).
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = monpro(&ctx, "blk_a", MonproOperand::Const(ctx.montgomery_r2()));
        bench.run(&format!("table2_blk_a_abstraction/{k}"), || {
            extract_word_polynomial(black_box(&nl), &ctx)
                .unwrap()
                .stats
                .reduction_steps
        });
    }

    // Whole Table-2 flow: all four blocks + word-level composition, with
    // a serial and a 4-thread variant to expose the block-level sharding.
    for threads in [1usize, 4] {
        let options = ExtractOptions::default().with_threads(threads);
        for k in [8usize, 16, 32] {
            let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
            let design = montgomery_multiplier_hier(&ctx);
            bench.run(&format!("table2_full_hierarchy/t{threads}/{k}"), || {
                let r = extract_hierarchical(black_box(&design), &ctx, &options).unwrap();
                assert_eq!(format!("{}", r.function.display()), "A*B");
            });
        }
    }
}
