//! Criterion series for Table 2: per-block and whole-hierarchy abstraction
//! of the four-block Montgomery multiplier (Fig. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfab_circuits::{monpro, montgomery_multiplier_hier, MonproOperand};
use gfab_core::hier::extract_hierarchical;
use gfab_core::{extract_word_polynomial, ExtractOptions};
use gfab_field::nist::irreducible_polynomial;
use gfab_field::GfContext;
use std::hint::black_box;

fn bench_block_mid(c: &mut Criterion) {
    // The dominating block of Table 2 (two word operands).
    let mut group = c.benchmark_group("table2_blk_mid_abstraction");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = monpro(&ctx, "mid", MonproOperand::Word);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                extract_word_polynomial(black_box(&nl), &ctx)
                    .unwrap()
                    .stats
                    .reduction_steps
            })
        });
    }
    group.finish();
}

fn bench_block_const(c: &mut Criterion) {
    // The constant-propagated input block (Blk A of Table 2).
    let mut group = c.benchmark_group("table2_blk_a_abstraction");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [8usize, 16, 32, 64] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let nl = monpro(&ctx, "blk_a", MonproOperand::Const(ctx.montgomery_r2()));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                extract_word_polynomial(black_box(&nl), &ctx)
                    .unwrap()
                    .stats
                    .reduction_steps
            })
        });
    }
    group.finish();
}

fn bench_full_hierarchy(c: &mut Criterion) {
    // Whole Table-2 flow: all four blocks + word-level composition.
    let mut group = c.benchmark_group("table2_full_hierarchy");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    for k in [8usize, 16, 32] {
        let ctx = GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap();
        let design = montgomery_multiplier_hier(&ctx);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = extract_hierarchical(
                    black_box(&design),
                    &ctx,
                    &ExtractOptions::default(),
                )
                .unwrap();
                assert_eq!(format!("{}", r.function.display()), "A*B");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_mid, bench_block_const, bench_full_hierarchy);
criterion_main!(benches);
