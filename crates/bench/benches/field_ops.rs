//! Substrate ablation: raw `F_{2^k}` arithmetic across the NIST ECC field
//! sizes. The paper's runtimes are dominated by coefficient arithmetic and
//! term bookkeeping; this bench isolates the former.

use gfab_bench::timing::Bench;
use gfab_field::nist::{nist_polynomial, NIST_DEGREES};
use gfab_field::{Gf, GfContext, Rng};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic pseudo-random element pair.
fn pair(ctx: &GfContext, seed: u64) -> (Gf, Gf) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut mk = || ctx.random(&mut rng);
    (mk(), mk())
}

fn main() {
    let bench = Bench::from_args(Duration::from_secs(2));

    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, b) = pair(&ctx, 42);
        bench.run(&format!("field_mul_nist/{k}"), || {
            ctx.mul(black_box(&a), black_box(&b))
        });
    }

    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, _) = pair(&ctx, 7);
        bench.run(&format!("field_square_nist/{k}"), || {
            ctx.square(black_box(&a))
        });
    }

    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, _) = pair(&ctx, 9);
        bench.run(&format!("field_inv_nist/{k}"), || {
            ctx.inv(black_box(&a)).unwrap()
        });
    }
}
