//! Substrate ablation: raw `F_{2^k}` arithmetic across the NIST ECC field
//! sizes. The paper's runtimes are dominated by coefficient arithmetic and
//! term bookkeeping; this bench isolates the former.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfab_field::nist::{nist_polynomial, NIST_DEGREES};
use gfab_field::GfContext;
use rand_pair::pair;
use std::hint::black_box;

mod rand_pair {
    use gfab_field::{Gf, GfContext};

    /// Deterministic pseudo-random element pair (no rand dependency in the
    /// bench profile: simple xorshift over the polynomial basis).
    pub fn pair(ctx: &GfContext, seed: u64) -> (Gf, Gf) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let k = ctx.k();
        let limbs = k.div_ceil(64);
        let mut mk = |_: usize| {
            let v: Vec<u64> = (0..limbs).map(|_| next()).collect();
            ctx.element(gfab_field::Gf2Poly::from_limbs(v))
        };
        (mk(0), mk(1))
    }
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_mul_nist");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, b) = pair(&ctx, 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| ctx.mul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_square_nist");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, _) = pair(&ctx, 7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| ctx.square(black_box(&a)))
        });
    }
    group.finish();
}

fn bench_inv(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_inv_nist");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    for k in NIST_DEGREES {
        let ctx = GfContext::new(nist_polynomial(k).unwrap()).unwrap();
        let (a, _) = pair(&ctx, 9);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| ctx.inv(black_box(&a)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mul, bench_square, bench_inv);
criterion_main!(benches);
