//! Randomized property tests of the Gröbner-basis engine: on random small
//! ideals over `F_4`, a completed basis must (a) reduce every generator to
//! zero, (b) reduce random ideal combinations to zero, and (c) have the
//! normal-form-idempotence property. Deterministic seeds replace an earlier
//! proptest harness so the suite runs without external dependencies.

use gfab_field::{Gf, Gf2Poly, GfContext, Rng};
use gfab_poly::buchberger::{buchberger, reduce_basis, GbLimits, GbOutcome};
use gfab_poly::reduce::Reducer;
use gfab_poly::{ExponentMode, Monomial, Poly, Ring, RingBuilder, VarId, VarKind};
use std::sync::Arc;

fn f4() -> Arc<GfContext> {
    GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
}

fn ring3(ctx: &Arc<GfContext>) -> Ring {
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
    rb.add_var("x", VarKind::Bit);
    rb.add_var("y", VarKind::Bit);
    rb.add_var("z", VarKind::Bit);
    rb.build()
}

/// A random small polynomial over 3 variables with exponents <= 2 and 1–4
/// terms (possibly zero after coefficient collisions).
fn random_poly(ctx: &Arc<GfContext>, rng: &mut Rng) -> Poly {
    let num_terms = rng.random_range(1..5);
    let terms: Vec<(Monomial, Gf)> = (0..num_terms)
        .map(|_| {
            let m = Monomial::from_factors(vec![
                (VarId(0), rng.random_below(3)),
                (VarId(1), rng.random_below(3)),
                (VarId(2), rng.random_below(3)),
            ]);
            (m, ctx.from_u64(rng.random_below(4)))
        })
        .collect();
    Poly::from_terms(terms)
}

fn random_gens(ctx: &Arc<GfContext>, rng: &mut Rng, max: usize) -> Vec<Poly> {
    let n = rng.random_range(1..max + 1);
    (0..n)
        .map(|_| random_poly(ctx, rng))
        .filter(|p| !p.is_zero())
        .collect()
}

fn complete_gb(ring: &Ring, gens: &[Poly]) -> Option<Vec<Poly>> {
    let limits = GbLimits {
        max_pair_reductions: 3_000,
        max_basis: 500,
        max_poly_terms: 20_000,
        max_wall_ms: 10_000,
    };
    match buchberger(ring, gens, &limits).unwrap() {
        GbOutcome::Complete { basis, .. } => Some(reduce_basis(ring, &basis).unwrap()),
        GbOutcome::LimitExceeded { .. } => None,
    }
}

#[test]
fn generators_reduce_to_zero() {
    let ctx = f4();
    let ring = ring3(&ctx);
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let gens = random_gens(&ctx, &mut rng, 3);
        if gens.is_empty() {
            continue;
        }
        let Some(gb) = complete_gb(&ring, &gens) else {
            continue;
        };
        if gb.is_empty() {
            continue;
        }
        let reducer = Reducer::new(&ring, gb.iter());
        for g in &gens {
            assert!(
                reducer.normal_form(g).unwrap().is_zero(),
                "seed {seed}: generator does not reduce to zero"
            );
        }
    }
}

#[test]
fn random_ideal_elements_reduce_to_zero() {
    let ctx = f4();
    let ring = ring3(&ctx);
    let mut checked = 0;
    for seed in 100..140u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let gens = random_gens(&ctx, &mut rng, 3);
        let h1 = random_poly(&ctx, &mut rng);
        let h2 = random_poly(&ctx, &mut rng);
        if gens.len() < 2 {
            continue;
        }
        let Some(gb) = complete_gb(&ring, &gens) else {
            continue;
        };
        if gb.is_empty() {
            continue;
        }
        // h1*g0 + h2*g1 is in the ideal.
        let elem = h1
            .mul(&gens[0], &ring)
            .unwrap()
            .add(&h2.mul(&gens[1], &ring).unwrap());
        let reducer = Reducer::new(&ring, gb.iter());
        assert!(
            reducer.normal_form(&elem).unwrap().is_zero(),
            "seed {seed}: ideal element does not reduce to zero"
        );
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} seeds produced usable ideals");
}

#[test]
fn normal_form_is_idempotent() {
    let ctx = f4();
    let ring = ring3(&ctx);
    for seed in 200..224u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let f = random_poly(&ctx, &mut rng);
        let divs = random_gens(&ctx, &mut rng, 3);
        if divs.is_empty() {
            continue;
        }
        let reducer = Reducer::new(&ring, divs.iter());
        let nf = reducer.normal_form(&f).unwrap();
        assert_eq!(
            reducer.normal_form(&nf).unwrap(),
            nf,
            "seed {seed}: normal form is not idempotent"
        );
    }
}

#[test]
fn remainder_agrees_on_common_zeros() {
    // f ≡ NF(f) modulo <d>: they agree wherever d vanishes.
    let ctx = f4();
    let ring = ring3(&ctx);
    let elems: Vec<Gf> = ctx.iter_elements().collect();
    for seed in 300..316u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let f = random_poly(&ctx, &mut rng);
        let d = random_poly(&ctx, &mut rng);
        if d.is_zero() {
            continue;
        }
        let ds = [d.clone()];
        let reducer = Reducer::new(&ring, ds.iter());
        let nf = reducer.normal_form(&f).unwrap();
        for a in &elems {
            for b in &elems {
                for c in &elems {
                    let vals = vec![a.clone(), b.clone(), c.clone()];
                    if d.eval(&ring, &vals).is_zero() {
                        assert_eq!(
                            f.eval(&ring, &vals),
                            nf.eval(&ring, &vals),
                            "seed {seed}: f and NF(f) disagree on the variety of d"
                        );
                    }
                }
            }
        }
    }
}
