//! Property-based tests of the Gröbner-basis engine: on random small
//! ideals over `F_4`, a completed basis must (a) reduce every generator to
//! zero, (b) reduce random ideal combinations to zero, and (c) have the
//! normal-form-idempotence property.

use gfab_field::{Gf, Gf2Poly, GfContext};
use gfab_poly::buchberger::{buchberger, reduce_basis, GbLimits, GbOutcome};
use gfab_poly::reduce::Reducer;
use gfab_poly::{ExponentMode, Monomial, Poly, Ring, RingBuilder, VarId, VarKind};
use proptest::prelude::*;
use std::sync::Arc;

fn f4() -> Arc<GfContext> {
    GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap()
}

fn ring3(ctx: &Arc<GfContext>) -> Ring {
    let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
    rb.add_var("x", VarKind::Bit);
    rb.add_var("y", VarKind::Bit);
    rb.add_var("z", VarKind::Bit);
    rb.build()
}

/// A random small polynomial over 3 variables with exponents <= 2.
fn arb_poly(ctx: Arc<GfContext>) -> impl Strategy<Value = Poly> {
    let coeff = 0u64..4;
    let mono = (0u64..3, 0u64..3, 0u64..3);
    prop::collection::vec((mono, coeff), 1..5).prop_map(move |terms| {
        Poly::from_terms(
            terms
                .into_iter()
                .map(|((ex, ey, ez), c)| {
                    (
                        Monomial::from_factors(vec![
                            (VarId(0), ex),
                            (VarId(1), ey),
                            (VarId(2), ez),
                        ]),
                        ctx.from_u64(c),
                    )
                })
                .collect(),
        )
    })
}

fn complete_gb(ring: &Ring, gens: &[Poly]) -> Option<Vec<Poly>> {
    let limits = GbLimits {
        max_pair_reductions: 3_000,
        max_basis: 500,
        max_poly_terms: 20_000,
        max_wall_ms: 10_000,
    };
    match buchberger(ring, gens, &limits).unwrap() {
        GbOutcome::Complete { basis, .. } => Some(reduce_basis(ring, &basis).unwrap()),
        GbOutcome::LimitExceeded { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generators_reduce_to_zero(
        seed_polys in prop::collection::vec(arb_poly(f4()), 1..4)
    ) {
        let ctx = f4();
        let ring = ring3(&ctx);
        let gens: Vec<Poly> = seed_polys.into_iter().filter(|p| !p.is_zero()).collect();
        prop_assume!(!gens.is_empty());
        let Some(gb) = complete_gb(&ring, &gens) else { return Ok(()); };
        prop_assume!(!gb.is_empty());
        let reducer = Reducer::new(&ring, gb.iter());
        for g in &gens {
            prop_assert!(reducer.normal_form(g).unwrap().is_zero());
        }
    }

    #[test]
    fn random_ideal_elements_reduce_to_zero(
        seed_polys in prop::collection::vec(arb_poly(f4()), 2..4),
        h1 in arb_poly(f4()),
        h2 in arb_poly(f4()),
    ) {
        let ctx = f4();
        let ring = ring3(&ctx);
        let gens: Vec<Poly> = seed_polys.into_iter().filter(|p| !p.is_zero()).collect();
        prop_assume!(gens.len() >= 2);
        let Some(gb) = complete_gb(&ring, &gens) else { return Ok(()); };
        prop_assume!(!gb.is_empty());
        // h1*g0 + h2*g1 is in the ideal.
        let elem = h1.mul(&gens[0], &ring).unwrap().add(&h2.mul(&gens[1], &ring).unwrap());
        let reducer = Reducer::new(&ring, gb.iter());
        prop_assert!(reducer.normal_form(&elem).unwrap().is_zero());
    }

    #[test]
    fn normal_form_is_idempotent(
        f in arb_poly(f4()),
        divisors in prop::collection::vec(arb_poly(f4()), 1..4),
    ) {
        let ctx = f4();
        let ring = ring3(&ctx);
        let divs: Vec<Poly> = divisors.into_iter().filter(|p| !p.is_zero()).collect();
        prop_assume!(!divs.is_empty());
        let reducer = Reducer::new(&ring, divs.iter());
        let nf = reducer.normal_form(&f).unwrap();
        prop_assert_eq!(reducer.normal_form(&nf).unwrap(), nf);
    }

    #[test]
    fn remainder_agrees_on_common_zeros(
        f in arb_poly(f4()),
        d in arb_poly(f4()),
    ) {
        // f ≡ NF(f) modulo <d>: they agree wherever d vanishes.
        let ctx = f4();
        let ring = ring3(&ctx);
        prop_assume!(!d.is_zero());
        let ds = [d.clone()];
        let reducer = Reducer::new(&ring, ds.iter());
        let nf = reducer.normal_form(&f).unwrap();
        let elems: Vec<Gf> = ctx.iter_elements().collect();
        for a in &elems {
            for b in &elems {
                for c in &elems {
                    let vals = vec![a.clone(), b.clone(), c.clone()];
                    if d.eval(&ring, &vals).is_zero() {
                        prop_assert_eq!(f.eval(&ring, &vals), nf.eval(&ring, &vals));
                    }
                }
            }
        }
    }
}
