//! Polynomial ring descriptions: ranked variables and exponent semantics.

use crate::monomial::Monomial;
use crate::poly::Poly;
use gfab_field::{Gf, GfContext};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a ring variable.
///
/// The numeric value is the variable's **lex rank**: `VarId(0)` is the
/// greatest variable of the ring's pure lexicographic order, `VarId(1)` the
/// next, and so on. The abstraction term order of the paper is therefore
/// encoded entirely in how the verification layer numbers its variables
/// (reverse-topological circuit bits first, then `Z`, then the input words).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw rank index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a variable ranges over `{0, 1}` (a circuit net) or over the whole
/// field `F_{2^k}` (a word-level input/output).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VarKind {
    /// A bit-level circuit variable, constrained by `x² = x`.
    Bit,
    /// A word-level variable, constrained by `X^q = X` with `q = 2^k`.
    Word,
}

/// Metadata for one ring variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (net name or word name).
    pub name: String,
    /// Bit or word semantics.
    pub kind: VarKind,
}

/// How monomial multiplication treats exponents (see crate docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExponentMode {
    /// Textbook arithmetic; vanishing polynomials are explicit generators.
    Plain,
    /// Arithmetic in the quotient ring `F_q[X]/J_0`: `x² = x` for bits,
    /// `X^q = X` for words (when `q` fits in `u64`).
    Quotient,
}

/// Errors from polynomial-ring operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// An exponent overflowed `u64` during multiplication.
    ExponentOverflow,
    /// A word-variable vanishing polynomial `X^q − X` was requested but
    /// `q = 2^k` does not fit in `u64` (k > 63).
    FieldTooLargeForVanishing {
        /// The extension degree that was too large.
        k: usize,
    },
    /// A cooperative [`Budget`](gfab_field::budget::Budget) stopped the
    /// computation (deadline, work cap, or cancellation).
    BudgetExceeded(gfab_field::budget::BudgetExceeded),
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::ExponentOverflow => write!(f, "monomial exponent overflowed u64"),
            PolyError::FieldTooLargeForVanishing { k } => write!(
                f,
                "vanishing polynomial X^(2^{k}) - X requires k <= 63 (got k = {k})"
            ),
            PolyError::BudgetExceeded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PolyError {}

impl From<gfab_field::budget::BudgetExceeded> for PolyError {
    fn from(e: gfab_field::budget::BudgetExceeded) -> Self {
        PolyError::BudgetExceeded(e)
    }
}

/// A multivariate polynomial ring `F_{2^k}[x_0, …, x_{n-1}]` with a fixed
/// pure-lex variable ranking and an exponent mode.
///
/// Construct via [`RingBuilder`], adding variables from greatest to
/// smallest.
#[derive(Debug, Clone)]
pub struct Ring {
    ctx: Arc<GfContext>,
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
    mode: ExponentMode,
    /// `q = 2^k` when it fits in `u64`, used for word-exponent reduction.
    order_u64: Option<u64>,
}

impl Ring {
    /// The coefficient field.
    pub fn ctx(&self) -> &Arc<GfContext> {
        &self.ctx
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The exponent mode this ring was built with.
    pub fn mode(&self) -> ExponentMode {
        self.mode
    }

    /// Metadata of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this ring.
    pub fn var_info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(VarId, &VarInfo)` from greatest to smallest.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, info)| (VarId(i as u32), info))
    }

    /// The polynomial consisting of the single variable `v`.
    pub fn var_poly(&self, v: VarId) -> Poly {
        Poly::from_terms(vec![(Monomial::var(v), self.ctx.one())])
    }

    /// The constant polynomial `c`.
    pub fn constant(&self, c: Gf) -> Poly {
        if c.is_zero() {
            Poly::zero()
        } else {
            Poly::from_terms(vec![(Monomial::one(), c)])
        }
    }

    /// Reduces a word-variable exponent by `X^q = X` (valid on `F_q`), i.e.
    /// maps `e ≥ 1` to `((e − 1) mod (q − 1)) + 1`. Identity when `q` does
    /// not fit in `u64` or `e = 0`.
    pub fn reduce_word_exponent(&self, e: u64) -> u64 {
        match self.order_u64 {
            Some(q) if e >= q => ((e - 1) % (q - 1)) + 1,
            _ => e,
        }
    }

    /// Combines two exponents of variable `v` under this ring's mode.
    ///
    /// # Errors
    ///
    /// [`PolyError::ExponentOverflow`] if the sum exceeds `u64`.
    pub fn combine_exponents(&self, v: VarId, a: u64, b: u64) -> Result<u64, PolyError> {
        let sum = a.checked_add(b).ok_or(PolyError::ExponentOverflow)?;
        if self.mode == ExponentMode::Plain {
            return Ok(sum);
        }
        match self.var_info(v).kind {
            VarKind::Bit => Ok(sum.min(1)),
            VarKind::Word => Ok(self.reduce_word_exponent(sum)),
        }
    }
}

/// Incremental construction of a [`Ring`], adding variables from greatest to
/// smallest in the lex order.
///
/// # Example
///
/// ```
/// use gfab_field::{GfContext, Gf2Poly};
/// use gfab_poly::{RingBuilder, VarKind, ExponentMode};
///
/// let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
/// let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
/// let x = rb.add_var("x", VarKind::Bit);
/// let y = rb.add_var("y", VarKind::Bit);
/// let ring = rb.build();
/// assert!(x < y); // x was added first, so x is greater in lex
/// assert_eq!(ring.num_vars(), 2);
/// ```
#[derive(Debug)]
pub struct RingBuilder {
    ctx: Arc<GfContext>,
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
    mode: ExponentMode,
}

impl RingBuilder {
    /// Starts a builder over the given coefficient field.
    pub fn new(ctx: Arc<GfContext>, mode: ExponentMode) -> Self {
        RingBuilder {
            ctx,
            vars: Vec::new(),
            by_name: HashMap::new(),
            mode,
        }
    }

    /// Appends the next-smaller variable and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (variable names must be unique).
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        let name = name.into();
        let id = VarId(self.vars.len() as u32);
        let prev = self.by_name.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate ring variable name: {name}");
        self.vars.push(VarInfo { name, kind });
        id
    }

    /// Finalizes the ring.
    pub fn build(self) -> Ring {
        let order_u64 = self.ctx.order_u64();
        Ring {
            ctx: self.ctx,
            vars: self.vars,
            by_name: self.by_name,
            mode: self.mode,
            order_u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::Gf2Poly;

    fn ring(mode: ExponentMode) -> (Ring, VarId, VarId) {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, mode);
        let x = rb.add_var("x", VarKind::Bit);
        let z = rb.add_var("Z", VarKind::Word);
        (rb.build(), x, z)
    }

    #[test]
    fn variable_ranking_is_insertion_order() {
        let (r, x, z) = ring(ExponentMode::Plain);
        assert!(x < z);
        assert_eq!(r.var_info(x).name, "x");
        assert_eq!(r.var_by_name("Z"), Some(z));
        assert_eq!(r.var_by_name("nope"), None);
    }

    #[test]
    fn quotient_mode_caps_bit_exponents() {
        let (r, x, _) = ring(ExponentMode::Quotient);
        assert_eq!(r.combine_exponents(x, 1, 1).unwrap(), 1);
        assert_eq!(r.combine_exponents(x, 0, 1).unwrap(), 1);
    }

    #[test]
    fn quotient_mode_reduces_word_exponents_mod_q() {
        // F_4: q = 4, X^4 = X so exponents live in {1, 2, 3}.
        let (r, _, z) = ring(ExponentMode::Quotient);
        assert_eq!(r.combine_exponents(z, 2, 2).unwrap(), 1); // X^4 -> X
        assert_eq!(r.combine_exponents(z, 3, 3).unwrap(), 3); // X^6 -> X^3
        assert_eq!(r.combine_exponents(z, 1, 2).unwrap(), 3);
    }

    #[test]
    fn plain_mode_adds_exponents() {
        let (r, x, z) = ring(ExponentMode::Plain);
        assert_eq!(r.combine_exponents(x, 1, 1).unwrap(), 2);
        assert_eq!(r.combine_exponents(z, 2, 2).unwrap(), 4);
    }

    #[test]
    fn exponent_overflow_is_detected() {
        let (r, _, z) = ring(ExponentMode::Plain);
        assert_eq!(
            r.combine_exponents(z, u64::MAX, 1),
            Err(PolyError::ExponentOverflow)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate ring variable name")]
    fn duplicate_names_panic() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
        rb.add_var("x", VarKind::Bit);
        rb.add_var("x", VarKind::Bit);
    }
}
