//! The vanishing ideal `J_0` of `F_q` (Strong Nullstellensatz, Theorem 3.2
//! of the paper): `J_0 = ⟨x_i² − x_i, X_j^q − X_j⟩` where `x_i` are bit
//! variables and `X_j` word variables.

use crate::monomial::Monomial;
use crate::poly::Poly;
use crate::ring::{PolyError, Ring, VarId, VarKind};

/// The vanishing polynomial of a single variable: `x² + x` for bits,
/// `X^q + X` for words (characteristic 2 turns `−` into `+`).
///
/// # Errors
///
/// [`PolyError::FieldTooLargeForVanishing`] if `v` is a word variable and
/// `q = 2^k` does not fit in `u64` (k > 63). Word vanishing polynomials are
/// only needed by the Case-2 canonical completion, which the paper (and
/// this reproduction) exercises on small fields.
pub fn vanishing_poly(ring: &Ring, v: VarId) -> Result<Poly, PolyError> {
    let one = ring.ctx().one();
    let e = match ring.var_info(v).kind {
        VarKind::Bit => 2,
        VarKind::Word => ring
            .ctx()
            .order_u64()
            .ok_or(PolyError::FieldTooLargeForVanishing { k: ring.ctx().k() })?,
    };
    Ok(Poly::from_terms(vec![
        (Monomial::var_pow(v, e), one.clone()),
        (Monomial::var(v), one),
    ]))
}

/// The full generating set of `J_0` for the given variables.
///
/// # Errors
///
/// See [`vanishing_poly`].
pub fn vanishing_ideal(ring: &Ring, vars: &[VarId]) -> Result<Vec<Poly>, PolyError> {
    vars.iter().map(|&v| vanishing_poly(ring, v)).collect()
}

/// The generating set of `J_0` for **all** ring variables.
///
/// # Errors
///
/// See [`vanishing_poly`].
pub fn vanishing_ideal_all(ring: &Ring) -> Result<Vec<Poly>, PolyError> {
    ring.vars().map(|(v, _)| vanishing_poly(ring, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ExponentMode, RingBuilder};
    use gfab_field::{Gf2Poly, GfContext};

    #[test]
    fn bit_vanishing_is_quadratic() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
        let x = rb.add_var("x", VarKind::Bit);
        let ring = rb.build();
        let p = vanishing_poly(&ring, x).unwrap();
        assert_eq!(p.degree_in(x), 2);
        assert_eq!(p.num_terms(), 2);
        // Vanishes on 0 and 1.
        for b in [ring.ctx().zero(), ring.ctx().one()] {
            assert!(p.eval(&ring, &[b]).is_zero());
        }
    }

    #[test]
    fn word_vanishing_vanishes_on_whole_field() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[3, 1, 0])).unwrap(); // F_8
        let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
        let a = rb.add_var("A", VarKind::Word);
        let ring = rb.build();
        let p = vanishing_poly(&ring, a).unwrap();
        assert_eq!(p.degree_in(a), 8);
        for e in ctx.iter_elements() {
            assert!(p.eval(&ring, std::slice::from_ref(&e)).is_zero(), "at {e}");
        }
    }

    #[test]
    fn word_vanishing_requires_small_field() {
        let ctx = GfContext::shared(gfab_field::nist::nist_polynomial(163).unwrap()).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
        let a = rb.add_var("A", VarKind::Word);
        let ring = rb.build();
        assert_eq!(
            vanishing_poly(&ring, a),
            Err(PolyError::FieldTooLargeForVanishing { k: 163 })
        );
    }

    #[test]
    fn ideal_generators_cover_all_vars() {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
        rb.add_var("x", VarKind::Bit);
        rb.add_var("y", VarKind::Bit);
        rb.add_var("A", VarKind::Word);
        let ring = rb.build();
        let gens = vanishing_ideal_all(&ring).unwrap();
        assert_eq!(gens.len(), 3);
    }
}
