//! Sparse multivariate polynomials over `F_{2^k}`.

use crate::monomial::Monomial;
use crate::ring::{PolyError, Ring, VarId};
use gfab_field::Gf;
use std::collections::BTreeMap;
use std::fmt;

/// One `coefficient · monomial` term.
pub type Term = (Monomial, Gf);

/// A polynomial stored as terms sorted in **descending** monomial order with
/// non-zero coefficients and no duplicate monomials.
///
/// All arithmetic that can change exponents takes the [`Ring`] as an
/// argument so the ring's [`ExponentMode`](crate::ExponentMode) is applied
/// consistently. Since the coefficient field has characteristic 2,
/// subtraction equals addition and every polynomial is its own negation.
///
/// # Example
///
/// ```
/// use gfab_field::{GfContext, Gf2Poly};
/// use gfab_poly::{RingBuilder, VarKind, ExponentMode, Poly, Monomial};
///
/// let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
/// let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Plain);
/// let x = rb.add_var("x", VarKind::Bit);
/// let ring = rb.build();
/// // x + x = 0 in characteristic 2
/// let p = ring.var_poly(x);
/// assert!(p.add(&p).is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    /// Terms in strictly descending monomial order.
    terms: Vec<Term>,
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Poly { terms: Vec::new() }
    }

    /// Builds a polynomial from arbitrary terms: sorts, merges duplicate
    /// monomials (coefficients add in `F_{2^k}`), drops zeros.
    #[must_use]
    pub fn from_terms(terms: Vec<Term>) -> Self {
        let mut map: BTreeMap<Monomial, Gf> = BTreeMap::new();
        for (m, c) in terms {
            upsert(&mut map, m, c);
        }
        Poly::from_map(map)
    }

    /// Builds from a map already keyed by monomial (zero coefficients are
    /// dropped).
    #[must_use]
    pub fn from_map(map: BTreeMap<Monomial, Gf>) -> Self {
        Poly {
            terms: map
                .into_iter()
                .rev()
                .filter(|(_, c)| !c.is_zero())
                .collect(),
        }
    }

    /// Whether this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The terms in descending monomial order.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The leading term, or `None` if zero.
    #[must_use]
    pub fn leading_term(&self) -> Option<&Term> {
        self.terms.first()
    }

    /// The leading monomial, or `None` if zero.
    #[must_use]
    pub fn leading_monomial(&self) -> Option<&Monomial> {
        self.terms.first().map(|(m, _)| m)
    }

    /// The leading coefficient, or `None` if zero.
    #[must_use]
    pub fn leading_coeff(&self) -> Option<&Gf> {
        self.terms.first().map(|(_, c)| c)
    }

    /// Everything but the leading term (`tail(f)` in the paper).
    #[must_use]
    pub fn tail(&self) -> Poly {
        Poly {
            terms: self.terms.get(1..).unwrap_or(&[]).to_vec(),
        }
    }

    /// The coefficient of `m` (zero if absent).
    #[must_use]
    pub fn coeff(&self, m: &Monomial) -> Gf {
        // Terms are sorted descending; search with the comparison reversed.
        self.terms
            .binary_search_by(|(tm, _)| m.cmp(tm))
            .map(|i| self.terms[i].1.clone())
            .unwrap_or_default()
    }

    /// The total degree (max over terms), or `None` if zero.
    #[must_use]
    pub fn total_degree(&self) -> Option<u64> {
        self.terms.iter().map(|(m, _)| m.total_degree()).max()
    }

    /// The maximum exponent of `v` over all terms.
    #[must_use]
    pub fn degree_in(&self, v: VarId) -> u64 {
        self.terms
            .iter()
            .map(|(m, _)| m.exponent(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether variable `v` occurs anywhere in the polynomial.
    #[must_use]
    pub fn contains_var(&self, v: VarId) -> bool {
        self.terms.iter().any(|(m, _)| m.contains(v))
    }

    /// The set of variables occurring in the polynomial, ascending by rank
    /// (greatest variable first).
    #[must_use]
    pub fn variables(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self.terms.iter().flat_map(|(m, _)| m.vars()).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Polynomial addition (characteristic 2, so also subtraction).
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (ma, ca) = &self.terms[i];
            let (mb, cb) = &other.terms[j];
            match ma.cmp(mb) {
                std::cmp::Ordering::Greater => {
                    out.push(self.terms[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push(other.terms[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = ca.add(cb);
                    if !c.is_zero() {
                        out.push((ma.clone(), c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.terms[i..]);
        out.extend_from_slice(&other.terms[j..]);
        Poly { terms: out }
    }

    /// Multiplies by a single term `c · m`.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn mul_term(&self, m: &Monomial, c: &Gf, ring: &Ring) -> Result<Poly, PolyError> {
        if c.is_zero() {
            return Ok(Poly::zero());
        }
        let ctx = ring.ctx();
        let mut terms = Vec::with_capacity(self.terms.len());
        for (tm, tc) in &self.terms {
            terms.push((tm.mul(m, ring)?, ctx.mul(tc, c)));
        }
        // In Quotient mode exponent capping can merge monomials, so always
        // renormalize (cheap relative to the multiplication itself).
        Ok(Poly::from_terms(terms))
    }

    /// Full polynomial multiplication.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn mul(&self, other: &Poly, ring: &Ring) -> Result<Poly, PolyError> {
        let ctx = ring.ctx();
        let mut map: BTreeMap<Monomial, Gf> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let m = ma.mul(mb, ring)?;
                let c = ctx.mul(ca, cb);
                upsert(&mut map, m, c);
            }
        }
        Ok(Poly::from_map(map))
    }

    /// Scales all coefficients by `c`.
    #[must_use]
    pub fn scale(&self, c: &Gf, ring: &Ring) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        let ctx = ring.ctx();
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, tc)| (m.clone(), ctx.mul(tc, c)))
                .collect(),
        }
    }

    /// Makes the polynomial monic (leading coefficient 1). No-op on zero.
    #[must_use]
    pub fn monic(&self, ring: &Ring) -> Poly {
        match self.leading_coeff() {
            None => Poly::zero(),
            Some(lc) if lc.is_one() => self.clone(),
            Some(lc) => {
                let inv = ring.ctx().inv(lc).expect("leading coefficient is non-zero");
                self.scale(&inv, ring)
            }
        }
    }

    /// Substitutes polynomial `rep` for variable `v`: every `v^e` factor is
    /// replaced by `rep^e`. Used for word-level composition of block
    /// polynomials (the hierarchical step of the paper).
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn substitute(&self, v: VarId, rep: &Poly, ring: &Ring) -> Result<Poly, PolyError> {
        let one = ring.constant(ring.ctx().one());
        let mut pow_cache: Vec<Poly> = vec![one]; // rep^0
        let mut acc = Poly::zero();
        for (m, c) in &self.terms {
            let e = m.exponent(v);
            let rest = Monomial::from_factors(
                m.factors()
                    .iter()
                    .filter(|&&(w, _)| w != v)
                    .cloned()
                    .collect(),
            );
            while (pow_cache.len() as u64) <= e {
                let next = pow_cache
                    .last()
                    .expect("cache seeded with rep^0")
                    .mul(rep, ring)?;
                pow_cache.push(next);
            }
            let powed = &pow_cache[e as usize];
            acc = acc.add(&powed.mul_term(&rest, c, ring)?);
        }
        Ok(acc)
    }

    /// Evaluates the polynomial at a full assignment (`values[i]` is the
    /// value of `VarId(i)`).
    ///
    /// # Panics
    ///
    /// Panics if a variable of the polynomial is out of range of `values`.
    #[must_use]
    pub fn eval(&self, ring: &Ring, values: &[Gf]) -> Gf {
        let ctx = ring.ctx();
        let mut acc = ctx.zero();
        for (m, c) in &self.terms {
            let mut t = c.clone();
            for &(v, e) in m.factors() {
                let val = &values[v.index()];
                t = ctx.mul(&t, &ctx.pow_u64(val, e));
            }
            ctx.add_assign(&mut acc, &t);
        }
        acc
    }

    /// Renames variables through `f` and renormalizes. Used to move
    /// polynomials between rings over the same coefficient field.
    #[must_use]
    pub fn relabel(&self, f: impl Fn(VarId) -> VarId) -> Poly {
        Poly::from_terms(
            self.terms
                .iter()
                .map(|(m, c)| (m.relabel(&f), c.clone()))
                .collect(),
        )
    }

    /// Formats the polynomial with the ring's variable names; terms are
    /// printed in descending order, coefficients as polynomials in `α`.
    pub fn display<'a>(&'a self, ring: &'a Ring) -> impl fmt::Display + 'a {
        PolyDisplay { p: self, ring }
    }
}

fn upsert(map: &mut BTreeMap<Monomial, Gf>, m: Monomial, c: Gf) {
    if c.is_zero() {
        return;
    }
    match map.entry(m) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(c);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let merged = e.get().add(&c);
            if merged.is_zero() {
                e.remove();
            } else {
                *e.get_mut() = merged;
            }
        }
    }
}

struct PolyDisplay<'a> {
    p: &'a Poly,
    ring: &'a Ring,
}

impl fmt::Display for PolyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.p.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in self.p.terms() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            let coeff_simple = c.as_poly().weight() <= 1;
            if m.is_one() {
                write!(f, "{c}")?;
            } else if c.is_one() {
                write!(f, "{}", m.display(self.ring))?;
            } else if coeff_simple {
                write!(f, "{c}*{}", m.display(self.ring))?;
            } else {
                write!(f, "({c})*{}", m.display(self.ring))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ExponentMode, RingBuilder, VarKind};
    use gfab_field::{Gf2Poly, GfContext};

    fn setup(mode: ExponentMode) -> (Ring, VarId, VarId, VarId) {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, mode);
        let x = rb.add_var("x", VarKind::Bit);
        let y = rb.add_var("y", VarKind::Bit);
        let a = rb.add_var("A", VarKind::Word);
        (rb.build(), x, y, a)
    }

    #[test]
    fn from_terms_merges_and_sorts() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        let p = Poly::from_terms(vec![
            (Monomial::var(y), one.clone()),
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()), // cancels with the first y
        ]);
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.leading_monomial(), Some(&Monomial::var(x)));
    }

    #[test]
    fn add_is_self_inverse() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        let alpha = ring.ctx().alpha();
        let p = Poly::from_terms(vec![(Monomial::var(x), alpha), (Monomial::var(y), one)]);
        assert!(p.add(&p).is_zero());
        assert_eq!(p.add(&Poly::zero()), p);
    }

    #[test]
    fn mul_quotient_mode_caps_bits() {
        let (ring, x, _, _) = setup(ExponentMode::Quotient);
        let p = ring.var_poly(x);
        let sq = p.mul(&p, &ring).unwrap();
        assert_eq!(sq, p); // x² = x
    }

    #[test]
    fn mul_plain_mode_keeps_exponents() {
        let (ring, x, _, _) = setup(ExponentMode::Plain);
        let p = ring.var_poly(x);
        let sq = p.mul(&p, &ring).unwrap();
        assert_eq!(sq.leading_monomial(), Some(&Monomial::var_pow(x, 2)));
    }

    #[test]
    fn distributive_law_small() {
        let (ring, x, y, a) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        let p = Poly::from_terms(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::one(), one.clone()),
        ]); // x + 1
        let q = Poly::from_terms(vec![
            (Monomial::var(y), one.clone()),
            (Monomial::var(a), one.clone()),
        ]); // y + A
        let lhs = p.mul(&q, &ring).unwrap();
        let rhs = p
            .mul(&ring.var_poly(y), &ring)
            .unwrap()
            .add(&p.mul(&ring.var_poly(a), &ring).unwrap());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn monic_divides_by_leading_coeff() {
        let (ring, x, _, _) = setup(ExponentMode::Plain);
        let alpha = ring.ctx().alpha();
        let p = ring.var_poly(x).scale(&alpha, &ring);
        let m = p.monic(&ring);
        assert_eq!(m, ring.var_poly(x));
    }

    #[test]
    fn substitute_replaces_powers() {
        let (ring, x, _, a) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        // p = A^2 + x
        let p = Poly::from_terms(vec![
            (Monomial::var_pow(a, 2), one.clone()),
            (Monomial::var(x), one.clone()),
        ]);
        // A := x + 1  =>  p = (x+1)^2 + x = x^2 + x + 1  (char 2)
        let rep = Poly::from_terms(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::one(), one.clone()),
        ]);
        let s = p.substitute(a, &rep, &ring).unwrap();
        let expected = Poly::from_terms(vec![
            (Monomial::var_pow(x, 2), one.clone()),
            (Monomial::var(x), one.clone()),
            (Monomial::one(), one),
        ]);
        assert_eq!(s, expected);
    }

    #[test]
    fn eval_agrees_with_structure() {
        let (ring, x, y, a) = setup(ExponentMode::Plain);
        let ctx = ring.ctx().clone();
        let one = ctx.one();
        // p = x*y + A
        let p = Poly::from_terms(vec![
            (Monomial::from_factors(vec![(x, 1), (y, 1)]), one.clone()),
            (Monomial::var(a), one),
        ]);
        let alpha = ctx.alpha();
        let vals = vec![ctx.one(), ctx.one(), alpha.clone()];
        assert_eq!(p.eval(&ring, &vals), ctx.add(&ctx.one(), &alpha));
    }

    #[test]
    fn relabel_moves_variables() {
        let (_, x, y, _) = setup(ExponentMode::Plain);
        let (ring2, x2, y2, _) = setup(ExponentMode::Plain);
        let one = ring2.ctx().one();
        let p = Poly::from_terms(vec![(
            Monomial::from_factors(vec![(x, 1), (y, 2)]),
            one.clone(),
        )]);
        // Swap x and y.
        let q = p.relabel(|v| if v == x { y2 } else { x2 });
        assert_eq!(
            q.leading_monomial(),
            Some(&Monomial::from_factors(vec![(x2, 2), (y2, 1)]))
        );
    }

    #[test]
    fn display_renders_terms() {
        let (ring, x, _, a) = setup(ExponentMode::Plain);
        let ctx = ring.ctx().clone();
        let alpha = ctx.alpha();
        let p = Poly::from_terms(vec![
            (Monomial::var(x), ctx.one()),
            (Monomial::var(a), alpha),
            (Monomial::one(), ctx.one()),
        ]);
        assert_eq!(format!("{}", p.display(&ring)), "x + α*A + 1");
    }

    #[test]
    fn coeff_lookup() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let alpha = ring.ctx().alpha();
        let p = Poly::from_terms(vec![(Monomial::var(x), alpha.clone())]);
        assert_eq!(p.coeff(&Monomial::var(x)), alpha);
        assert!(p.coeff(&Monomial::var(y)).is_zero());
    }
}
