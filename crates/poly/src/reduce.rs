//! Multivariate division: normal forms against divisor sets.
//!
//! The abstraction flow of the paper is, after the single S-polynomial, a
//! long chain of divisions `Spoly(f_w, f_g) →+ r` modulo the circuit
//! polynomials and the vanishing polynomials. Under RATO every circuit
//! polynomial has the form `x + tail(x)` with a distinct leading *variable*,
//! so the reducer indexes those divisors by leading variable for O(1)
//! lookup; arbitrary divisors (e.g. explicit vanishing polynomials in
//! `Plain` mode) go through a linear scan.

use crate::monomial::Monomial;
use crate::poly::Poly;
use crate::ring::{PolyError, Ring};
use gfab_field::budget::Budget;
use gfab_field::{kernel, Gf, KernelCounts};
use gfab_telemetry::HistData;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many division-loop iterations run between two budget polls. Strided
/// so the atomic loads and `Instant::now()` calls are amortised away from
/// the innermost loop.
const BUDGET_STRIDE: u64 = 1024;

/// How many division-loop iterations run between two working-store size
/// samples (feeding the `reduction-poly-size` histogram). A divisor of
/// [`BUDGET_STRIDE`] so the two strides share one modulus check; sampling
/// is deterministic because it depends only on the iteration count.
const SIZE_SAMPLE_STRIDE: u64 = 64;

/// Statistics of one normal-form computation, used by the experiment
/// harness to report reduction effort.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Number of leading-term cancellation steps performed.
    pub steps: u64,
    /// Maximum number of terms simultaneously held in the working store
    /// (an upper bound on the live-term count: equal monomials awaiting
    /// merge are counted individually).
    pub peak_terms: usize,
    /// Number of coefficient cancellations: merges of equal monomials whose
    /// coefficients summed to zero, so the term vanished without a division
    /// step.
    pub cancellations: u64,
    /// Number of cooperative-budget polls issued (0 for unbudgeted runs).
    /// Derived from the iteration count at no per-iteration cost; surfaced
    /// as the `budget-polls` telemetry counter.
    pub polls: u64,
    /// Distribution of the live working-store size, sampled every
    /// [`SIZE_SAMPLE_STRIDE`] iterations (the `reduction-poly-size`
    /// telemetry histogram). Deterministic: sample points depend only on
    /// the iteration count, never on wall time or thread interleaving.
    pub size_hist: HistData,
    /// Coefficient-kernel effort of this reduction: field multiplies,
    /// squarings, word-level reduction folds, and inline-vs-heap residency
    /// of kernel results. Taken as a thread-local snapshot delta around
    /// the division loop (each normal form runs on a single thread), so
    /// the values are deterministic across machines and thread counts.
    pub kernel: KernelCounts,
}

/// One entry of the division working store: ordered by monomial only, so a
/// max-heap pops terms in descending monomial order and equal monomials
/// surface consecutively for merging.
#[derive(Debug, Clone)]
struct HeapTerm(Monomial, Gf);

impl PartialEq for HeapTerm {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for HeapTerm {}
impl PartialOrd for HeapTerm {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTerm {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// One prepared divisor: the polynomial plus its precomputed inverse
/// leading coefficient (`None` for monic divisors, the common case — gate
/// polynomials under RATO all have unit leading coefficients).
#[derive(Debug, Clone)]
struct DivEntry<'a> {
    poly: &'a Poly,
    inv_lc: Option<Gf>,
}

/// A set of divisors prepared for repeated normal-form computations.
///
/// Divisors whose leading monomial is a single variable with exponent 1
/// (every circuit polynomial under RATO) are indexed by a dense table over
/// the ring's variable ranks for O(1) lookup; everything else is scanned
/// linearly. Non-monic divisors have their leading coefficients inverted
/// once at construction (one batched Montgomery-trick inversion for all of
/// them), so the division hot loop never runs an extended GCD.
#[derive(Debug, Clone)]
pub struct Reducer<'a> {
    ring: &'a Ring,
    /// All prepared divisors; the index tables below point in here.
    entries: Vec<DivEntry<'a>>,
    /// Divisors with leading monomial `x` (a bare variable), indexed by the
    /// RATO rank of `x` (`VarId::index`). Dense: the ring orders are small
    /// and the lookup sits on the innermost division loop.
    by_lead_var: Vec<Option<usize>>,
    /// All other divisors.
    general: Vec<usize>,
}

impl<'a> Reducer<'a> {
    /// Prepares a reducer over `divisors`.
    ///
    /// Zero divisors are ignored. If several divisors share the same bare
    /// leading variable the first one wins the index and the rest go to the
    /// general list (division remains correct, just slower).
    pub fn new(ring: &'a Ring, divisors: impl IntoIterator<Item = &'a Poly>) -> Self {
        let mut by_lead_var: Vec<Option<usize>> = vec![None; ring.num_vars()];
        let mut general = Vec::new();
        let mut entries: Vec<DivEntry<'a>> = Vec::new();
        for d in divisors {
            let Some(lm) = d.leading_monomial() else {
                continue;
            };
            let idx = entries.len();
            entries.push(DivEntry {
                poly: d,
                inv_lc: None,
            });
            let factors = lm.factors();
            if factors.len() == 1 && factors[0].1 == 1 {
                let slot = &mut by_lead_var[factors[0].0.index()];
                if slot.is_none() {
                    *slot = Some(idx);
                    continue;
                }
            }
            general.push(idx);
        }
        // Invert every non-unit leading coefficient in one batch
        // (Montgomery's trick: a single extended GCD for the whole set).
        let needs_inv: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                !e.poly
                    .leading_coeff()
                    .expect("divisor is non-zero")
                    .is_one()
            })
            .map(|(i, _)| i)
            .collect();
        if !needs_inv.is_empty() {
            let lcs: Vec<Gf> = needs_inv
                .iter()
                .map(|&i| {
                    entries[i]
                        .poly
                        .leading_coeff()
                        .expect("divisor is non-zero")
                        .clone()
                })
                .collect();
            let invs = ring
                .ctx()
                .batch_inv(&lcs)
                .expect("leading coefficients are non-zero");
            for (&i, inv) in needs_inv.iter().zip(invs) {
                entries[i].inv_lc = Some(inv);
            }
        }
        Reducer {
            ring,
            entries,
            by_lead_var,
            general,
        }
    }

    /// The ring this reducer divides in.
    pub fn ring(&self) -> &Ring {
        self.ring
    }

    /// Finds a divisor whose leading monomial divides `m`.
    fn find_divisor(&self, m: &Monomial) -> Option<&DivEntry<'a>> {
        for &(v, _) in m.factors() {
            if let Some(i) = self.by_lead_var[v.index()] {
                return Some(&self.entries[i]);
            }
        }
        self.general
            .iter()
            .map(|&i| &self.entries[i])
            .find(|e| e.poly.leading_monomial().is_some_and(|lm| lm.divides(m)))
    }

    /// Computes the normal form (remainder) of `f` under multivariate
    /// division by the divisor set: repeatedly cancels the greatest term
    /// divisible by some leading monomial until no term of the remainder is
    /// divisible by any divisor's leading term.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn normal_form(&self, f: &Poly) -> Result<Poly, PolyError> {
        self.normal_form_with_stats(f).map(|(p, _)| p)
    }

    /// [`Reducer::normal_form`] plus effort statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn normal_form_with_stats(&self, f: &Poly) -> Result<(Poly, ReductionStats), PolyError> {
        self.normal_form_inner(f, None)
    }

    /// [`Reducer::normal_form_with_stats`] polled against a cooperative
    /// [`Budget`] every [`BUDGET_STRIDE`] division-loop iterations. Each
    /// poll charges the stride as work units, so work-cap exhaustion
    /// depends only on the total division effort — deterministic across
    /// thread counts.
    ///
    /// # Errors
    ///
    /// [`PolyError::BudgetExceeded`] when the budget runs out;
    /// otherwise propagates [`PolyError::ExponentOverflow`].
    pub fn normal_form_budgeted(
        &self,
        f: &Poly,
        budget: &Budget,
    ) -> Result<(Poly, ReductionStats), PolyError> {
        self.normal_form_inner(f, Some(budget))
    }

    fn normal_form_inner(
        &self,
        f: &Poly,
        budget: Option<&Budget>,
    ) -> Result<(Poly, ReductionStats), PolyError> {
        let ctx = self.ring.ctx();
        let mut iterations: u64 = 0;
        let mut stats = ReductionStats::default();
        let kernel_before = kernel::snapshot();
        // Lazy-merge working store: a max-heap ordered by monomial. Terms
        // are pushed without merging; merging happens when equal monomials
        // surface together at the top. This keeps the per-step cost at
        // O(log n) pushes with no rebalancing of merged entries, and the
        // heap's backing buffer is reused across all cancellations of one
        // normal-form computation.
        let mut work: BinaryHeap<HeapTerm> = BinaryHeap::with_capacity(f.num_terms() * 2);
        for (m, c) in f.terms() {
            work.push(HeapTerm(m.clone(), c.clone()));
        }
        // Remainder terms accumulate in strictly descending order because we
        // always move the current maximum.
        let mut remainder: Vec<(Monomial, Gf)> = Vec::new();
        while let Some(HeapTerm(m, mut c)) = work.pop() {
            iterations += 1;
            if iterations.is_multiple_of(SIZE_SAMPLE_STRIDE) {
                stats.size_hist.record(work.len() as u64 + 1);
                if let Some(b) = budget {
                    if iterations.is_multiple_of(BUDGET_STRIDE) {
                        b.tick(BUDGET_STRIDE)?;
                    }
                }
            }
            stats.peak_terms = stats.peak_terms.max(work.len() + 1);
            // Merge every queued term with the same monomial.
            while let Some(top) = work.peek() {
                if top.0 != m {
                    break;
                }
                c = c.add(&work.pop().expect("peeked").1);
            }
            if c.is_zero() {
                stats.cancellations += 1;
                continue;
            }
            match self.find_divisor(&m) {
                None => remainder.push((m, c)),
                Some(entry) => {
                    stats.steps += 1;
                    let d = entry.poly;
                    // m = q * lm(d); cancel c*m with (c / lc(d)) * q * d.
                    // The inverse leading coefficient was precomputed (in
                    // one batch) when the reducer was built.
                    let lm = d.leading_monomial().expect("divisor is non-zero");
                    let q = lm.quotient_of(&m);
                    let scale = match &entry.inv_lc {
                        None => c,
                        Some(inv) => ctx.mul(&c, inv),
                    };
                    // Subtract scale * q * tail(d) (char 2: subtract = add).
                    // Gate polynomials have unit coefficients, so skip the
                    // field multiplication whenever either factor is 1, and
                    // skip the monomial merge-multiply when q = 1 (the
                    // common case for the triangular RATO substitutions).
                    let trivial_q = q.is_one();
                    for (tm, tc) in d.terms().iter().skip(1) {
                        let nm = if trivial_q {
                            tm.clone()
                        } else {
                            tm.mul(&q, self.ring)?
                        };
                        let nc = if tc.is_one() {
                            scale.clone()
                        } else if scale.is_one() {
                            tc.clone()
                        } else {
                            ctx.mul(tc, &scale)
                        };
                        if !nc.is_zero() {
                            work.push(HeapTerm(nm, nc));
                        }
                    }
                }
            }
        }
        stats.polls = if budget.is_some() {
            iterations / BUDGET_STRIDE
        } else {
            0
        };
        stats.kernel = kernel::snapshot().delta_since(&kernel_before);
        Ok((Poly::from_terms(remainder), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ExponentMode, RingBuilder, VarKind};
    use crate::VarId;
    use gfab_field::{Gf2Poly, GfContext};

    /// Builds F_4[x > y > Z] for tests.
    fn setup(mode: ExponentMode) -> (Ring, VarId, VarId, VarId) {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, mode);
        let x = rb.add_var("x", VarKind::Bit);
        let y = rb.add_var("y", VarKind::Bit);
        let z = rb.add_var("Z", VarKind::Word);
        (rb.build(), x, y, z)
    }

    fn p(terms: Vec<(Monomial, Gf)>) -> Poly {
        Poly::from_terms(terms)
    }

    #[test]
    fn triangular_substitution_chain() {
        // x + y, y + Z  =>  NF(x) = Z.
        let (ring, x, y, z) = setup(ExponentMode::Quotient);
        let one = ring.ctx().one();
        let d1 = p(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let d2 = p(vec![
            (Monomial::var(y), one.clone()),
            (Monomial::var(z), one.clone()),
        ]);
        let divisors = [d1, d2];
        let red = Reducer::new(&ring, divisors.iter());
        let f = ring.var_poly(x);
        let nf = red.normal_form(&f).unwrap();
        assert_eq!(nf, ring.var_poly(z));
    }

    #[test]
    fn remainder_not_divisible_by_any_leading_term() {
        let (ring, x, y, _) = setup(ExponentMode::Quotient);
        let one = ring.ctx().one();
        // divisor: x + y  => NF(x*y + y) = y*y + y = y + y = 0 (quotient mode)
        let d = p(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let divisors = [d];
        let red = Reducer::new(&ring, divisors.iter());
        let f = p(vec![
            (Monomial::from_factors(vec![(x, 1), (y, 1)]), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let nf = red.normal_form(&f).unwrap();
        assert!(nf.is_zero(), "got {}", nf.display(&ring));
    }

    #[test]
    fn plain_mode_same_example_leaves_square() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        let d = p(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let divisors = [d];
        let red = Reducer::new(&ring, divisors.iter());
        let f = p(vec![
            (Monomial::from_factors(vec![(x, 1), (y, 1)]), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        // x*y -> y^2, so NF = y^2 + y.
        let nf = red.normal_form(&f).unwrap();
        let expected = p(vec![
            (Monomial::var_pow(y, 2), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        assert_eq!(nf, expected);
    }

    #[test]
    fn general_divisors_with_nontrivial_leading_monomials() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let one = ring.ctx().one();
        // divisor: x^2 + y (leading monomial x^2, not a bare variable)
        let d = p(vec![
            (Monomial::var_pow(x, 2), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let divisors = [d];
        let red = Reducer::new(&ring, divisors.iter());
        // f = x^3 => x * x^2 -> x*y; then x*y is not divisible by x^2.
        let f = p(vec![(Monomial::var_pow(x, 3), one.clone())]);
        let nf = red.normal_form(&f).unwrap();
        let expected = p(vec![(
            Monomial::from_factors(vec![(x, 1), (y, 1)]),
            one.clone(),
        )]);
        assert_eq!(nf, expected);
    }

    #[test]
    fn non_monic_divisors_are_scaled() {
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let alpha = ring.ctx().alpha();
        let one = ring.ctx().one();
        // divisor: α·x + y  => NF(x) = α⁻¹·y
        let d = p(vec![
            (Monomial::var(x), alpha.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let divisors = [d];
        let red = Reducer::new(&ring, divisors.iter());
        let nf = red.normal_form(&ring.var_poly(x)).unwrap();
        let ainv = ring.ctx().inv(&alpha).unwrap();
        assert_eq!(nf, ring.var_poly(y).scale(&ainv, &ring));
    }

    #[test]
    fn stats_count_steps() {
        let (ring, x, y, z) = setup(ExponentMode::Quotient);
        let one = ring.ctx().one();
        let d1 = p(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()),
        ]);
        let d2 = p(vec![
            (Monomial::var(y), one.clone()),
            (Monomial::var(z), one.clone()),
        ]);
        let divisors = [d1, d2];
        let red = Reducer::new(&ring, divisors.iter());
        let (_, stats) = red.normal_form_with_stats(&ring.var_poly(x)).unwrap();
        assert_eq!(stats.steps, 2); // x -> y -> Z
    }

    #[test]
    fn division_invariant_f_equals_sum_plus_remainder() {
        // Verify f ≡ NF(f) modulo the ideal by evaluating on all points of
        // the variety of the divisors (here: pick divisor x + y + 1 and
        // check on assignments satisfying it).
        let (ring, x, y, _) = setup(ExponentMode::Plain);
        let ctx = ring.ctx().clone();
        let one = ctx.one();
        let d = p(vec![
            (Monomial::var(x), one.clone()),
            (Monomial::var(y), one.clone()),
            (Monomial::one(), one.clone()),
        ]);
        let divisors = [d.clone()];
        let red = Reducer::new(&ring, divisors.iter());
        let f = p(vec![
            (Monomial::from_factors(vec![(x, 2), (y, 1)]), one.clone()),
            (Monomial::var(x), one.clone()),
        ]);
        let nf = red.normal_form(&f).unwrap();
        // On every point where d vanishes, f and nf must agree.
        for a in ctx.iter_elements() {
            for b in ctx.iter_elements() {
                let vals = vec![a.clone(), b.clone(), ctx.zero()];
                if d.eval(&ring, &vals).is_zero() {
                    assert_eq!(f.eval(&ring, &vals), nf.eval(&ring, &vals));
                }
            }
        }
    }
}
