//! # gfab-poly
//!
//! Multivariate polynomial algebra over `F_{2^k}`, tailored to the
//! word-level abstraction method of Pruss/Kalla/Enescu (DAC 2014).
//!
//! The central objects:
//!
//! * [`Ring`] — a polynomial ring `F_{2^k}[x_0, …, x_{n-1}]` whose variables
//!   are *ranked*: variable index 0 is the **greatest** in the pure
//!   lexicographic order. The abstraction term order of the paper (circuit
//!   bits > output word `Z` > input words) and its RATO refinement are
//!   expressed simply by choosing the variable numbering.
//! * [`Monomial`] — sparse power products with `u64` exponents.
//! * [`Poly`] — sorted sparse polynomials with [`gfab_field::Gf`]
//!   coefficients.
//! * [`reduce`] — multivariate division (normal forms) against divisor sets,
//!   with a fast path for "triangular" circuit polynomials of the form
//!   `x + tail(x)`.
//! * [`buchberger`] — S-polynomials and Buchberger's algorithm with the
//!   product and chain criteria, plus reduced Gröbner bases.
//! * [`vanishing`] — the vanishing ideal
//!   `J_0 = ⟨x² − x, …, X^q − X⟩` of `F_q` (Strong Nullstellensatz,
//!   Theorem 3.2 of the paper).
//!
//! ## Exponent semantics
//!
//! A ring is created in one of two [`ExponentMode`]s:
//!
//! * [`ExponentMode::Plain`] — textbook polynomial arithmetic. Vanishing
//!   polynomials must be explicit generators (this is the mode used by the
//!   Buchberger engine, matching the paper's `GB(J + J_0)`).
//! * [`ExponentMode::Quotient`] — arithmetic in the quotient ring
//!   `F_q[X]/J_0`: bit-variable exponents cap at 1 (`x² = x`) and
//!   word-variable exponents reduce by `X^q = X` whenever `q = 2^k` fits in
//!   a `u64`. This realizes *eager* division by `J_0` and is the mode used
//!   by the guided extraction flow, where every normal form is taken modulo
//!   a set containing `J_0` anyway.
//!
//! # Example
//!
//! ```
//! use gfab_field::{GfContext, Gf2Poly};
//! use gfab_poly::{RingBuilder, VarKind, ExponentMode};
//!
//! let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap(); // F_4
//! let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
//! let x = rb.add_var("x", VarKind::Bit);   // greatest
//! let z = rb.add_var("Z", VarKind::Word);  // smaller
//! let ring = rb.build();
//! let p = ring.var_poly(x).mul(&ring.var_poly(x), &ring).unwrap(); // x² = x
//! assert_eq!(p, ring.var_poly(x));
//! let _ = z;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buchberger;
mod monomial;
mod parse;
mod poly;
pub mod reduce;
mod ring;
pub mod vanishing;

pub use monomial::Monomial;
pub use parse::{parse_constant, parse_poly, ParsePolyError};
pub use poly::{Poly, Term};
pub use ring::{ExponentMode, PolyError, Ring, RingBuilder, VarId, VarInfo, VarKind};
