//! Sparse power products with pure-lex comparison.

use crate::ring::{PolyError, Ring, VarId};
use std::cmp::Ordering;
use std::fmt;

/// A power product `x_{v1}^{e1} · x_{v2}^{e2} · …` stored sparsely as
/// `(variable, exponent)` factors sorted by ascending variable rank (i.e.
/// most significant variable first, since rank 0 is the greatest variable).
///
/// `Ord` implements the **pure lexicographic order** induced by the variable
/// ranking: monomials compare on the exponent of the greatest variable where
/// they differ. This is the order underlying both the abstraction term order
/// and RATO in the paper.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Monomial {
    /// Factors sorted by ascending `VarId` rank; exponents are non-zero.
    factors: Vec<(VarId, u64)>,
}

impl Monomial {
    /// The empty product (the constant monomial `1`).
    #[must_use]
    pub fn one() -> Self {
        Monomial {
            factors: Vec::new(),
        }
    }

    /// The single variable `v`.
    #[must_use]
    pub fn var(v: VarId) -> Self {
        Monomial {
            factors: vec![(v, 1)],
        }
    }

    /// The power `v^e` (`1` if `e == 0`).
    #[must_use]
    pub fn var_pow(v: VarId, e: u64) -> Self {
        if e == 0 {
            Monomial::one()
        } else {
            Monomial {
                factors: vec![(v, e)],
            }
        }
    }

    /// Builds a monomial from arbitrary `(var, exp)` pairs; zero exponents
    /// are dropped, duplicates are summed, factors are sorted.
    #[must_use]
    pub fn from_factors(mut factors: Vec<(VarId, u64)>) -> Self {
        factors.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, u64)> = Vec::with_capacity(factors.len());
        for (v, e) in factors {
            if e == 0 {
                continue;
            }
            match out.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => out.push((v, e)),
            }
        }
        Monomial { factors: out }
    }

    /// Whether this is the constant monomial `1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// The factors, sorted by ascending variable rank.
    #[must_use]
    pub fn factors(&self) -> &[(VarId, u64)] {
        &self.factors
    }

    /// The exponent of `v` (0 if absent).
    #[must_use]
    pub fn exponent(&self, v: VarId) -> u64 {
        self.factors
            .binary_search_by_key(&v, |&(w, _)| w)
            .map(|i| self.factors[i].1)
            .unwrap_or(0)
    }

    /// Whether `v` occurs with positive exponent.
    #[must_use]
    pub fn contains(&self, v: VarId) -> bool {
        self.exponent(v) > 0
    }

    /// The greatest (lex-most-significant) variable, or `None` for `1`.
    #[must_use]
    pub fn leading_var(&self) -> Option<VarId> {
        self.factors.first().map(|&(v, _)| v)
    }

    /// The total degree (sum of exponents).
    #[must_use]
    pub fn total_degree(&self) -> u64 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// Iterates over the variables occurring in this monomial.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.factors.iter().map(|&(v, _)| v)
    }

    /// Multiplies two monomials under the ring's exponent mode.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyError::ExponentOverflow`].
    pub fn mul(&self, other: &Monomial, ring: &Ring) -> Result<Monomial, PolyError> {
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (va, ea) = self.factors[i];
            let (vb, eb) = other.factors[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    out.push((va, ea));
                    i += 1;
                }
                Ordering::Greater => {
                    out.push((vb, eb));
                    j += 1;
                }
                Ordering::Equal => {
                    let e = ring.combine_exponents(va, ea, eb)?;
                    if e > 0 {
                        out.push((va, e));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Ok(Monomial { factors: out })
    }

    /// Whether `self` divides `other` (exponent-wise `≤`).
    #[must_use]
    pub fn divides(&self, other: &Monomial) -> bool {
        let mut j = 0;
        for &(v, e) in &self.factors {
            // Advance in other's sorted factor list.
            loop {
                match other.factors.get(j) {
                    Some(&(w, _)) if w < v => j += 1,
                    Some(&(w, f)) if w == v => {
                        if f < e {
                            return false;
                        }
                        break;
                    }
                    _ => return false,
                }
            }
        }
        true
    }

    /// The quotient `other / self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` does not divide `other` (checked in debug builds by
    /// the subtraction underflow).
    #[must_use]
    pub fn quotient_of(&self, other: &Monomial) -> Monomial {
        debug_assert!(self.divides(other), "quotient_of requires divisibility");
        let mut out = Vec::with_capacity(other.factors.len());
        let mut i = 0;
        for &(v, e) in &other.factors {
            let mut sub = 0;
            if let Some(&(w, f)) = self.factors.get(i) {
                if w == v {
                    sub = f;
                    i += 1;
                }
            }
            let r = e - sub;
            if r > 0 {
                out.push((v, r));
            }
        }
        Monomial { factors: out }
    }

    /// The least common multiple (exponent-wise max).
    #[must_use]
    pub fn lcm(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (va, ea) = self.factors[i];
            let (vb, eb) = other.factors[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    out.push((va, ea));
                    i += 1;
                }
                Ordering::Greater => {
                    out.push((vb, eb));
                    j += 1;
                }
                Ordering::Equal => {
                    out.push((va, ea.max(eb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }

    /// Whether the two monomials are relatively prime (share no variable) —
    /// the hypothesis of Buchberger's product criterion (Lemma 5.1).
    #[must_use]
    pub fn relatively_prime(&self, other: &Monomial) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            match self.factors[i].0.cmp(&other.factors[j].0) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => return false,
            }
        }
        true
    }

    /// Renames variables through `f`, re-sorting as needed. Used when moving
    /// polynomials between rings (e.g. hierarchical composition).
    #[must_use]
    pub fn relabel(&self, f: impl Fn(VarId) -> VarId) -> Monomial {
        Monomial::from_factors(self.factors.iter().map(|&(v, e)| (f(v), e)).collect())
    }

    /// Formats the monomial with the ring's variable names.
    pub fn display<'a>(&'a self, ring: &'a Ring) -> impl fmt::Display + 'a {
        MonomialDisplay { m: self, ring }
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// Pure lex: compare on the greatest variable where exponents differ.
    fn cmp(&self, other: &Self) -> Ordering {
        let (mut i, mut j) = (0, 0);
        loop {
            match (self.factors.get(i), other.factors.get(j)) {
                (None, None) => return Ordering::Equal,
                // `self` still has a factor in a more significant position:
                // it has a positive exponent where `other` has zero.
                (Some(_), None) => return Ordering::Greater,
                (None, Some(_)) => return Ordering::Less,
                (Some(&(va, ea)), Some(&(vb, eb))) => {
                    match va.cmp(&vb) {
                        // va is a greater (smaller-rank) variable that other
                        // lacks -> self has higher exponent there -> greater.
                        Ordering::Less => return Ordering::Greater,
                        Ordering::Greater => return Ordering::Less,
                        Ordering::Equal => match ea.cmp(&eb) {
                            Ordering::Equal => {
                                i += 1;
                                j += 1;
                            }
                            ord => return ord,
                        },
                    }
                }
            }
        }
    }
}

struct MonomialDisplay<'a> {
    m: &'a Monomial,
    ring: &'a Ring,
}

impl fmt::Display for MonomialDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.m.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for &(v, e) in self.m.factors() {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            let name = &self.ring.var_info(v).name;
            if e == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{name}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ExponentMode, RingBuilder, VarKind};
    use gfab_field::{Gf2Poly, GfContext};

    fn setup() -> (Ring, VarId, VarId, VarId) {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Plain);
        let x = rb.add_var("x", VarKind::Bit);
        let y = rb.add_var("y", VarKind::Bit);
        let z = rb.add_var("Z", VarKind::Word);
        (rb.build(), x, y, z)
    }

    #[test]
    fn lex_order_basics() {
        let (_, x, y, z) = setup();
        // x > y > Z; x > y^5, x*y > x, Z^9 < y.
        assert!(Monomial::var(x) > Monomial::var(y));
        assert!(Monomial::var(y) > Monomial::var(z));
        assert!(Monomial::var(x) > Monomial::var_pow(y, 5));
        let xy = Monomial::from_factors(vec![(x, 1), (y, 1)]);
        assert!(xy > Monomial::var(x));
        assert!(Monomial::var_pow(z, 9) < Monomial::var(y));
        assert!(Monomial::var(x) > Monomial::one());
    }

    #[test]
    fn lex_order_on_shared_vars() {
        let (_, x, y, _) = setup();
        let x2 = Monomial::var_pow(x, 2);
        let x1y9 = Monomial::from_factors(vec![(x, 1), (y, 9)]);
        assert!(x2 > x1y9);
    }

    #[test]
    fn mul_merges_and_respects_mode() {
        let (ring, x, y, _) = setup();
        let a = Monomial::from_factors(vec![(x, 1), (y, 2)]);
        let b = Monomial::from_factors(vec![(y, 1)]);
        let c = a.mul(&b, &ring).unwrap();
        assert_eq!(c, Monomial::from_factors(vec![(x, 1), (y, 3)]));
    }

    #[test]
    fn divides_and_quotient() {
        let (_, x, y, z) = setup();
        let big = Monomial::from_factors(vec![(x, 2), (y, 1), (z, 3)]);
        let small = Monomial::from_factors(vec![(x, 1), (z, 3)]);
        assert!(small.divides(&big));
        assert!(!big.divides(&small));
        let q = small.quotient_of(&big);
        assert_eq!(q, Monomial::from_factors(vec![(x, 1), (y, 1)]));
        assert!(Monomial::one().divides(&big));
    }

    #[test]
    fn lcm_and_relatively_prime() {
        let (_, x, y, z) = setup();
        let a = Monomial::from_factors(vec![(x, 2), (y, 1)]);
        let b = Monomial::from_factors(vec![(y, 3), (z, 1)]);
        assert_eq!(
            a.lcm(&b),
            Monomial::from_factors(vec![(x, 2), (y, 3), (z, 1)])
        );
        assert!(!a.relatively_prime(&b));
        let c = Monomial::var(z);
        assert!(a.relatively_prime(&c));
    }

    #[test]
    fn from_factors_normalizes() {
        let (_, x, y, _) = setup();
        let m = Monomial::from_factors(vec![(y, 1), (x, 0), (y, 2)]);
        assert_eq!(m, Monomial::var_pow(y, 3));
        assert_eq!(m.leading_var(), Some(y));
    }

    #[test]
    fn display_names() {
        let (ring, x, y, _) = setup();
        let m = Monomial::from_factors(vec![(x, 1), (y, 2)]);
        assert_eq!(format!("{}", m.display(&ring)), "x*y^2");
        assert_eq!(format!("{}", Monomial::one().display(&ring)), "1");
    }
}
