//! A small parser for word-level polynomial expressions.
//!
//! Lets users write specification polynomials as text — e.g. for the
//! ideal-membership flow ("given the specification polynomial F") without
//! constructing [`Poly`] values by hand:
//!
//! ```text
//! A*B                    the multiplier spec
//! a^16*B + (a+1)*A       coefficients as polynomials in the root `a` (α)
//! A^2 + B^2 + 1          squarer-ish expressions
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := term ('+' term)*
//! term    := factor ('*' factor)*
//! factor  := primary ('^' integer)?
//! primary := identifier | integer | 'a' | '(' expr ')'
//! ```
//!
//! `a` (or `α`, or `alpha`) denotes the field generator; bare integers are
//! `0`/`1` (the only field constants with a canonical digit form);
//! identifiers resolve to ring variables by name.

use crate::monomial::Monomial;
use crate::poly::Poly;
use crate::ring::{PolyError, Ring};
use gfab_field::Gf;
use std::fmt;

/// Errors from polynomial parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePolyError {
    /// Unexpected character at byte offset.
    UnexpectedChar(usize, char),
    /// Unexpected end of input.
    UnexpectedEnd,
    /// An identifier did not match any ring variable.
    UnknownVariable(String),
    /// A numeric literal other than 0/1 (field elements must be written in
    /// terms of the generator `a`).
    BadConstant(String),
    /// Arithmetic on the parsed polynomial failed.
    Poly(PolyError),
}

impl fmt::Display for ParsePolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePolyError::UnexpectedChar(pos, c) => {
                write!(f, "unexpected character `{c}` at offset {pos}")
            }
            ParsePolyError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ParsePolyError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            ParsePolyError::BadConstant(s) => write!(
                f,
                "constant `{s}` is not 0 or 1; write field constants in terms of `a` (e.g. a^3 + a)"
            ),
            ParsePolyError::Poly(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParsePolyError {}

impl From<PolyError> for ParsePolyError {
    fn from(e: PolyError) -> Self {
        ParsePolyError::Poly(e)
    }
}

/// Parses an expression into a polynomial over `ring`, resolving
/// identifiers through the ring's variable names. `a`/`α`/`alpha` is the
/// field generator.
///
/// # Errors
///
/// See [`ParsePolyError`].
///
/// # Example
///
/// ```
/// use gfab_field::{GfContext, Gf2Poly};
/// use gfab_poly::{RingBuilder, VarKind, ExponentMode, parse_poly};
///
/// let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
/// let mut rb = RingBuilder::new(ctx.clone(), ExponentMode::Quotient);
/// rb.add_var("A", VarKind::Word);
/// rb.add_var("B", VarKind::Word);
/// let ring = rb.build();
/// let p = parse_poly("A*B + (a^3 + 1)*A + 1", &ring).unwrap();
/// assert_eq!(p.num_terms(), 3);
/// ```
pub fn parse_poly(input: &str, ring: &Ring) -> Result<Poly, ParsePolyError> {
    let mut parser = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        ring,
    };
    let p = parser.expr()?;
    parser.skip_ws();
    if let Some(&(off, c)) = parser.chars.get(parser.pos) {
        return Err(ParsePolyError::UnexpectedChar(off, c));
    }
    Ok(p)
}

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    ring: &'a Ring,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|&(_, c)| c.is_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        self.skip_ws();
        let c = self.chars.get(self.pos).map(|&(_, c)| c);
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expr(&mut self) -> Result<Poly, ParsePolyError> {
        let mut acc = self.term()?;
        while self.peek() == Some('+') {
            self.bump();
            acc = acc.add(&self.term()?);
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Poly, ParsePolyError> {
        let mut acc = self.factor()?;
        while self.peek() == Some('*') {
            self.bump();
            let rhs = self.factor()?;
            acc = acc.mul(&rhs, self.ring)?;
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Poly, ParsePolyError> {
        let base = self.primary()?;
        if self.peek() == Some('^') {
            self.bump();
            let e = self.integer()?;
            let mut acc = self.ring.constant(self.ring.ctx().one());
            // Square-and-multiply on the polynomial.
            let mut bit = 63 - e.leading_zeros().min(63);
            loop {
                acc = acc.mul(&acc, self.ring)?;
                if (e >> bit) & 1 == 1 {
                    acc = acc.mul(&base, self.ring)?;
                }
                if bit == 0 {
                    break;
                }
                bit -= 1;
            }
            if e == 0 {
                return Ok(self.ring.constant(self.ring.ctx().one()));
            }
            return Ok(acc);
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Poly, ParsePolyError> {
        match self.peek() {
            None => Err(ParsePolyError::UnexpectedEnd),
            Some('(') => {
                self.bump();
                let inner = self.expr()?;
                match self.bump() {
                    Some(')') => Ok(inner),
                    Some(c) => {
                        let off = self.chars[self.pos - 1].0;
                        Err(ParsePolyError::UnexpectedChar(off, c))
                    }
                    None => Err(ParsePolyError::UnexpectedEnd),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let n = self.integer()?;
                match n {
                    0 => Ok(Poly::zero()),
                    1 => Ok(self.ring.constant(self.ring.ctx().one())),
                    _ => Err(ParsePolyError::BadConstant(n.to_string())),
                }
            }
            Some(c) if c.is_alphanumeric() || c == '_' || c == 'α' => {
                let name = self.identifier();
                if name == "a" || name == "α" || name == "alpha" {
                    return Ok(self.ring.constant(self.ring.ctx().alpha()));
                }
                match self.ring.var_by_name(&name) {
                    Some(v) => Ok(Poly::from_terms(vec![(
                        Monomial::var(v),
                        self.ring.ctx().one(),
                    )])),
                    None => Err(ParsePolyError::UnknownVariable(name)),
                }
            }
            Some(c) => {
                let off = self.chars[self.pos].0;
                Err(ParsePolyError::UnexpectedChar(off, c))
            }
        }
    }

    fn identifier(&mut self) -> String {
        self.skip_ws();
        let mut out = String::new();
        while let Some(&(_, c)) = self.chars.get(self.pos) {
            if c.is_alphanumeric() || c == '_' || c == 'α' {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }

    fn integer(&mut self) -> Result<u64, ParsePolyError> {
        self.skip_ws();
        let mut digits = String::new();
        while let Some(&(_, c)) = self.chars.get(self.pos) {
            if c.is_ascii_digit() {
                digits.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return match self.chars.get(self.pos) {
                Some(&(off, c)) => Err(ParsePolyError::UnexpectedChar(off, c)),
                None => Err(ParsePolyError::UnexpectedEnd),
            };
        }
        digits
            .parse()
            .map_err(|_| ParsePolyError::BadConstant(digits))
    }
}

/// Convenience: parses a coefficient expression (no variables, only `a`)
/// into a field element.
///
/// # Errors
///
/// As [`parse_poly`]; additionally rejects expressions containing ring
/// variables.
pub fn parse_constant(input: &str, ring: &Ring) -> Result<Gf, ParsePolyError> {
    let p = parse_poly(input, ring)?;
    if let Some(v) = p.variables().first() {
        return Err(ParsePolyError::UnknownVariable(
            ring.var_info(*v).name.clone(),
        ));
    }
    Ok(p.coeff(&Monomial::one()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{ExponentMode, RingBuilder, VarId, VarKind};
    use gfab_field::{Gf2Poly, GfContext};

    fn ring() -> Ring {
        let ctx = GfContext::shared(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let mut rb = RingBuilder::new(ctx, ExponentMode::Quotient);
        rb.add_var("A", VarKind::Word);
        rb.add_var("B", VarKind::Word);
        rb.build()
    }

    #[test]
    fn parses_product_spec() {
        let r = ring();
        let p = parse_poly("A*B", &r).unwrap();
        let expected = Poly::from_terms(vec![(
            Monomial::from_factors(vec![(VarId(0), 1), (VarId(1), 1)]),
            r.ctx().one(),
        )]);
        assert_eq!(p, expected);
    }

    #[test]
    fn parses_powers_and_coefficients() {
        let r = ring();
        let p = parse_poly("a^3*A^2 + (a+1)*B + 1", &r).unwrap();
        assert_eq!(p.num_terms(), 3);
        let alpha3 = r.ctx().pow_u64(&r.ctx().alpha(), 3);
        assert_eq!(p.coeff(&Monomial::var_pow(VarId(0), 2)), alpha3);
        let a1 = r.ctx().add(&r.ctx().alpha(), &r.ctx().one());
        assert_eq!(p.coeff(&Monomial::var(VarId(1))), a1);
        assert_eq!(p.coeff(&Monomial::one()), r.ctx().one());
    }

    #[test]
    fn whitespace_and_parens() {
        let r = ring();
        let p1 = parse_poly("  ( A + B ) * ( A + B )  ", &r).unwrap();
        // (A+B)² = A² + B² in characteristic 2.
        let p2 = parse_poly("A^2 + B^2", &r).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn characteristic_two_cancellation() {
        let r = ring();
        assert!(parse_poly("A + A", &r).unwrap().is_zero());
        assert!(parse_poly("1 + 1", &r).unwrap().is_zero());
        assert!(parse_poly("0", &r).unwrap().is_zero());
    }

    #[test]
    fn exponent_zero_and_alpha_aliases() {
        let r = ring();
        let one = parse_poly("A^0", &r).unwrap();
        assert_eq!(one, r.constant(r.ctx().one()));
        assert_eq!(
            parse_poly("alpha", &r).unwrap(),
            parse_poly("a", &r).unwrap()
        );
    }

    #[test]
    fn quotient_exponent_reduction_applies() {
        // In F_16 (q = 16), A^16 = A.
        let r = ring();
        assert_eq!(
            parse_poly("A^16", &r).unwrap(),
            parse_poly("A", &r).unwrap()
        );
    }

    #[test]
    fn error_cases() {
        let r = ring();
        assert!(matches!(
            parse_poly("C", &r),
            Err(ParsePolyError::UnknownVariable(_))
        ));
        assert!(matches!(
            parse_poly("7*A", &r),
            Err(ParsePolyError::BadConstant(_))
        ));
        assert!(matches!(
            parse_poly("A +", &r),
            Err(ParsePolyError::UnexpectedEnd)
        ));
        assert!(matches!(
            parse_poly("(A", &r),
            Err(ParsePolyError::UnexpectedEnd)
        ));
        assert!(matches!(
            parse_poly("A B", &r),
            Err(ParsePolyError::UnexpectedChar(..))
        ));
    }

    #[test]
    fn parse_constant_rejects_variables() {
        let r = ring();
        assert_eq!(
            parse_constant("a^2 + 1", &r).unwrap(),
            r.ctx().from_u64(0b101)
        );
        assert!(parse_constant("A", &r).is_err());
    }

    #[test]
    fn roundtrip_with_display() {
        // Display output re-parses to the same polynomial (for simple
        // coefficient shapes).
        let r = ring();
        let p = parse_poly("A^2*B + a*A + 1", &r).unwrap();
        let shown = format!("{}", p.display(&r));
        // Display uses α; map it to `a` for the parser.
        let reparsed = parse_poly(&shown.replace('α', "a"), &r).unwrap();
        assert_eq!(p, reparsed);
    }
}
