//! Linear circuits: the Galois field adder and the constant multiplier.

use gfab_field::{Gf, Gf2Poly, GfContext};
use gfab_netlist::{NetId, Netlist};

/// Generates `Z = A + B` over `F_{2^k}` — a row of `k` XOR gates.
pub fn gf_adder(ctx: &GfContext) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("gfadd_{k}"));
    let a = nl.add_input_word("A", k);
    let b = nl.add_input_word("B", k);
    let zbits: Vec<NetId> = (0..k).map(|i| nl.xor(a[i], b[i])).collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Generates `Z = c·A (mod P)` for a fixed field element `c`: each output
/// bit is the XOR of the input bits selected by the matrix of the linear
/// map `x ↦ c·x`.
pub fn constant_multiplier(ctx: &GfContext, c: &Gf) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("cmult_{k}"));
    let a = nl.add_input_word("A", k);
    // Row i: c * x^i mod P.
    let c_rows: Vec<Vec<bool>> = (0..k)
        .map(|i| {
            let r = c.as_poly().mul(&Gf2Poly::monomial(i)).rem(ctx.modulus());
            (0..k).map(|j| r.coeff(j)).collect()
        })
        .collect();
    let zbits: Vec<NetId> = (0..k)
        .map(|j| {
            let terms: Vec<NetId> = (0..k).filter(|&i| c_rows[i][j]).map(|i| a[i]).collect();
            nl.xor_tree(&terms)
        })
        .collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_netlist::sim::exhaustive_check;

    #[test]
    fn adder_adds() {
        for k in 2..=6 {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = gf_adder(&ctx);
            exhaustive_check(&nl, &ctx, |w| ctx.add(&w[0], &w[1]))
                .unwrap_or_else(|w| panic!("k={k} mismatch at {w:?}"));
        }
    }

    #[test]
    fn constant_multiplier_all_constants_f16() {
        let ctx = GfContext::new(irreducible_polynomial(4).unwrap()).unwrap();
        for c in ctx.iter_elements() {
            let nl = constant_multiplier(&ctx, &c);
            nl.validate().unwrap();
            exhaustive_check(&nl, &ctx, |w| ctx.mul(&c, &w[0]))
                .unwrap_or_else(|w| panic!("c={c} mismatch at {w:?}"));
        }
    }

    #[test]
    fn constant_zero_gives_constant_circuit() {
        let ctx = GfContext::new(irreducible_polynomial(3).unwrap()).unwrap();
        let nl = constant_multiplier(&ctx, &ctx.zero());
        exhaustive_check(&nl, &ctx, |_| ctx.zero()).unwrap();
    }
}
