//! # gfab-circuits
//!
//! Gate-level generators for the Galois field arithmetic architectures the
//! paper evaluates (Section 3 and Section 6):
//!
//! * [`mastrovito_multiplier`] — the baseline "golden" multiplier
//!   `Z = A·B (mod P)`: an AND array computing the polynomial product
//!   followed by a fixed XOR reduction network derived from the reduction
//!   matrix `x^n mod P(x)` ([Mastrovito, 1989]).
//! * [`monpro`] — the bit-serial Montgomery product
//!   `MonPro(A, B) = A·B·R⁻¹ (mod P)` with `R = x^k`
//!   ([Koç & Acar, 1998]), with either two word operands or one word and
//!   one *constant* operand (constant operands generate the
//!   constant-propagated blocks the paper's Table 2 reports).
//! * [`montgomery_multiplier_hier`] — the four-block hierarchical
//!   Montgomery multiplier of Fig. 1:
//!   `AR = MM(A, R²)`, `BR = MM(B, R²)`, `ABR = MM(AR, BR)`,
//!   `G = MM(ABR, 1) = A·B (mod P)`.
//! * [`squarer`] — the linear `Z = A² (mod P)` XOR network.
//! * [`constant_multiplier`] — `Z = c·A (mod P)` for a fixed `c`.
//! * [`gf_adder`] — `Z = A + B` (bit-wise XOR).
//!
//! All generators return validated [`gfab_netlist::Netlist`]s whose word
//! bindings follow the paper's convention `A = a_0 + a_1 α + … `.
//!
//! # Example
//!
//! ```
//! use gfab_field::{GfContext, Gf2Poly};
//! use gfab_circuits::mastrovito_multiplier;
//! use gfab_netlist::sim::simulate_word;
//!
//! let ctx = GfContext::new(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
//! let mult = mastrovito_multiplier(&ctx);
//! let a = ctx.from_u64(0b0110);
//! let b = ctx.from_u64(0b1011);
//! assert_eq!(simulate_word(&mult, &ctx, &[a.clone(), b.clone()]), ctx.mul(&a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod linearmaps;
mod mastrovito;
mod montgomery;
mod reduction;
pub mod registry;
mod squarer;

pub use adder::{constant_multiplier, gf_adder};
pub use linearmaps::{sqrt_circuit, trace_circuit};
pub use mastrovito::mastrovito_multiplier;
pub use montgomery::{monpro, montgomery_multiplier_hier, MonproOperand};
pub use reduction::reduction_matrix;
pub use registry::{build_pair, choose_arch, Arch, ALL_ARCHES};
pub use squarer::squarer;
