//! The reduction matrix shared by the Mastrovito multiplier and the
//! squarer generators.

use gfab_field::{Gf2Poly, GfContext};

/// Rows `x^n mod P(x)` for `n = 0 … max_n`, each as a `k`-bit row
/// (`row[n][j]` is the coefficient of `x^j` in `x^n mod P`).
///
/// Rows `0 … k−1` are unit vectors; rows `k … max_n` encode how overflow
/// bits of a polynomial product fold back into the field — the
/// "reduction matrix" of Mastrovito's construction.
pub fn reduction_matrix(ctx: &GfContext, max_n: usize) -> Vec<Vec<bool>> {
    let k = ctx.k();
    (0..=max_n)
        .map(|n| {
            let r = Gf2Poly::monomial(n).rem(ctx.modulus());
            (0..k).map(|j| r.coeff(j)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::Gf2Poly;

    #[test]
    fn low_rows_are_identity() {
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let m = reduction_matrix(&ctx, 6);
        for (n, row) in m.iter().enumerate().take(4) {
            for (j, &bit) in row.iter().enumerate() {
                assert_eq!(bit, n == j);
            }
        }
    }

    #[test]
    fn overflow_rows_match_field_reduction() {
        // x^4 = x + 1 mod x^4+x+1.
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap();
        let m = reduction_matrix(&ctx, 6);
        assert_eq!(m[4], vec![true, true, false, false]);
        // x^5 = x^2 + x.
        assert_eq!(m[5], vec![false, true, true, false]);
        // x^6 = x^3 + x^2.
        assert_eq!(m[6], vec![false, false, true, true]);
    }
}
