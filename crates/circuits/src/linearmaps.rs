//! Circuits for the `F_2`-linear field maps: square root and trace.
//!
//! Both maps are linear over `F_2` (Frobenius and its iterates), so their
//! circuits are pure XOR networks derived from how each basis element
//! `α^i` maps. They give the verification engine canonical polynomials of
//! very high degree — `√A = A^(2^(k-1))`, `Tr(A) = A + A² + … + A^(2^(k-1))`
//! — making them good stress tests for word-level abstraction beyond the
//! multiplier's humble `A·B`.

use gfab_field::GfContext;
use gfab_netlist::{NetId, Netlist};

/// Generates the square-root network `Z = √A = A^(2^(k-1)) (mod P)`.
pub fn sqrt_circuit(ctx: &GfContext) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("sqrt_{k}"));
    let a = nl.add_input_word("A", k);
    // Column j of the matrix of the linear map: √(α^i).
    let rows: Vec<Vec<bool>> = (0..k)
        .map(|i| ctx.to_bits(&ctx.sqrt(&ctx.alpha_pow(i as u64))))
        .collect();
    let zbits: Vec<NetId> = (0..k)
        .map(|j| {
            let terms: Vec<NetId> = (0..k).filter(|&i| rows[i][j]).map(|i| a[i]).collect();
            nl.xor_tree(&terms)
        })
        .collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Generates the absolute-trace network: a **1-bit** output word
/// `Z = Tr(A) = A + A² + … + A^(2^(k-1))`.
///
/// Exercises narrow output words (width < k) in the abstraction flow.
pub fn trace_circuit(ctx: &GfContext) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("trace_{k}"));
    let a = nl.add_input_word("A", k);
    // Tr is linear: Tr(A) = Σ a_i · Tr(α^i).
    let taps: Vec<NetId> = (0..k)
        .filter(|&i| ctx.trace(&ctx.alpha_pow(i as u64)).is_one())
        .map(|i| a[i])
        .collect();
    let z = nl.xor_tree(&taps);
    nl.set_output_word("Z", vec![z]);
    debug_assert!(nl.validate().is_ok());
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_netlist::sim::exhaustive_check;

    #[test]
    fn sqrt_circuit_matches_field_sqrt() {
        for k in [2usize, 3, 4, 8] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = sqrt_circuit(&ctx);
            exhaustive_check(&nl, &ctx, |w| ctx.sqrt(&w[0]))
                .unwrap_or_else(|w| panic!("k={k} mismatch at {w:?}"));
        }
    }

    #[test]
    fn trace_circuit_matches_field_trace() {
        for k in [2usize, 3, 4, 8] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = trace_circuit(&ctx);
            exhaustive_check(&nl, &ctx, |w| ctx.trace(&w[0]))
                .unwrap_or_else(|w| panic!("k={k} mismatch at {w:?}"));
        }
    }

    #[test]
    fn trace_output_is_one_bit() {
        let ctx = GfContext::new(irreducible_polynomial(8).unwrap()).unwrap();
        let nl = trace_circuit(&ctx);
        assert_eq!(nl.output_word().width(), 1);
    }
}
