//! The Mastrovito multiplier: the paper's baseline golden model (Spec).

use crate::reduction::reduction_matrix;
use gfab_field::GfContext;
use gfab_netlist::{NetId, Netlist};

/// Generates a flattened gate-level Mastrovito multiplier
/// `Z = A·B (mod P(x))` over `F_{2^k}` (Section 3 of the paper):
///
/// 1. an AND array computes all partial products `a_i·b_j`;
/// 2. XOR trees sum them into the coefficients `s_n` of the polynomial
///    product `S = A·B` (degree ≤ 2k−2);
/// 3. the overflow coefficients `s_k … s_{2k-2}` fold back through the
///    reduction matrix `x^n mod P`, one XOR tree per output bit.
///
/// The result has `k²` AND gates and `O(k²)` XOR gates and is returned
/// validated.
pub fn mastrovito_multiplier(ctx: &GfContext) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("mastrovito_{k}"));
    let a = nl.add_input_word("A", k);
    let b = nl.add_input_word("B", k);

    // Partial product columns: column n collects a_i & b_j with i + j = n.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * k - 1];
    for i in 0..k {
        for j in 0..k {
            let pp = nl.and(a[i], b[j]);
            columns[i + j].push(pp);
        }
    }
    let s: Vec<NetId> = columns.into_iter().map(|col| nl.xor_tree(&col)).collect();

    // Reduction network: z_j = s_j XOR (XOR of s_n for n >= k with
    // row n bit j set).
    let rows = reduction_matrix(ctx, 2 * k - 2);
    let zbits: Vec<NetId> = (0..k)
        .map(|j| {
            let mut terms = vec![s[j]];
            for (n, s_n) in s.iter().enumerate().skip(k) {
                if rows[n][j] {
                    terms.push(*s_n);
                }
            }
            nl.xor_tree(&terms)
        })
        .collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::Rng;
    use gfab_field::{Gf2Poly, GfContext};
    use gfab_netlist::sim::{exhaustive_check, simulate_word};

    #[test]
    fn two_bit_multiplier_matches_fig2_size() {
        let ctx = GfContext::new(Gf2Poly::from_exponents(&[2, 1, 0])).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        nl.validate().unwrap();
        // Fig. 2: 4 ANDs + 3 XORs.
        assert_eq!(nl.num_gates(), 7);
        exhaustive_check(&nl, &ctx, |w| ctx.mul(&w[0], &w[1])).unwrap();
    }

    #[test]
    fn exhaustive_up_to_k5() {
        for k in 2..=5 {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = mastrovito_multiplier(&ctx);
            nl.validate().unwrap();
            exhaustive_check(&nl, &ctx, |w| ctx.mul(&w[0], &w[1]))
                .unwrap_or_else(|w| panic!("k={k} mismatch at {w:?}"));
        }
    }

    #[test]
    fn random_check_k32_and_k64() {
        let mut rng = Rng::seed_from_u64(42);
        for k in [32usize, 64] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = mastrovito_multiplier(&ctx);
            for _ in 0..20 {
                let a = ctx.random(&mut rng);
                let b = ctx.random(&mut rng);
                assert_eq!(
                    simulate_word(&nl, &ctx, &[a.clone(), b.clone()]),
                    ctx.mul(&a, &b),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn nist163_random_check() {
        let ctx = GfContext::new(gfab_field::nist::nist_polynomial(163).unwrap()).unwrap();
        let nl = mastrovito_multiplier(&ctx);
        assert!(nl.num_gates() > 163 * 163); // k² ANDs plus XOR network
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..3 {
            let a = ctx.random(&mut rng);
            let b = ctx.random(&mut rng);
            assert_eq!(
                simulate_word(&nl, &ctx, &[a.clone(), b.clone()]),
                ctx.mul(&a, &b)
            );
        }
    }
}
