//! The Galois field squarer: `Z = A² (mod P)`.
//!
//! Squaring is `F_2`-linear (`(Σ a_i x^i)² = Σ a_i x^{2i}`), so the whole
//! circuit is an XOR network derived from the reduction matrix — the
//! structure behind the Montgomery squarers of [Wu, 2002] that the paper
//! cites as reference [2].

use crate::reduction::reduction_matrix;
use gfab_field::GfContext;
use gfab_netlist::{NetId, Netlist};

/// Generates the squarer netlist. Gate count is `O(k·w)` XORs where `w` is
/// the modulus weight — much smaller than a general multiplier.
pub fn squarer(ctx: &GfContext) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(format!("squarer_{k}"));
    let a = nl.add_input_word("A", k);
    let rows = reduction_matrix(ctx, 2 * k - 2);
    let zbits: Vec<NetId> = (0..k)
        .map(|j| {
            // z_j = XOR of a_i where (x^{2i} mod P) has bit j set.
            let terms: Vec<NetId> = (0..k).filter(|&i| rows[2 * i][j]).map(|i| a[i]).collect();
            nl.xor_tree(&terms)
        })
        .collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::GfContext;
    use gfab_field::Rng;
    use gfab_netlist::sim::{exhaustive_check, simulate_word};

    #[test]
    fn squares_exhaustively_small_fields() {
        for k in 2..=8 {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let nl = squarer(&ctx);
            nl.validate().unwrap();
            exhaustive_check(&nl, &ctx, |w| ctx.square(&w[0]))
                .unwrap_or_else(|w| panic!("k={k} mismatch at {w:?}"));
        }
    }

    #[test]
    fn squares_randomly_k163() {
        let ctx = GfContext::new(gfab_field::nist::nist_polynomial(163).unwrap()).unwrap();
        let nl = squarer(&ctx);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10 {
            let a = ctx.random(&mut rng);
            assert_eq!(
                simulate_word(&nl, &ctx, std::slice::from_ref(&a)),
                ctx.square(&a)
            );
        }
    }

    #[test]
    fn squarer_is_much_smaller_than_multiplier() {
        let ctx = GfContext::new(irreducible_polynomial(16).unwrap()).unwrap();
        let sq = squarer(&ctx);
        let mul = crate::mastrovito_multiplier(&ctx);
        assert!(sq.num_gates() * 4 < mul.num_gates());
    }
}
