//! A registry of circuit architectures for adversarial workload
//! generation.
//!
//! Each [`Arch`] names one way to build a *(spec, impl)* pair over a
//! field context: the spec is a reference circuit, the impl is an
//! independently constructed (or cloned) circuit with the same input
//! signature that must compute the same word function. Fuzzing draws
//! architectures from this pool by weight, builds the pair, and injects
//! faults into the impl side.
//!
//! The pool mixes the paper's benchmark architectures (Mastrovito,
//! flattened Montgomery) with the smaller arithmetic generators and
//! structurally random netlists, so the differential oracle exercises
//! both the polynomial-structured circuits the abstraction is designed
//! for and arbitrary combinational logic.

use crate::{
    constant_multiplier, gf_adder, mastrovito_multiplier, montgomery_multiplier_hier, squarer,
};
use gfab_field::{GfContext, Rng};
use gfab_netlist::random::{random_circuit, RandomCircuitSpec};
use gfab_netlist::Netlist;

/// One architecture in the generator pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Arch {
    /// Mastrovito multiplier vs. a structural clone of itself.
    Mastrovito,
    /// Mastrovito multiplier (spec) vs. flattened Montgomery multiplier
    /// (impl) — the paper's headline cross-architecture pair.
    Montgomery,
    /// Squarer vs. a clone.
    Squarer,
    /// GF adder (bitwise XOR) vs. a clone.
    Adder,
    /// Constant multiplier by a seed-chosen non-zero element, vs. a clone.
    ConstantMult,
    /// Seeded random combinational DAG vs. a clone. Only offered at small
    /// `k` (see [`Arch::supports_k`]): random logic is rarely a polynomial
    /// word function, so deciding it at larger `k` needs the Case-2
    /// completion, which is only routinely affordable on small fields.
    Random,
}

/// Every architecture, in registry order.
pub const ALL_ARCHES: [Arch; 6] = [
    Arch::Mastrovito,
    Arch::Montgomery,
    Arch::Squarer,
    Arch::Adder,
    Arch::ConstantMult,
    Arch::Random,
];

impl Arch {
    /// Stable kebab-case name (corpus files, coverage tables, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Arch::Mastrovito => "mastrovito",
            Arch::Montgomery => "montgomery",
            Arch::Squarer => "squarer",
            Arch::Adder => "adder",
            Arch::ConstantMult => "constant-mult",
            Arch::Random => "random",
        }
    }

    /// Inverse of [`Arch::name`]; `None` for unknown names.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Arch> {
        ALL_ARCHES.into_iter().find(|a| a.name() == s)
    }

    /// Relative selection weight in the fuzz pool. Multipliers dominate
    /// (they are what the paper verifies, and they have the richest
    /// reduction structure to break); the linear circuits and random DAGs
    /// keep breadth.
    #[must_use]
    pub fn weight(self) -> u32 {
        match self {
            Arch::Mastrovito => 4,
            Arch::Montgomery => 3,
            Arch::Squarer => 2,
            Arch::Adder => 1,
            Arch::ConstantMult => 2,
            Arch::Random => 2,
        }
    }

    /// Whether this architecture is generated at field degree `k`.
    #[must_use]
    pub fn supports_k(self, k: usize) -> bool {
        match self {
            Arch::Random => (2..=5).contains(&k),
            _ => k >= 2,
        }
    }

    /// Whether the circuit's function depends on the irreducible modulus
    /// (and a wrong-modulus fault is therefore meaningful).
    #[must_use]
    pub fn modulus_sensitive(self) -> bool {
        !matches!(self, Arch::Adder | Arch::Random)
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Draws an architecture from the weighted pool, restricted to those
/// supported at degree `k`. Deterministic in the RNG state.
///
/// # Panics
///
/// Panics if no architecture supports `k` (never happens for `k >= 2`).
pub fn choose_arch(rng: &mut Rng, k: usize) -> Arch {
    let pool: Vec<Arch> = ALL_ARCHES.into_iter().filter(|a| a.supports_k(k)).collect();
    let total: u32 = pool.iter().map(|a| a.weight()).sum();
    assert!(total > 0, "no architecture supports k={k}");
    let mut pick = rng.random_range(0..total as usize) as u32;
    for a in &pool {
        if pick < a.weight() {
            return *a;
        }
        pick -= a.weight();
    }
    unreachable!("weighted choice within total")
}

/// Builds the *(spec, impl)* pair of `arch` over `ctx`. Both sides share
/// one input signature; the impl must compute the same word function as
/// the spec. `seed` only matters for seed-parameterised architectures
/// (constant choice, random DAG shape) — structured generators are
/// deterministic in `ctx` alone.
pub fn build_pair(arch: Arch, ctx: &GfContext, seed: u64) -> (Netlist, Netlist) {
    match arch {
        Arch::Mastrovito => {
            let nl = mastrovito_multiplier(ctx);
            (nl.clone(), nl)
        }
        Arch::Montgomery => (
            mastrovito_multiplier(ctx),
            montgomery_multiplier_hier(ctx).flatten(),
        ),
        Arch::Squarer => {
            let nl = squarer(ctx);
            (nl.clone(), nl)
        }
        Arch::Adder => {
            let nl = gf_adder(ctx);
            (nl.clone(), nl)
        }
        Arch::ConstantMult => {
            let mut rng = Rng::seed_from_u64(seed);
            // A non-zero constant: 1..2^k (bounded draw keeps this exact
            // for any k up to the word size).
            let max = 1u64 << ctx.k().min(63);
            let c = ctx.from_u64(rng.random_range(1..max as usize) as u64);
            let nl = constant_multiplier(ctx, &c);
            (nl.clone(), nl)
        }
        Arch::Random => {
            let nl = random_circuit(&RandomCircuitSpec {
                num_input_words: 2,
                width: ctx.k(),
                num_gates: 8 * ctx.k(),
                seed,
            });
            (nl.clone(), nl)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_netlist::format::emit;
    use gfab_netlist::sim::{exhaustive_check, simulate_word};

    fn field(k: usize) -> std::sync::Arc<GfContext> {
        GfContext::shared(irreducible_polynomial(k).unwrap()).unwrap()
    }

    #[test]
    fn names_round_trip() {
        for a in ALL_ARCHES {
            assert_eq!(Arch::from_name(a.name()), Some(a));
        }
        assert_eq!(Arch::from_name("quantum"), None);
    }

    #[test]
    fn pairs_validate_and_match_signatures() {
        let ctx = field(4);
        for arch in ALL_ARCHES {
            for seed in [0u64, 7] {
                let (spec, impl_) = build_pair(arch, &ctx, seed);
                spec.validate()
                    .unwrap_or_else(|e| panic!("{arch} spec: {e}"));
                impl_
                    .validate()
                    .unwrap_or_else(|e| panic!("{arch} impl: {e}"));
                let spec_sig: Vec<usize> = spec.input_words().iter().map(|w| w.width()).collect();
                let impl_sig: Vec<usize> = impl_.input_words().iter().map(|w| w.width()).collect();
                assert_eq!(spec_sig, impl_sig, "{arch}: signature mismatch");
            }
        }
    }

    #[test]
    fn unfaulted_pairs_are_equivalent() {
        let ctx = field(4);
        for arch in ALL_ARCHES {
            let (spec, impl_) = build_pair(arch, &ctx, 3);
            exhaustive_check(&impl_, &ctx, |w| simulate_word(&spec, &ctx, w))
                .unwrap_or_else(|cex| panic!("{arch}: pair differs at {cex:?}"));
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let ctx = field(5);
        for arch in ALL_ARCHES {
            let (s1, i1) = build_pair(arch, &ctx, 42);
            let (s2, i2) = build_pair(arch, &ctx, 42);
            assert_eq!(emit(&s1), emit(&s2), "{arch}");
            assert_eq!(emit(&i1), emit(&i2), "{arch}");
        }
    }

    #[test]
    fn weighted_choice_covers_the_pool() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            seen.insert(choose_arch(&mut rng, 4));
        }
        assert!(seen.len() >= 5, "only drew {seen:?}");
        // Random DAGs are withheld at larger k.
        for _ in 0..64 {
            assert_ne!(choose_arch(&mut rng, 8), Arch::Random);
        }
    }
}
