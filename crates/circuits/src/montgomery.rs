//! Montgomery multiplication over `F_{2^k}`: the paper's custom
//! implementation (Impl) architecture.

use gfab_field::{Gf, GfContext};
use gfab_netlist::hierarchy::{BlockInst, HierDesign, Signal};
use gfab_netlist::{NetId, Netlist};

/// The second operand of a [`monpro`] block: a circuit word or a constant
/// field element (constants produce the "simplified by
/// constant-propagation" blocks of Table 2 of the paper).
#[derive(Clone, Debug)]
pub enum MonproOperand {
    /// A full `k`-bit input word named `B`.
    Word,
    /// A fixed field element folded into the gate structure.
    Const(Gf),
}

/// Generates the bit-serial Montgomery product block
/// `Z = MonPro(A, B) = A·B·R⁻¹ (mod P(x))` with `R = x^k`
/// (Koç & Acar, *Montgomery Multiplication in GF(2^k)*).
///
/// The classic k-step recurrence, one step per bit of `A`:
///
/// ```text
/// C := 0
/// for i in 0 .. k:
///     C := C + a_i · B          // partial product row
///     C := C + C[0] · P(x)      // make C divisible by x
///     C := C / x                // exact shift
/// ```
///
/// With a [`MonproOperand::Const`] second operand the AND row disappears
/// (each `a_i·b_j` is `a_i` or 0) and the adder row only touches the set
/// bits of the constant — the same effect as running full constant
/// propagation on a two-operand block.
pub fn monpro(ctx: &GfContext, name: &str, operand: MonproOperand) -> Netlist {
    let k = ctx.k();
    let mut nl = Netlist::new(name.to_string());
    let a = nl.add_input_word("A", k);

    // The B row: nets for a word operand, bit constants for a constant.
    let b_word: Option<Vec<NetId>> = match &operand {
        MonproOperand::Word => Some(nl.add_input_word("B", k)),
        MonproOperand::Const(_) => None,
    };
    let b_const: Option<Vec<bool>> = match &operand {
        MonproOperand::Word => None,
        MonproOperand::Const(c) => Some(ctx.to_bits(c)),
    };

    // Reduction pattern: bit e of P for 1 <= e <= k (bit 0 of C cancels
    // itself; bit k of P contributes the new top bit).
    let p_bit: Vec<bool> = (0..=k).map(|e| ctx.modulus().coeff(e)).collect();

    // C is represented as k optional nets; None = constant 0.
    let mut c: Vec<Option<NetId>> = vec![None; k];
    for &a_i in a.iter().take(k) {
        // C := C + a_i * B.
        for j in 0..k {
            let pp: Option<NetId> = match (&b_word, &b_const) {
                (Some(bw), _) => Some(nl.and(a_i, bw[j])),
                (None, Some(bc)) => bc[j].then_some(a_i),
                (None, None) => unreachable!("operand is word or const"),
            };
            if let Some(pp) = pp {
                c[j] = Some(match c[j] {
                    Some(prev) => nl.xor(prev, pp),
                    None => pp,
                });
            }
        }
        // c0 := C[0]; C := C + c0 * P. P's bit 0 is always set, so C[0]
        // cancels to 0 (dropped by the shift); bits 1..k get c0 XORed in
        // where P has a set bit; bit k is c0 itself.
        let c0 = c[0];
        let mut next: Vec<Option<NetId>> = vec![None; k];
        // Shifted-down bits: next[j] = C[j+1] (+ c0 if P bit j+1 set).
        for j in 0..k - 1 {
            let mut bit = c[j + 1];
            if let Some(c0) = c0 {
                if p_bit[j + 1] {
                    bit = Some(match bit {
                        Some(prev) => nl.xor(prev, c0),
                        None => c0,
                    });
                }
            }
            next[j] = bit;
        }
        // Top bit after shift comes from P's leading term: C[k] = c0.
        next[k - 1] = c0;
        c = next;
    }

    let zero = if c.iter().any(Option::is_none) {
        Some(nl.constant(false))
    } else {
        None
    };
    let zbits: Vec<NetId> = c
        .into_iter()
        .map(|bit| bit.unwrap_or_else(|| zero.expect("constant materialized")))
        .collect();
    nl.set_output_word("Z", zbits);
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Builds the hierarchical Montgomery multiplier of Fig. 1 of the paper:
/// four [`monpro`] blocks computing `G = A·B (mod P)`:
///
/// ```text
/// AR  = MonPro(A,  R²)   // block A   (constant operand R²)
/// BR  = MonPro(B,  R²)   // block B   (constant operand R²)
/// ABR = MonPro(AR, BR)   // block Mid (two word operands)
/// G   = MonPro(ABR, 1)   // block Out (constant operand 1)
/// ```
pub fn montgomery_multiplier_hier(ctx: &GfContext) -> HierDesign {
    let k = ctx.k();
    let r2 = ctx.montgomery_r2();
    let one = ctx.one();
    HierDesign {
        name: format!("montgomery_{k}"),
        inputs: vec![("A".into(), k), ("B".into(), k)],
        blocks: vec![
            BlockInst {
                name: "blk_a".into(),
                netlist: monpro(ctx, "monpro_a_r2", MonproOperand::Const(r2.clone())),
                connections: vec![Signal::PrimaryInput(0)],
            },
            BlockInst {
                name: "blk_b".into(),
                netlist: monpro(ctx, "monpro_b_r2", MonproOperand::Const(r2)),
                connections: vec![Signal::PrimaryInput(1)],
            },
            BlockInst {
                name: "blk_mid".into(),
                netlist: monpro(ctx, "monpro_mid", MonproOperand::Word),
                connections: vec![Signal::BlockOutput(0), Signal::BlockOutput(1)],
            },
            BlockInst {
                name: "blk_out".into(),
                netlist: monpro(ctx, "monpro_out", MonproOperand::Const(one)),
                connections: vec![Signal::BlockOutput(2)],
            },
        ],
        output: Signal::BlockOutput(3),
        output_name: "G".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfab_field::nist::irreducible_polynomial;
    use gfab_field::Rng;
    use gfab_field::{Gf2Poly, GfContext};
    use gfab_netlist::sim::{exhaustive_check, simulate_word};

    fn f16() -> GfContext {
        GfContext::new(Gf2Poly::from_exponents(&[4, 1, 0])).unwrap()
    }

    #[test]
    fn monpro_word_computes_abr_inverse() {
        let ctx = f16();
        let nl = monpro(&ctx, "mm", MonproOperand::Word);
        nl.validate().unwrap();
        let rinv = ctx.montgomery_r_inv();
        exhaustive_check(&nl, &ctx, |w| ctx.mul(&ctx.mul(&w[0], &w[1]), &rinv))
            .unwrap_or_else(|w| panic!("mismatch at {w:?}"));
    }

    #[test]
    fn monpro_const_matches_word_version() {
        let ctx = f16();
        let rinv = ctx.montgomery_r_inv();
        let c = ctx.from_u64(0b1011);
        let nl = monpro(&ctx, "mmc", MonproOperand::Const(c.clone()));
        nl.validate().unwrap();
        exhaustive_check(&nl, &ctx, |w| ctx.mul(&ctx.mul(&w[0], &c), &rinv))
            .unwrap_or_else(|w| panic!("mismatch at {w:?}"));
    }

    #[test]
    fn const_blocks_are_smaller() {
        let ctx = f16();
        let full = monpro(&ctx, "mm", MonproOperand::Word);
        let constant = monpro(&ctx, "mmc", MonproOperand::Const(ctx.montgomery_r2()));
        assert!(
            constant.num_gates() < full.num_gates(),
            "{} !< {}",
            constant.num_gates(),
            full.num_gates()
        );
    }

    #[test]
    fn hierarchical_montgomery_multiplies_f16() {
        let ctx = f16();
        let design = montgomery_multiplier_hier(&ctx);
        design.validate().unwrap();
        let flat = design.flatten();
        flat.validate().unwrap();
        exhaustive_check(&flat, &ctx, |w| ctx.mul(&w[0], &w[1]))
            .unwrap_or_else(|w| panic!("mismatch at {w:?}"));
    }

    #[test]
    fn hierarchical_montgomery_random_k16_k32() {
        let mut rng = Rng::seed_from_u64(11);
        for k in [16usize, 32] {
            let ctx = GfContext::new(irreducible_polynomial(k).unwrap()).unwrap();
            let flat = montgomery_multiplier_hier(&ctx).flatten();
            for _ in 0..10 {
                let a = ctx.random(&mut rng);
                let b = ctx.random(&mut rng);
                assert_eq!(
                    simulate_word(&flat, &ctx, &[a.clone(), b.clone()]),
                    ctx.mul(&a, &b),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn block_structure_matches_fig1() {
        let ctx = f16();
        let d = montgomery_multiplier_hier(&ctx);
        assert_eq!(d.blocks.len(), 4);
        assert_eq!(d.blocks[2].netlist.input_words().len(), 2);
        assert_eq!(d.blocks[0].netlist.input_words().len(), 1);
        // Mid block (two word operands) is the largest, as in Table 2.
        let sizes: Vec<usize> = d.blocks.iter().map(|b| b.netlist.num_gates()).collect();
        assert!(sizes[2] > sizes[0] && sizes[2] > sizes[1] && sizes[2] > sizes[3]);
    }
}
