//! The metrics vocabulary beyond plain counters: [`Gauge`] values and
//! fixed-bucket [`Hist`] histograms ([`HistData`]).
//!
//! Counters ([`crate::Counter`]) are monotonic work tallies; gauges are
//! sampled values with an explicit per-kind combine rule (peak memory is
//! a maximum, total allocations are a sum); histograms record the
//! *distribution* of a quantity — division-chain lengths, live polynomial
//! sizes, S-polynomial sizes, CNF clause lengths, simulation batch times
//! — in a fixed power-of-two bucket layout so two traces can be compared
//! bucket by bucket without any binning negotiation.

/// Number of buckets in every [`HistData`]. Bucket `i` covers values in
/// `[2^i, 2^(i+1))`, except bucket 0 which also holds 0 and the last
/// bucket which is open-ended.
pub const HIST_BUCKETS: usize = 16;

/// A sampled (non-monotonic) per-span value.
///
/// Unlike counters, gauges carry an explicit aggregation rule: when two
/// spans of the same phase are merged (trace-diff aggregation, nested
/// span roll-ups) the combined value is [`Gauge::combine`] of the parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Gauge {
    /// Peak live heap bytes observed on the span's thread while the span
    /// was open (memory accounting must be enabled). Combines by `max`.
    MemPeakBytes,
    /// Total bytes allocated on the span's thread while the span was
    /// open. Combines by `+`.
    MemAllocBytes,
    /// Number of heap allocations on the span's thread while the span
    /// was open. Combines by `+`.
    MemAllocs,
}

impl Gauge {
    /// Stable kebab-case key used in the JSONL schema (v2).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Gauge::MemPeakBytes => "mem-peak-bytes",
            Gauge::MemAllocBytes => "mem-alloc-bytes",
            Gauge::MemAllocs => "mem-allocs",
        }
    }

    /// Inverse of [`Gauge::slug`]; `None` for unknown keys.
    #[must_use]
    pub fn from_slug(s: &str) -> Option<Gauge> {
        Some(match s {
            "mem-peak-bytes" => Gauge::MemPeakBytes,
            "mem-alloc-bytes" => Gauge::MemAllocBytes,
            "mem-allocs" => Gauge::MemAllocs,
            _ => return None,
        })
    }

    /// Combines two observations of this gauge (see variant docs).
    #[must_use]
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            Gauge::MemPeakBytes => a.max(b),
            Gauge::MemAllocBytes | Gauge::MemAllocs => a.saturating_add(b),
        }
    }
}

impl std::fmt::Display for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// A histogram kind: which quantity a [`HistData`] is a distribution of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Hist {
    /// Division steps per reduction chain (one sample per normal form).
    DivisionChainLen,
    /// Live working-polynomial terms, sampled every budget stride during
    /// a guided reduction.
    ReductionPolySize,
    /// Terms per S-polynomial reduced by Buchberger.
    SPolyTerms,
    /// Literals per CNF clause emitted by the Tseitin encoding.
    CnfClauseLen,
    /// Microseconds per simulation sweep batch (wall time — excluded
    /// from deterministic comparisons, informational in diffs).
    SimBatchUs,
    /// Microseconds a batch-engine query spent queued before a worker
    /// dequeued it (wall time — excluded from deterministic
    /// comparisons, informational in diffs).
    QueueLatencyUs,
}

impl Hist {
    /// Stable kebab-case key used in the JSONL schema (v2).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Hist::DivisionChainLen => "division-chain-len",
            Hist::ReductionPolySize => "reduction-poly-size",
            Hist::SPolyTerms => "s-poly-terms",
            Hist::CnfClauseLen => "cnf-clause-len",
            Hist::SimBatchUs => "sim-batch-us",
            Hist::QueueLatencyUs => "queue-latency-us",
        }
    }

    /// Inverse of [`Hist::slug`]; `None` for unknown keys.
    #[must_use]
    pub fn from_slug(s: &str) -> Option<Hist> {
        Some(match s {
            "division-chain-len" => Hist::DivisionChainLen,
            "reduction-poly-size" => Hist::ReductionPolySize,
            "s-poly-terms" => Hist::SPolyTerms,
            "cnf-clause-len" => Hist::CnfClauseLen,
            "sim-batch-us" => Hist::SimBatchUs,
            "queue-latency-us" => Hist::QueueLatencyUs,
            _ => return None,
        })
    }

    /// Whether samples of this histogram are deterministic across thread
    /// counts and machines (everything except wall-time histograms).
    #[must_use]
    pub fn is_deterministic(self) -> bool {
        !matches!(self, Hist::SimBatchUs | Hist::QueueLatencyUs)
    }
}

impl std::fmt::Display for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// A fixed-layout histogram: power-of-two buckets plus count/sum/min/max.
///
/// The layout is identical for every [`Hist`] kind, so histograms from
/// different traces merge and diff without binning negotiation, and the
/// struct is `Copy`-sized (no heap allocation on the recording path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistData {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds 0, the last bucket is open-ended.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistData {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> HistData {
        HistData::default()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Inclusive upper bound of bucket `i` (the last bucket is
    /// open-ended, so its bound is `u64::MAX`).
    #[must_use]
    pub fn bucket_hi(i: usize) -> u64 {
        if i + 1 < HIST_BUCKETS {
            (1u64 << (i + 1)) - 1
        } else {
            u64::MAX
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistData) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`), estimated from the bucket
    /// layout by deterministic integer interpolation; 0 when empty.
    ///
    /// The estimate depends only on `count`, `min`, `max` and the bucket
    /// array — all of which [`HistData::merge`] combines exactly — so
    /// percentiles computed from merged shards equal percentiles of the
    /// concatenated sample stream's histogram. That is the exact-merge
    /// property `gfab trace-agg` is built on.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // 1-based rank of the sample the percentile falls on
        // (nearest-rank definition, so p=100 is always `max`).
        let rank = (((self.count as f64) * p / 100.0).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 && cum + b >= rank {
                let lo = Self::bucket_lo(i).max(self.min);
                let hi = Self::bucket_hi(i).min(self.max).max(lo);
                // Interpolate at integer resolution within the bucket:
                // position `pos` of `b` samples maps linearly onto
                // [lo, hi]. u128 keeps (hi-lo)*pos from overflowing.
                let pos = rank - cum; // 1..=b
                let est = lo + ((hi - lo) as u128 * pos as u128 / b as u128) as u64;
                return est.clamp(self.min, self.max);
            }
            cum += b;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_slugs_round_trip_and_combine() {
        for g in [Gauge::MemPeakBytes, Gauge::MemAllocBytes, Gauge::MemAllocs] {
            assert_eq!(Gauge::from_slug(g.slug()), Some(g));
        }
        assert_eq!(Gauge::from_slug("no-such-gauge"), None);
        assert_eq!(Gauge::MemPeakBytes.combine(10, 7), 10);
        assert_eq!(Gauge::MemAllocBytes.combine(10, 7), 17);
    }

    #[test]
    fn hist_slugs_round_trip() {
        for h in [
            Hist::DivisionChainLen,
            Hist::ReductionPolySize,
            Hist::SPolyTerms,
            Hist::CnfClauseLen,
            Hist::SimBatchUs,
            Hist::QueueLatencyUs,
        ] {
            assert_eq!(Hist::from_slug(h.slug()), Some(h));
        }
        assert_eq!(Hist::from_slug("no-such-hist"), None);
        assert!(Hist::DivisionChainLen.is_deterministic());
        assert!(!Hist::SimBatchUs.is_deterministic());
        assert!(!Hist::QueueLatencyUs.is_deterministic());
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(HistData::bucket_of(0), 0);
        assert_eq!(HistData::bucket_of(1), 0);
        assert_eq!(HistData::bucket_of(2), 1);
        assert_eq!(HistData::bucket_of(3), 1);
        assert_eq!(HistData::bucket_of(4), 2);
        assert_eq!(HistData::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(HistData::bucket_lo(0), 0);
        assert_eq!(HistData::bucket_lo(3), 8);
    }

    #[test]
    fn record_and_merge_agree() {
        let mut a = HistData::new();
        let mut b = HistData::new();
        let mut all = HistData::new();
        for v in [0, 1, 5, 9, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3, 70_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(all.count, 7);
        assert_eq!(all.min, 0);
        assert_eq!(all.max, 70_000);
        assert!((all.mean() - (115 + 70_003) as f64 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_ordered_bounded_and_merge_exact() {
        let mut h = HistData::new();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((h.min..=h.max).contains(&p50));
        assert_eq!(h.percentile(0.0), h.min);
        assert_eq!(h.percentile(100.0), h.max);
        // Bucketed estimate of the true median (500) stays in the
        // median's bucket [512, 1023] ∩ samples or the one below.
        assert!((256..=1023).contains(&p50), "{p50}");

        // Percentiles of merged shards == percentiles of the whole.
        let mut a = HistData::new();
        let mut b = HistData::new();
        let mut whole = HistData::new();
        for v in [3, 9, 9, 40, 1000, 0, 7] {
            a.record(v);
            whole.record(v);
        }
        for v in [5, 80, 80, 81, 2] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn single_sample_percentiles_are_that_sample() {
        let mut h = HistData::new();
        h.record(37);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 37);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(HistData::bucket_hi(i) + 1, HistData::bucket_lo(i + 1));
        }
        assert_eq!(HistData::bucket_hi(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = HistData::new();
        a.record(4);
        let before = a;
        a.merge(&HistData::new());
        assert_eq!(a, before);
        let mut e = HistData::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
