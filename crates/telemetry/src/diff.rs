//! Trace comparison: align two span trees by phase path and report
//! per-phase deltas (`gfab trace-diff`).
//!
//! # Alignment
//!
//! Spans are aggregated by their *phase path* — the chain of [`Phase`]
//! slugs from the root down, e.g. `check/extract/guided-reduction`.
//! Labels (block instance names, "spec"/"impl") are deliberately **not**
//! part of the key: renaming a hierarchical block must not break the
//! alignment, and the per-phase totals are what regression gating needs.
//! All spans sharing a path merge into one [`PhaseAgg`]: counters and
//! durations sum, gauges combine per [`Gauge::combine`], histograms
//! merge bucket-wise.
//!
//! # Determinism
//!
//! Regression gating uses *work units* only — the counters for which
//! [`Counter::is_work`] holds (division steps, Gröbner pairs, gates,
//! simulation vectors, CDCL conflicts). These are bit-identical across
//! thread counts and machines (PR 2's budget determinism), so a CI gate
//! built on them is stable; wall time and memory are reported as
//! informational context, never gated.

use crate::{Counter, Gauge, Hist, HistData, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Everything aggregated under one phase path on one side of a diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Number of spans merged into this aggregate.
    pub spans: usize,
    /// Sum of span durations (cumulative, not self time).
    pub wall: Duration,
    /// Summed counters.
    pub counters: Vec<(Counter, u64)>,
    /// Combined gauges (per [`Gauge::combine`]).
    pub gauges: Vec<(Gauge, u64)>,
    /// Bucket-wise merged histograms.
    pub hists: Vec<(Hist, HistData)>,
}

impl PhaseAgg {
    /// Value of one counter (0 when absent).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of the deterministic work-unit counters
    /// (see [`Counter::is_work`]).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(c, _)| c.is_work())
            .map(|(_, v)| *v)
            .sum()
    }

    fn add_counter(&mut self, counter: Counter, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(c, _)| *c == counter) {
            slot.1 += value;
        } else {
            self.counters.push((counter, value));
        }
    }

    fn add_gauge(&mut self, gauge: Gauge, value: u64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(g, _)| *g == gauge) {
            slot.1 = gauge.combine(slot.1, value);
        } else {
            self.gauges.push((gauge, value));
        }
    }

    fn add_hist(&mut self, hist: Hist, data: &HistData) {
        if let Some(slot) = self.hists.iter_mut().find(|(h, _)| *h == hist) {
            slot.1.merge(data);
        } else {
            self.hists.push((hist, *data));
        }
    }
}

/// One aligned phase path with its aggregate on each side (`None` when
/// the path only occurs in the other trace).
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Slash-joined phase-slug path, e.g. `check/extract/model-build`.
    pub path: String,
    /// Aggregate in the baseline trace (A).
    pub a: Option<PhaseAgg>,
    /// Aggregate in the current trace (B).
    pub b: Option<PhaseAgg>,
}

impl DiffRow {
    /// Baseline work units (0 when the phase is absent in A).
    #[must_use]
    pub fn work_a(&self) -> u64 {
        self.a.as_ref().map_or(0, PhaseAgg::work)
    }

    /// Current work units (0 when the phase is absent in B).
    #[must_use]
    pub fn work_b(&self) -> u64 {
        self.b.as_ref().map_or(0, PhaseAgg::work)
    }
}

/// A work-unit regression found by [`TraceDiff::regressions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// The offending phase path.
    pub path: String,
    /// Baseline work units.
    pub baseline: u64,
    /// Current work units (exceeds the threshold over baseline).
    pub current: u64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: work units {} -> {} (+{})",
            self.path,
            self.baseline,
            self.current,
            self.current - self.baseline
        )
    }
}

/// The result of aligning two traces (see the module docs).
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// One row per phase path occurring in either trace, sorted by path.
    pub rows: Vec<DiffRow>,
}

/// Aggregates all spans of a trace by label-free phase path.
fn aggregate(trace: &Trace) -> BTreeMap<String, PhaseAgg> {
    // Paths are built by walking parent links; spans are sorted by id and
    // parents always precede children (ids order span creation), so one
    // forward pass with an id → path memo suffices.
    let mut path_of: BTreeMap<u64, String> = BTreeMap::new();
    let mut out: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    for s in trace.spans() {
        let path = match s.parent.and_then(|p| path_of.get(&p)) {
            Some(parent_path) => format!("{parent_path}/{}", s.phase.slug()),
            None => s.phase.slug().to_string(),
        };
        path_of.insert(s.id, path.clone());
        let agg = out.entry(path).or_default();
        agg.spans += 1;
        agg.wall += s.duration;
        for (c, v) in &s.counters {
            agg.add_counter(*c, *v);
        }
        for (g, v) in &s.gauges {
            agg.add_gauge(*g, *v);
        }
        for (h, d) in &s.hists {
            agg.add_hist(*h, d);
        }
    }
    out
}

impl TraceDiff {
    /// Aligns baseline trace `a` against current trace `b`.
    #[must_use]
    pub fn compute(a: &Trace, b: &Trace) -> TraceDiff {
        let mut agg_a = aggregate(a);
        let mut agg_b = aggregate(b);
        let paths: Vec<String> = agg_a.keys().chain(agg_b.keys()).cloned().collect();
        let mut rows = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for path in paths {
            if !seen.insert(path.clone()) {
                continue;
            }
            rows.push(DiffRow {
                a: agg_a.remove(&path),
                b: agg_b.remove(&path),
                path,
            });
        }
        rows.sort_by(|x, y| x.path.cmp(&y.path));
        TraceDiff { rows }
    }

    /// Whether every phase path has identical work units on both sides —
    /// what two runs of the same workload must satisfy regardless of
    /// `--threads` (the CI self-diff smoke check).
    #[must_use]
    pub fn work_identical(&self) -> bool {
        self.rows.iter().all(|r| r.work_a() == r.work_b())
    }

    /// Phase paths whose current work units exceed baseline by more than
    /// `threshold_pct` percent (0.0 = any increase). Phases absent from
    /// the baseline regress on any nonzero work; phases absent from the
    /// current trace never regress (that is an improvement).
    #[must_use]
    pub fn regressions(&self, threshold_pct: f64) -> Vec<Regression> {
        self.rows
            .iter()
            .filter_map(|r| {
                let (base, cur) = (r.work_a(), r.work_b());
                let allowed = base as f64 * (1.0 + threshold_pct / 100.0);
                if cur > base && cur as f64 > allowed {
                    Some(Regression {
                        path: r.path.clone(),
                        baseline: base,
                        current: cur,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Renders the human-readable diff table: one line per phase path
    /// with work units, span counts and wall time on both sides, plus
    /// indented per-counter / per-histogram deltas where they differ.
    #[must_use]
    pub fn render(&self) -> String {
        self.render_opts(false)
    }

    /// [`TraceDiff::render`] with options. `wall_delta` adds a Δwall%
    /// column — **informational only** (wall time varies with machine
    /// load and thread count and never gates; see the module docs), and
    /// the column header says so.
    #[must_use]
    pub fn render_opts(&self, wall_delta: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{:<44} {:>7} {:>12} {:>12} {:>9} {:>10} {:>10}",
            "phase path", "spans", "work A", "work B", "Δwork", "wall A", "wall B"
        );
        if wall_delta {
            let _ = write!(out, " {:>12}", "Δwall%(info)");
        }
        out.push('\n');
        for r in &self.rows {
            let spans = format!(
                "{}/{}",
                r.a.as_ref().map_or(0, |a| a.spans),
                r.b.as_ref().map_or(0, |b| b.spans)
            );
            let (wa, wb) = (r.work_a(), r.work_b());
            let delta = wb as i128 - wa as i128;
            let delta_s = if delta == 0 {
                "+0".to_string()
            } else {
                format!("{delta:+}")
            };
            let _ = write!(
                out,
                "{:<44} {:>7} {:>12} {:>12} {:>9} {:>10} {:>10}",
                r.path,
                spans,
                wa,
                wb,
                delta_s,
                fmt_wall(r.a.as_ref()),
                fmt_wall(r.b.as_ref()),
            );
            if wall_delta {
                let _ = write!(out, " {:>12}", fmt_wall_delta(r));
            }
            out.push('\n');
            self.render_details(r, &mut out);
        }
        out
    }

    fn render_details(&self, r: &DiffRow, out: &mut String) {
        let empty = PhaseAgg::default();
        let a = r.a.as_ref().unwrap_or(&empty);
        let b = r.b.as_ref().unwrap_or(&empty);
        let mut counters: Vec<Counter> = Vec::new();
        for (c, _) in a.counters.iter().chain(&b.counters) {
            if !counters.contains(c) {
                counters.push(*c);
            }
        }
        for c in counters {
            let (va, vb) = (a.counter(c), b.counter(c));
            if va != vb {
                let _ = writeln!(out, "    {c}: {va} -> {vb} ({:+})", vb as i128 - va as i128);
            }
        }
        let kinds: Vec<Hist> = a.hists.iter().chain(&b.hists).map(|(h, _)| *h).collect();
        let mut seen = Vec::new();
        for h in kinds {
            if seen.contains(&h) {
                continue;
            }
            seen.push(h);
            let find = |agg: &PhaseAgg| {
                agg.hists
                    .iter()
                    .find(|(k, _)| *k == h)
                    .map_or_else(HistData::new, |(_, d)| *d)
            };
            let (da, db) = (find(a), find(b));
            if da != db {
                let _ = writeln!(
                    out,
                    "    hist {h}: n {} -> {}, mean {:.1} -> {:.1}, max {} -> {}",
                    da.count,
                    db.count,
                    da.mean(),
                    db.mean(),
                    da.max,
                    db.max
                );
            }
        }
    }
}

/// Signed percent change in wall time, B vs A; `-` when either side is
/// absent or the baseline wall is zero (no meaningful ratio).
fn fmt_wall_delta(r: &DiffRow) -> String {
    let (Some(a), Some(b)) = (r.a.as_ref(), r.b.as_ref()) else {
        return "-".to_string();
    };
    let (wa, wb) = (a.wall.as_secs_f64(), b.wall.as_secs_f64());
    if wa <= 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", 100.0 * (wb - wa) / wa)
}

fn fmt_wall(agg: Option<&PhaseAgg>) -> String {
    match agg {
        None => "-".to_string(),
        Some(a) => {
            let d = a.wall;
            if d < Duration::from_millis(1) {
                format!("{}µs", d.as_micros())
            } else if d < Duration::from_secs(1) {
                format!("{:.2}ms", d.as_secs_f64() * 1e3)
            } else {
                format!("{:.3}s", d.as_secs_f64())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, SpanRecord};

    fn span(id: u64, parent: Option<u64>, phase: Phase, label: Option<&str>) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            phase,
            label: label.map(str::to_owned),
            thread: 0,
            start: Duration::ZERO,
            duration: Duration::from_millis(10),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    fn simple(steps: u64) -> Trace {
        let root = span(1, None, Phase::Check, None);
        let ext = span(2, Some(1), Phase::Extract, Some("spec"));
        let mut red = span(3, Some(2), Phase::GuidedReduction, None);
        red.counters = vec![(Counter::ReductionSteps, steps), (Counter::BudgetPolls, 5)];
        Trace::from_spans(vec![root, ext, red])
    }

    #[test]
    fn self_diff_is_work_identical() {
        let t = simple(100);
        let d = TraceDiff::compute(&t, &t);
        assert!(d.work_identical());
        assert!(d.regressions(0.0).is_empty());
        assert_eq!(d.rows.len(), 3);
        assert!(d
            .rows
            .iter()
            .any(|r| r.path == "check/extract/guided-reduction"));
    }

    #[test]
    fn inflated_work_regresses_and_names_the_phase() {
        let d = TraceDiff::compute(&simple(100), &simple(120));
        assert!(!d.work_identical());
        // 20% over baseline: above a 5% threshold, below a 50% one.
        let regs = d.regressions(5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "check/extract/guided-reduction");
        assert_eq!(regs[0].baseline, 100);
        assert_eq!(regs[0].current, 120);
        assert!(d.regressions(50.0).is_empty());
        // Improvements never regress.
        assert!(TraceDiff::compute(&simple(120), &simple(100))
            .regressions(0.0)
            .is_empty());
    }

    #[test]
    fn labels_do_not_split_paths() {
        // Two labelled block spans aggregate under one path, so renaming
        // a block between runs cannot break the alignment.
        let mut a_spans = vec![span(1, None, Phase::Extract, None)];
        let mut blk = span(2, Some(1), Phase::Block, Some("old_name"));
        blk.counters = vec![(Counter::Gates, 50)];
        a_spans.push(blk);
        let a = Trace::from_spans(a_spans);

        let mut b_spans = vec![span(1, None, Phase::Extract, None)];
        let mut blk = span(2, Some(1), Phase::Block, Some("renamed"));
        blk.counters = vec![(Counter::Gates, 50)];
        b_spans.push(blk);
        let b = Trace::from_spans(b_spans);

        let d = TraceDiff::compute(&a, &b);
        assert!(d.work_identical());
        assert_eq!(d.rows.len(), 2);
    }

    #[test]
    fn missing_phase_sides_are_explicit() {
        let a = simple(100);
        let b = Trace::from_spans(vec![span(1, None, Phase::Check, None)]);
        let d = TraceDiff::compute(&a, &b);
        let row = d
            .rows
            .iter()
            .find(|r| r.path == "check/extract/guided-reduction")
            .unwrap();
        assert!(row.a.is_some() && row.b.is_none());
        // Work disappeared: an improvement, not a regression.
        assert!(d.regressions(0.0).is_empty());
        // The reverse direction (new work from nothing) does regress.
        let d = TraceDiff::compute(&b, &a);
        let regs = d.regressions(0.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 0);
    }

    #[test]
    fn zero_work_spans_diff_cleanly() {
        let mk = || {
            let mut s = span(1, None, Phase::Compose, None);
            s.counters = vec![(Counter::BudgetPolls, 3)]; // not a work counter
            Trace::from_spans(vec![s])
        };
        let d = TraceDiff::compute(&mk(), &mk());
        assert!(d.work_identical());
        assert_eq!(d.rows[0].work_a(), 0);
        assert!(d.regressions(0.0).is_empty());
    }

    #[test]
    fn wall_delta_column_is_opt_in_and_labeled_informational() {
        let d = TraceDiff::compute(&simple(100), &simple(100));
        assert!(!d.render().contains("Δwall%"));
        let out = d.render_opts(true);
        assert!(out.contains("Δwall%(info)"), "{out}");
        // Identical 10ms spans: +0.0% on every aligned row.
        assert!(out.contains("+0.0%"), "{out}");
        // The column never feeds gating: regressions only see work.
        assert!(d.regressions(0.0).is_empty());
        // One-sided rows render "-" rather than a bogus ratio.
        let b = Trace::from_spans(vec![span(1, None, Phase::Check, None)]);
        let out = TraceDiff::compute(&simple(100), &b).render_opts(true);
        let row = out
            .lines()
            .find(|l| l.starts_with("check/extract "))
            .unwrap();
        assert!(row.trim_end().ends_with('-'), "{row:?}");
    }

    #[test]
    fn render_lists_counter_and_hist_deltas() {
        let mut b = simple(120);
        let mut spans = b.spans().to_vec();
        let mut h = HistData::new();
        h.record(12);
        spans[2].hists = vec![(Hist::DivisionChainLen, h)];
        b = Trace::from_spans(spans);
        let out = TraceDiff::compute(&simple(100), &b).render();
        assert!(out.contains("check/extract/guided-reduction"));
        assert!(out.contains("reduction-steps: 100 -> 120 (+20)"));
        assert!(out.contains("hist division-chain-len"));
        assert!(out.contains("+20"));
    }
}
