//! Persistent run ledger (`--ledger PATH`, `gfab report`).
//!
//! A ledger is an append-only JSONL file that accumulates one row per
//! verification query across *runs* of the tool — the durable memory
//! that individual `--trace-json` files lack. `extract`, `equiv`,
//! `batch` and `fuzz` append to it when `--ledger PATH` is given;
//! `gfab report LEDGER` renders the accumulated history as a dashboard
//! (plain text or `--md` markdown).
//!
//! # Row format
//!
//! One strict-JSON object per line:
//!
//! ```text
//! {"type":"run","version":4,"ts_ms":..,"run":"<ts_ms>-<pid>",
//!  "producer":"gfab x.y.z","cmd":"equiv","fp":"<16 hex>",
//!  "query":"<name>","k":16,"verdict":"equivalent","exit":0,
//!  "work_units":..,"wall_us":..[,"mem_peak_bytes":..]}
//! ```
//!
//! * `run` identifies one process invocation: every row a single run
//!   appends carries the same id, so multi-query `batch` runs group.
//! * `fp` is a [FNV-1a] fingerprint of the command line *excluding* the
//!   `--ledger PATH` pair, so "the same command logged to a different
//!   ledger" still fingerprints identically. `gfab report` uses it to
//!   pair up repeat runs of the same command and report work-unit
//!   drift.
//! * `k` is the field width `GF(2^k)` when the row concerns a single
//!   modulus, and `0` for mixed/aggregate rows (a fuzz campaign).
//! * `mem_peak_bytes` is present only when the run measured it
//!   (`--mem-stats`).
//!
//! [FNV-1a]: https://en.wikipedia.org/wiki/Fowler%E2%80%93Noll%E2%80%93Vo_hash_function
//!
//! # Crash safety
//!
//! Writers open the file in append mode and write each row as a single
//! `write` of one line; concurrent appenders therefore interleave at
//! line granularity on POSIX. The reader tolerates exactly one torn
//! line — an unparsable *final* line, the signature of a crash mid-
//! append — and reports it; garbage anywhere else is an error.

use crate::json::{parse_object, write_json_string, Json};
use crate::jsonl::JSONL_VERSION;
use crate::metrics::HistData;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One ledger row: the durable record of one verification query (or
/// one whole fuzz campaign) in one run. See the module docs for the
/// field semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRow {
    /// Wall-clock timestamp of the append, in milliseconds since the
    /// Unix epoch.
    pub ts_ms: u64,
    /// Run id shared by all rows of one process invocation.
    pub run: String,
    /// Producing tool and version, e.g. `gfab 0.4.0`.
    pub producer: String,
    /// Subcommand that produced the row (`extract`, `equiv`, `batch`,
    /// `fuzz`).
    pub cmd: String,
    /// Command-line fingerprint (16 lowercase hex digits); see
    /// [`fingerprint`].
    pub fp: String,
    /// Query name: a file stem, a batch query name, or a campaign tag.
    pub query: String,
    /// Field width `k` of `GF(2^k)`; `0` when mixed or unknown.
    pub k: u64,
    /// Outcome verdict (`equivalent`, `inequivalent`, `extracted`,
    /// `timeout`, `failed`, …).
    pub verdict: String,
    /// Process-level exit code the outcome maps to (0/1/2/3).
    pub exit: u64,
    /// Deterministic work units spent on the query.
    pub work_units: u64,
    /// Wall-clock time spent on the query, microseconds.
    pub wall_us: u64,
    /// Peak heap in bytes when measured (`--mem-stats`), else `None`.
    pub mem_peak_bytes: Option<u64>,
}

impl LedgerRow {
    /// Serializes the row as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"run\",\"version\":{JSONL_VERSION},\"ts_ms\":{},\"run\":",
            self.ts_ms
        );
        write_json_string(&mut out, &self.run);
        out.push_str(",\"producer\":");
        write_json_string(&mut out, &self.producer);
        out.push_str(",\"cmd\":");
        write_json_string(&mut out, &self.cmd);
        out.push_str(",\"fp\":");
        write_json_string(&mut out, &self.fp);
        out.push_str(",\"query\":");
        write_json_string(&mut out, &self.query);
        let _ = write!(out, ",\"k\":{},\"verdict\":", self.k);
        write_json_string(&mut out, &self.verdict);
        let _ = write!(
            out,
            ",\"exit\":{},\"work_units\":{},\"wall_us\":{}",
            self.exit, self.work_units, self.wall_us
        );
        if let Some(m) = self.mem_peak_bytes {
            let _ = write!(out, ",\"mem_peak_bytes\":{m}");
        }
        out.push('}');
        out
    }

    fn from_json_line(line: &str) -> Result<LedgerRow, String> {
        let obj = parse_object(line)?;
        const KEYS: [&str; 13] = [
            "type",
            "version",
            "ts_ms",
            "run",
            "producer",
            "cmd",
            "fp",
            "query",
            "k",
            "verdict",
            "exit",
            "work_units",
            "wall_us",
        ];
        for (key, _) in &obj.0 {
            if !KEYS.contains(&key.as_str()) && key != "mem_peak_bytes" {
                return Err(format!("unexpected key {key:?}"));
            }
        }
        let get_num = |key: &str| -> Result<u64, String> {
            match obj.get(key) {
                Some(Json::Num(n)) => Ok(*n),
                _ => Err(format!("missing or non-numeric {key:?}")),
            }
        };
        let get_str = |key: &str| -> Result<String, String> {
            match obj.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing or non-string {key:?}")),
            }
        };
        if get_str("type")? != "run" {
            return Err("\"type\" is not \"run\"".into());
        }
        let version = get_num("version")?;
        if !(3..=JSONL_VERSION).contains(&version) {
            return Err(format!("unsupported ledger row version {version}"));
        }
        let mem_peak_bytes = match obj.get("mem_peak_bytes") {
            None => None,
            Some(Json::Num(n)) => Some(*n),
            Some(_) => return Err("non-numeric \"mem_peak_bytes\"".into()),
        };
        Ok(LedgerRow {
            ts_ms: get_num("ts_ms")?,
            run: get_str("run")?,
            producer: get_str("producer")?,
            cmd: get_str("cmd")?,
            fp: get_str("fp")?,
            query: get_str("query")?,
            k: get_num("k")?,
            verdict: get_str("verdict")?,
            exit: get_num("exit")?,
            work_units: get_num("work_units")?,
            wall_us: get_num("wall_us")?,
            mem_peak_bytes,
        })
    }

    /// Appends the row to the ledger at `path` (created if absent) as
    /// one atomic-at-line-granularity write.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or writing the file.
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut line = self.to_json_line();
        line.push('\n');
        f.write_all(line.as_bytes())
    }
}

/// Fingerprint of a command line: FNV-1a 64-bit over the subcommand and
/// arguments with the `--ledger PATH` pair removed, rendered as 16
/// lowercase hex digits. Stable across runs and platforms.
#[must_use]
pub fn fingerprint(cmd: &str, args: &[String]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut feed = |s: &str| {
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        // Separator so ["ab","c"] and ["a","bc"] hash differently.
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    feed(cmd);
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--ledger" {
            i += 2; // skip the flag and its PATH operand
            continue;
        }
        feed(&args[i]);
        i += 1;
    }
    format!("{h:016x}")
}

/// A parsed ledger: all intact rows in file order, plus whether the
/// final line was torn (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Intact rows, oldest first.
    pub rows: Vec<LedgerRow>,
    /// Whether the final line failed to parse (crash mid-append).
    pub torn_tail: bool,
}

impl Ledger {
    /// Parses ledger text. Tolerates exactly one torn *final* line;
    /// any other unparsable line is an error naming its line number.
    ///
    /// # Errors
    ///
    /// A message naming the 1-based line for garbage anywhere but the
    /// final line.
    pub fn parse(text: &str) -> Result<Ledger, String> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut rows = Vec::new();
        let mut torn_tail = false;
        for (i, line) in lines.iter().enumerate() {
            match LedgerRow::from_json_line(line) {
                Ok(row) => rows.push(row),
                Err(e) if i + 1 == lines.len() => {
                    // A torn tail is a crash artifact only if the line
                    // is not even valid JSON; a *well-formed* line with
                    // bad fields is a real error anywhere.
                    if parse_object(line).is_ok() {
                        return Err(format!("ledger line {}: {e}", i + 1));
                    }
                    torn_tail = true;
                }
                Err(e) => return Err(format!("ledger line {}: {e}", i + 1)),
            }
        }
        Ok(Ledger { rows, torn_tail })
    }

    /// Parses ledger text that a writer may still be appending to:
    /// every unparsable line is *skipped* and counted instead of being
    /// fatal. This is what `gfab watch` (and `gfab report`) use — a
    /// follower that reads mid-append can observe a torn line anywhere,
    /// not just at the tail. A non-JSON *final* line still sets
    /// [`Ledger::torn_tail`] (it is the expected mid-append artifact and
    /// will usually heal on the next poll); every other bad line bumps
    /// the returned skip counter.
    #[must_use]
    pub fn parse_lenient(text: &str) -> (Ledger, usize) {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut rows = Vec::new();
        let mut skipped = 0usize;
        let mut torn_tail = false;
        for (i, line) in lines.iter().enumerate() {
            match LedgerRow::from_json_line(line) {
                Ok(row) => rows.push(row),
                Err(_) if i + 1 == lines.len() && parse_object(line).is_err() => torn_tail = true,
                Err(_) => skipped += 1,
            }
        }
        (Ledger { rows, torn_tail }, skipped)
    }

    /// Renders the report dashboard: verdict mix, per-`k` latency
    /// percentiles, and the work-unit delta between the two most recent
    /// runs of each repeated command fingerprint. Markdown tables when
    /// `md`, aligned plain text otherwise.
    #[must_use]
    pub fn render_report(&self, md: bool) -> String {
        let mut out = String::new();
        let runs: std::collections::BTreeSet<&str> =
            self.rows.iter().map(|r| r.run.as_str()).collect();
        let _ = writeln!(
            out,
            "{}ledger: {} row(s) across {} run(s){}",
            if md { "# Run ledger\n\n" } else { "" },
            self.rows.len(),
            runs.len(),
            if self.torn_tail {
                " (torn final line ignored)"
            } else {
                ""
            }
        );
        if self.rows.is_empty() {
            return out;
        }

        // Verdict mix.
        let mut verdicts: BTreeMap<&str, u64> = BTreeMap::new();
        for r in &self.rows {
            *verdicts.entry(r.verdict.as_str()).or_insert(0) += 1;
        }
        section(&mut out, md, "Verdicts");
        let rows: Vec<Vec<String>> = verdicts
            .iter()
            .map(|(v, n)| vec![(*v).to_string(), n.to_string()])
            .collect();
        table(&mut out, md, &["verdict", "rows"], &rows);

        // Per-k latency percentiles from mergeable histograms.
        let mut by_k: BTreeMap<u64, HistData> = BTreeMap::new();
        for r in &self.rows {
            by_k.entry(r.k).or_default().record(r.wall_us);
        }
        section(&mut out, md, "Latency by field width");
        let rows: Vec<Vec<String>> = by_k
            .iter()
            .map(|(k, h)| {
                vec![
                    if *k == 0 {
                        "-".to_string()
                    } else {
                        format!("k{k}")
                    },
                    h.count.to_string(),
                    format!("{}us", h.percentile(50.0)),
                    format!("{}us", h.percentile(90.0)),
                    format!("{}us", h.percentile(99.0)),
                    format!("{}us", h.max),
                ]
            })
            .collect();
        table(
            &mut out,
            md,
            &["k", "rows", "p50", "p90", "p99", "max"],
            &rows,
        );

        // Work-unit drift: latest vs previous run per fingerprint.
        // (run first-seen order within a fingerprint == append order.)
        type RunTotals<'a> = Vec<(&'a str, u64)>;
        let mut per_fp: BTreeMap<&str, (&str, RunTotals)> = BTreeMap::new();
        for r in &self.rows {
            let (_, runs) = per_fp
                .entry(r.fp.as_str())
                .or_insert((r.cmd.as_str(), Vec::new()));
            match runs.last_mut() {
                Some((run, work)) if *run == r.run => *work += r.work_units,
                _ => runs.push((r.run.as_str(), r.work_units)),
            }
        }
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (fp, (cmd, runs)) in &per_fp {
            if runs.len() < 2 {
                continue;
            }
            let (_, prev) = runs[runs.len() - 2];
            let (_, last) = runs[runs.len() - 1];
            let delta = if last >= prev {
                format!("+{}", last - prev)
            } else {
                format!("-{}", prev - last)
            };
            rows.push(vec![
                (*fp).to_string(),
                (*cmd).to_string(),
                runs.len().to_string(),
                prev.to_string(),
                last.to_string(),
                delta,
            ]);
        }
        if !rows.is_empty() {
            section(&mut out, md, "Work-unit drift (latest vs previous run)");
            table(
                &mut out,
                md,
                &["fingerprint", "cmd", "runs", "prev", "latest", "delta"],
                &rows,
            );
        }
        out
    }
}

fn section(out: &mut String, md: bool, title: &str) {
    if md {
        let _ = writeln!(out, "\n## {title}\n");
    } else {
        let _ = writeln!(out, "\n{title}:");
    }
}

/// Renders a small table either as markdown (`| a | b |`) or as
/// space-aligned plain text.
fn table(out: &mut String, md: bool, headers: &[&str], rows: &[Vec<String>]) {
    if md {
        let _ = writeln!(out, "| {} |", headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}",
            headers.iter().map(|_| " --- |").collect::<String>()
        );
        for row in rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        return;
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let emit = |out: &mut String, cells: &[String]| {
        let mut line = String::from(" ");
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(line, " {cell:>w$}", w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    };
    emit(
        out,
        &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>(),
    );
    for row in rows {
        emit(out, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(run: &str, fp: &str, k: u64, verdict: &str, work: u64, wall: u64) -> LedgerRow {
        LedgerRow {
            ts_ms: 1_700_000_000_000,
            run: run.into(),
            producer: "gfab 0.4.0".into(),
            cmd: "equiv".into(),
            fp: fp.into(),
            query: "q".into(),
            k,
            verdict: verdict.into(),
            exit: 0,
            work_units: work,
            wall_us: wall,
            mem_peak_bytes: None,
        }
    }

    #[test]
    fn rows_round_trip_with_and_without_mem() {
        let mut r = row("1-2", "00ff", 16, "equivalent", 120, 900);
        let line = r.to_json_line();
        assert_eq!(LedgerRow::from_json_line(&line).unwrap(), r);
        r.mem_peak_bytes = Some(4096);
        let line = r.to_json_line();
        assert!(line.contains("\"mem_peak_bytes\":4096"));
        assert_eq!(LedgerRow::from_json_line(&line).unwrap(), r);
        // Strictness: unknown keys and wrong types are rejected.
        assert!(
            LedgerRow::from_json_line(&line.replace("\"k\":16", "\"k\":16,\"extra\":1"))
                .unwrap_err()
                .contains("unexpected key")
        );
        assert!(
            LedgerRow::from_json_line(&line.replace("\"version\":4", "\"version\":99"))
                .unwrap_err()
                .contains("version")
        );
    }

    #[test]
    fn parse_tolerates_only_a_torn_final_line() {
        let good = row("1-2", "00ff", 16, "equivalent", 1, 2).to_json_line();
        let text = format!("{good}\n{good}\n{{\"type\":\"run\",\"vers");
        let ledger = Ledger::parse(&text).expect("torn tail tolerated");
        assert_eq!(ledger.rows.len(), 2);
        assert!(ledger.torn_tail);
        // Torn line in the middle is an error.
        let text = format!("{good}\n{{\"type\":\"run\",\"vers\n{good}");
        assert!(Ledger::parse(&text).unwrap_err().contains("line 2"));
        // A well-formed final line with bad fields is an error too.
        let bad = good.replace("\"type\":\"run\"", "\"type\":\"walk\"");
        let text = format!("{good}\n{bad}");
        assert!(Ledger::parse(&text).unwrap_err().contains("line 2"));
    }

    #[test]
    fn parse_lenient_skips_mid_file_garbage_with_a_counter() {
        let good = row("1-2", "00ff", 16, "equivalent", 1, 2).to_json_line();
        // Mid-file garbage (torn line healed over by later appends) plus
        // a genuinely torn tail.
        let text = format!("{good}\n{{\"type\":\"run\",\"vers\n{good}\n{{\"type\":\"run\",\"ve");
        let (ledger, skipped) = Ledger::parse_lenient(&text);
        assert_eq!(ledger.rows.len(), 2);
        assert_eq!(skipped, 1);
        assert!(ledger.torn_tail);
        // A well-formed line with bad fields is skipped, not fatal.
        let bad = good.replace("\"type\":\"run\"", "\"type\":\"walk\"");
        let (ledger, skipped) = Ledger::parse_lenient(&format!("{bad}\n{good}"));
        assert_eq!(ledger.rows.len(), 1);
        assert_eq!(skipped, 1);
        assert!(!ledger.torn_tail);
        // Strict parse still rejects the same inputs.
        assert!(Ledger::parse(&text).is_err());
    }

    #[test]
    fn fingerprint_ignores_ledger_path_and_separates_args() {
        let a = fingerprint("equiv", &["x.blif".into(), "y.blif".into()]);
        let b = fingerprint(
            "equiv",
            &[
                "x.blif".into(),
                "--ledger".into(),
                "/tmp/one.jsonl".into(),
                "y.blif".into(),
            ],
        );
        assert_eq!(a, b, "--ledger PATH must not perturb the fingerprint");
        assert_ne!(
            fingerprint("equiv", &["ab".into(), "c".into()]),
            fingerprint("equiv", &["a".into(), "bc".into()])
        );
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn report_groups_runs_by_fingerprint_and_computes_drift() {
        let rows = vec![
            row("1-1", "aa", 8, "equivalent", 100, 500),
            row("1-1", "aa", 8, "equivalent", 50, 400),
            row("2-1", "aa", 8, "equivalent", 120, 450),
            row("3-1", "bb", 16, "inequivalent", 10, 900),
        ];
        let ledger = Ledger {
            rows,
            torn_tail: false,
        };
        let text = ledger.render_report(false);
        assert!(text.contains("4 row(s) across 3 run(s)"), "{text}");
        assert!(text.contains("equivalent"), "{text}");
        assert!(text.contains("k8"), "{text}");
        assert!(text.contains("k16"), "{text}");
        // fp "aa": run 1-1 totals 150, run 2-1 totals 120 → delta -30.
        assert!(text.contains("-30"), "{text}");
        // fp "bb" has one run: no drift row.
        assert!(!text.contains("bb equiv"), "{text}");
        let md = ledger.render_report(true);
        assert!(md.starts_with("# Run ledger"), "{md}");
        assert!(md.contains("| verdict | rows |"), "{md}");
        assert!(md.contains("| --- |"), "{md}");
    }

    #[test]
    fn append_creates_and_appends() {
        let dir = std::env::temp_dir().join(format!("gfab-ledger-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let r = row("1-2", "00ff", 16, "equivalent", 1, 2);
        r.append(&path).unwrap();
        r.append(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let ledger = Ledger::parse(&text).unwrap();
        assert_eq!(ledger.rows.len(), 2);
        assert!(!ledger.torn_tail);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
