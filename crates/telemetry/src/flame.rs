//! Flamegraph export and critical-path analysis (`gfab flame`).
//!
//! # Folded stacks
//!
//! [`folded`] collapses the span tree into Brendan-Gregg folded-stack
//! lines — `frame;frame;frame weight` — the input format of
//! `flamegraph.pl` and most flamegraph viewers. Each span contributes
//! one frame (`phase-slug` or `phase-slug[label]`), the weight is the
//! span's *self* time in microseconds (duration minus direct children),
//! and identical stacks from different spans sum. [`parse_folded`] is
//! the strict inverse used by the round-trip tests.
//!
//! # Speedscope
//!
//! [`speedscope`] emits the same tree as a speedscope-compatible JSON
//! file (<https://www.speedscope.app> file-format): one `"evented"`
//! profile per recording thread, open/close events in timestamp order.
//! Spans that overlap without nesting on the same thread are clamped to
//! their enclosing span so the event stream is always well-nested —
//! speedscope rejects crossing events.
//!
//! # Critical path
//!
//! [`critical_path`] finds the maximum-weight *chain* of spans: a
//! sequence s₁, …, sₙ with `end(sᵢ) ≤ start(sᵢ₊₁)` maximizing total
//! duration — the longest serial dependency visible in the start/end
//! intervals. Two invariants hold by construction and are what the CI
//! acceptance test checks:
//!
//! * the path is at least the longest single span (a singleton is a
//!   chain), and
//! * at most the trace wall clock (chain spans are pairwise disjoint
//!   inside the trace window).
//!
//! On a balanced parallel batch the critical path is far below the sum
//! of span times; a critical path close to the wall clock with most
//! time in one shard is the one-line signature of shard imbalance.

use crate::trace::fmt_duration;
use crate::{SpanRecord, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// One frame name: the phase slug, plus the label when present.
/// `;` (the stack separator) and control characters in labels are
/// replaced so the folded format stays line- and field-safe.
fn frame_name(s: &SpanRecord) -> String {
    match &s.label {
        None => s.phase.slug().to_string(),
        Some(label) => {
            let clean: String = label
                .chars()
                .map(|c| if c == ';' || c.is_control() { '_' } else { c })
                .collect();
            format!("{}[{clean}]", s.phase.slug())
        }
    }
}

/// Renders the trace as folded flamegraph stacks (see module docs).
/// Lines are sorted by stack name; zero-weight stacks are omitted.
#[must_use]
pub fn folded(trace: &Trace) -> String {
    let mut stack_of: BTreeMap<u64, String> = BTreeMap::new();
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for s in trace.spans() {
        let stack = match s.parent.and_then(|p| stack_of.get(&p)) {
            Some(parent_stack) => format!("{parent_stack};{}", frame_name(s)),
            None => frame_name(s),
        };
        stack_of.insert(s.id, stack.clone());
        let self_us = trace.self_time(s).as_micros().min(u128::from(u64::MAX)) as u64;
        if self_us > 0 {
            *weights.entry(stack).or_insert(0) += self_us;
        }
    }
    let mut out = String::new();
    for (stack, w) in &weights {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

/// Strict parser for the folded-stack format: each non-empty line is
/// `frame(;frame)* weight` with a positive integer weight.
///
/// # Errors
///
/// A message naming the 1-based offending line for an empty file, a
/// missing/malformed weight, or an empty frame.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("folded line {lineno}: missing weight"))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("folded line {lineno}: bad weight {weight:?}"))?;
        if weight == 0 {
            return Err(format!("folded line {lineno}: zero weight"));
        }
        let frames: Vec<String> = stack.split(';').map(str::to_owned).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("folded line {lineno}: empty frame in {stack:?}"));
        }
        rows.push((frames, weight));
    }
    if rows.is_empty() {
        return Err("folded input has no stacks".into());
    }
    Ok(rows)
}

/// Renders the trace as a speedscope-compatible JSON document (see
/// module docs): one evented profile per thread, µs units.
#[must_use]
pub fn speedscope(trace: &Trace, name: &str) -> String {
    use crate::json::write_json_string;

    // Frame table, in first-use order.
    let mut frame_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut frames_in_order: Vec<String> = Vec::new();
    let mut index_of = |f: String| -> usize {
        if let Some(&i) = frame_index.get(&f) {
            return i;
        }
        let i = frames_in_order.len();
        frame_index.insert(f.clone(), i);
        frames_in_order.push(f);
        i
    };

    let mut threads: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in trace.spans() {
        threads.entry(s.thread).or_default().push(s);
    }

    let mut profiles = String::new();
    for (pi, (thread, mut spans)) in threads.into_iter().enumerate() {
        // Sort outermost-first so the stack discipline below sees a
        // parent before any span it encloses.
        spans.sort_by_key(|s| (s.start, std::cmp::Reverse(s.start + s.duration), s.id));
        let t0 = spans
            .iter()
            .map(|s| s.start)
            .min()
            .unwrap_or(Duration::ZERO);
        let t1 = spans
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or(Duration::ZERO);

        // Open/close event stream with clamping: a span is cut down to
        // its innermost open ancestor's window, which keeps the stream
        // well-nested even for siblings that overlap on one thread.
        let mut events = String::new();
        let mut open: Vec<(usize, u64)> = Vec::new(); // (frame, clamped end)
        let mut first = true;
        let emit = |events: &mut String, kind: char, frame: usize, at: u64, first: &mut bool| {
            if !*first {
                events.push(',');
            }
            *first = false;
            let _ = write!(
                events,
                "{{\"type\":\"{kind}\",\"frame\":{frame},\"at\":{at}}}"
            );
        };
        for s in &spans {
            let start = s.start.as_micros() as u64;
            let end = (s.start + s.duration).as_micros() as u64;
            while let Some(&(frame, open_end)) = open.last() {
                if open_end <= start {
                    emit(&mut events, 'C', frame, open_end, &mut first);
                    open.pop();
                } else {
                    break;
                }
            }
            let clamped_end = open.last().map_or(end, |&(_, e)| end.min(e));
            let frame = index_of(frame_name(s));
            emit(&mut events, 'O', frame, start, &mut first);
            open.push((frame, clamped_end.max(start)));
        }
        while let Some((frame, end)) = open.pop() {
            emit(&mut events, 'C', frame, end, &mut first);
        }

        if pi > 0 {
            profiles.push(',');
        }
        let _ = write!(
            profiles,
            "{{\"type\":\"evented\",\"name\":\"thread {thread}\",\"unit\":\"microseconds\",\
             \"startValue\":{},\"endValue\":{},\"events\":[{events}]}}",
            t0.as_micros(),
            t1.as_micros()
        );
    }

    let mut frames_json = String::new();
    for (i, f) in frames_in_order.iter().enumerate() {
        if i > 0 {
            frames_json.push(',');
        }
        frames_json.push_str("{\"name\":");
        write_json_string(&mut frames_json, f);
        frames_json.push('}');
    }

    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\"name\":");
    write_json_string(&mut out, name);
    let _ = write!(
        out,
        ",\"activeProfileIndex\":0,\"shared\":{{\"frames\":[{frames_json}]}},\
         \"profiles\":[{profiles}]}}"
    );
    out
}

/// The result of [`critical_path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Trace wall clock in microseconds (the path's upper bound).
    pub wall_us: u64,
    /// Total duration of the chain in microseconds.
    pub path_us: u64,
    /// Span ids on the chain, in time order.
    pub span_ids: Vec<u64>,
    /// Total number of spans considered.
    pub total_spans: usize,
}

/// Computes the maximum-weight chain of pairwise non-overlapping spans
/// (weighted interval scheduling over `[start, start+duration)`; see
/// module docs for the invariants).
#[must_use]
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let wall_us = trace.wall().as_micros().min(u128::from(u64::MAX)) as u64;
    let mut iv: Vec<(u64, u64, u64, u64)> = trace
        .spans()
        .iter()
        .map(|s| {
            let start = s.start.as_micros() as u64;
            let end = (s.start + s.duration).as_micros() as u64;
            (end, start, end - start, s.id)
        })
        .collect();
    if iv.is_empty() {
        return CriticalPath {
            wall_us,
            path_us: 0,
            span_ids: Vec::new(),
            total_spans: 0,
        };
    }
    // Sorted by end time; ties broken by start then id for determinism.
    iv.sort();
    let ends: Vec<u64> = iv.iter().map(|x| x.0).collect();

    // dp[i]: best chain weight whose last interval is i.
    // best[i]: max dp over 0..=i, with the argmax for reconstruction.
    let n = iv.len();
    let mut dp = vec![0u64; n];
    let mut prev = vec![usize::MAX; n]; // predecessor interval on i's chain
    let mut best = vec![(0u64, usize::MAX); n]; // (weight, index achieving it)
    for i in 0..n {
        let (_, start, dur, _) = iv[i];
        // Last position whose end ≤ this start; best[p-1] is the best
        // chain that can legally precede interval i.
        let p = ends.partition_point(|&e| e <= start);
        let (prev_w, prev_i) = if p > 0 { best[p - 1] } else { (0, usize::MAX) };
        dp[i] = dur + prev_w;
        prev[i] = prev_i;
        let here = (dp[i], i);
        best[i] = if i > 0 && best[i - 1].0 >= here.0 {
            best[i - 1]
        } else {
            here
        };
    }

    let (path_us, mut at) = best[n - 1];
    let mut span_ids = Vec::new();
    while at != usize::MAX {
        span_ids.push(iv[at].3);
        at = prev[at];
    }
    span_ids.reverse();
    CriticalPath {
        wall_us,
        path_us,
        span_ids,
        total_spans: n,
    }
}

/// Renders a critical path as the one-screen report `gfab flame
/// --critical-path` prints: the headline ratio plus the chain itself.
#[must_use]
pub fn render_critical_path(trace: &Trace, cp: &CriticalPath) -> String {
    let mut out = String::new();
    let pct = if cp.wall_us == 0 {
        0.0
    } else {
        100.0 * cp.path_us as f64 / cp.wall_us as f64
    };
    let _ = writeln!(
        out,
        "critical path: {}us of {}us wall ({pct:.1}%), {} of {} span(s)",
        cp.path_us,
        cp.wall_us,
        cp.span_ids.len(),
        cp.total_spans
    );
    let chain: Vec<String> = cp
        .span_ids
        .iter()
        .filter_map(|id| trace.spans().iter().find(|s| s.id == *id))
        .map(|s| format!("{} {}", frame_name(s), fmt_duration(s.duration)))
        .collect();
    if !chain.is_empty() {
        let _ = writeln!(out, "  {}", chain.join(" -> "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn span(id: u64, parent: Option<u64>, thread: u64, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            phase: Phase::Extract,
            label: None,
            thread,
            start: Duration::from_micros(start_us),
            duration: Duration::from_micros(dur_us),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    #[test]
    fn folded_attributes_self_time_and_round_trips() {
        let mut root = span(1, None, 0, 0, 100);
        root.phase = Phase::Check;
        root.label = Some("m;x".into()); // ';' must be sanitized
        let child = span(2, Some(1), 0, 10, 60);
        let t = Trace::from_spans(vec![root, child]);
        let text = folded(&t);
        assert!(text.contains("check[m_x] 40\n"), "{text}");
        assert!(text.contains("check[m_x];extract 60\n"), "{text}");
        let rows = parse_folded(&text).expect("round trip");
        assert_eq!(rows.len(), 2);
        let total: u64 = rows.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 100, "self times partition the root span");

        assert!(parse_folded("").is_err());
        assert!(parse_folded("noweight").is_err());
        assert!(parse_folded("a;b x").is_err());
        assert!(parse_folded("a;;b 3").is_err());
    }

    #[test]
    fn critical_path_crosses_concurrent_siblings() {
        // root [0,100]; two concurrent children [0,60] and [0,40] on
        // other threads, then a serial tail [60,95]. Best chain: the
        // 60us child then the 35us tail = 95us — more than any single
        // child, less than the 100us wall. The root span itself (100us)
        // is the longest single span and is itself a 1-chain.
        let t = Trace::from_spans(vec![
            span(1, None, 0, 0, 100),
            span(2, Some(1), 1, 0, 60),
            span(3, Some(1), 2, 0, 40),
            span(4, Some(1), 1, 60, 35),
        ]);
        let cp = critical_path(&t);
        assert_eq!(cp.wall_us, 100);
        assert_eq!(cp.path_us, 100, "root alone beats 60+35");
        assert_eq!(cp.span_ids, vec![1]);

        // Without the root, the known answer is the 60+35 chain.
        let t = Trace::from_spans(vec![
            span(2, None, 1, 0, 60),
            span(3, None, 2, 0, 40),
            span(4, None, 1, 60, 35),
        ]);
        let cp = critical_path(&t);
        assert_eq!(cp.path_us, 95);
        assert_eq!(cp.span_ids, vec![2, 4]);
        let max_span = 60;
        assert!(cp.path_us >= max_span && cp.path_us <= cp.wall_us);
        let report = render_critical_path(&t, &cp);
        assert!(report.contains("95us of 95us wall"), "{report}");
        assert!(report.contains("extract 60µs -> extract 35µs"), "{report}");
    }

    #[test]
    fn critical_path_invariants_hold_on_awkward_traces() {
        // Empty trace.
        let cp = critical_path(&Trace::from_spans(Vec::new()));
        assert_eq!((cp.path_us, cp.wall_us), (0, 0));
        // Zero-duration spans and exact touching (end == start).
        let t = Trace::from_spans(vec![
            span(1, None, 0, 5, 0),
            span(2, None, 0, 0, 5),
            span(3, None, 0, 5, 5),
        ]);
        let cp = critical_path(&t);
        assert_eq!(cp.path_us, 10, "touching intervals chain");
        assert!(cp.path_us <= cp.wall_us);
    }

    #[test]
    fn speedscope_emits_one_profile_per_thread() {
        let t = Trace::from_spans(vec![span(1, None, 0, 0, 100), span(2, Some(1), 1, 10, 50)]);
        let text = speedscope(&t, "trace.jsonl");
        assert!(text.contains("\"$schema\":\"https://www.speedscope.app/file-format-schema.json\""));
        assert!(text.contains("\"name\":\"thread 0\""));
        assert!(text.contains("\"name\":\"thread 1\""));
        assert!(text.contains("\"unit\":\"microseconds\""));
        // Every open has a close: 2 spans → 2 O and 2 C events.
        assert_eq!(text.matches("\"type\":\"O\"").count(), 2);
        assert_eq!(text.matches("\"type\":\"C\"").count(), 2);
        // The document is a single strict-JSON object.
        crate::json::parse_document(&text).expect("speedscope JSON parses");
    }

    #[test]
    fn speedscope_clamps_overlapping_siblings() {
        // Same thread, overlapping but not nested: [0,100] and [50,150].
        // The second span must be clamped to close no later than 100.
        let t = Trace::from_spans(vec![span(1, None, 0, 0, 100), span(2, None, 0, 50, 100)]);
        let text = speedscope(&t, "t");
        // Closes: inner at 100 (clamped from 150), outer at 100.
        assert_eq!(text.matches("\"type\":\"C\",").count(), 2);
        assert!(!text.contains("\"at\":150"), "{text}");
    }
}
