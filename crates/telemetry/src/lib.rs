//! Structured tracing for the GFAB verification pipeline.
//!
//! The pipeline spends its time in a handful of long-running phases —
//! circuit-model construction, the RATO guided-reduction division chain,
//! Buchberger completion, simulation sweeps, Tseitin encoding and CDCL
//! search — and this crate gives every one of them a uniform accounting
//! vocabulary:
//!
//! * [`Phase`] — the closed set of pipeline phases. The same enum names
//!   phases in telemetry spans, in budget-exhaustion errors
//!   (`CoreError::BudgetExhausted`) and in timed-out extraction outcomes,
//!   so a phase is spelled identically everywhere it can appear.
//! * [`Counter`] — typed work counters (division steps, S-polynomials,
//!   conflicts, …) attached to the span that performed the work.
//! * [`Telemetry`] / [`Span`] — a cheaply cloneable handle that either
//!   records hierarchical spans into a [`Collector`] or does nothing at
//!   all. The disabled path is a single branch on an `Option`, so code
//!   instrumented with spans costs nothing measurable when tracing is off.
//! * [`Trace`] — the queryable span tree snapshot: per-phase totals,
//!   parent/child navigation, a human-readable renderer (the CLI
//!   `--trace` / `--stats` table) and a line-delimited JSON codec (the
//!   CLI `--trace-json` sink) with a strict, tested schema.
//!
//! # Span model
//!
//! A span is one timed region of one phase on one thread: it records a
//! monotonic start offset (relative to the collector's epoch), a
//! duration, the phase, an optional free-form label (block instance
//! name, "spec"/"impl" side, …), the recording thread and its parent
//! span. Parenthood is explicit — a [`Span`] hands out re-parented
//! [`Telemetry`] handles via [`Span::telemetry`], which callers pass down
//! (including across threads, e.g. one handle per hierarchical block),
//! so the tree never depends on thread-local ambient state.
//!
//! Spans are the *single* timing source: pipeline stats structs
//! (`ExtractionStats` durations and friends) are filled from the value
//! returned by [`Span::finish`], not from a second clock.
//!
//! # JSONL schema
//!
//! See [`Trace::to_jsonl`] for the documented line format; the parser in
//! [`Trace::from_jsonl`] is strict and is what `gfab trace-check` and CI
//! use to validate emitted files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod diff;
pub mod events;
pub mod flame;
pub mod json;
mod jsonl;
pub mod ledger;
pub mod mem;
mod metrics;
mod span;
mod trace;

pub use agg::{AggGroup, GroupBy, TraceAgg};
pub use diff::{DiffRow, PhaseAgg, Regression, TraceDiff};
pub use events::{Event, EventBus, EventKind, EventReceiver, EventStream, Recv, PROGRESS_STRIDE};
pub use flame::{critical_path, folded, parse_folded, speedscope, CriticalPath};
pub use jsonl::{ParseError, JSONL_VERSION};
pub use ledger::{fingerprint, Ledger, LedgerRow};
pub use metrics::{Gauge, Hist, HistData, HIST_BUCKETS};
pub use span::{Collector, Span, SpanRecord, Telemetry};
pub use trace::Trace;

/// A phase of the verification pipeline.
///
/// The closed vocabulary shared by telemetry spans, budget-exhaustion
/// errors and timed-out extraction outcomes. [`std::fmt::Display`] gives
/// the human-readable name used in error messages and tables;
/// [`Phase::slug`] gives the stable kebab-case identifier used in the
/// JSONL trace schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// A whole `Verifier::check` equivalence query (root span).
    Check,
    /// A whole word-level extraction of one netlist (flat root span, or
    /// the per-side "spec"/"impl" span inside an equivalence check).
    Extract,
    /// Extraction of one hierarchical block (label = instance name).
    Block,
    /// Word-level composition of extracted block functions.
    Compose,
    /// Circuit-model construction (ring, gate polynomials, word relations).
    ModelBuild,
    /// The RATO guided reduction: one division chain to a normal form.
    GuidedReduction,
    /// Case-2 completion (bounded Gröbner-basis effort on a residual).
    Case2Completion,
    /// Buchberger pair processing inside a Gröbner-basis computation.
    Buchberger,
    /// Inter-reduction of a completed basis.
    BasisReduction,
    /// A bit-parallel random simulation sweep.
    Simulation,
    /// Miter construction for the SAT fallback.
    MiterBuild,
    /// Tseitin CNF encoding of the miter.
    TseitinEncode,
    /// CDCL solver construction (watch lists, clause database).
    SolverBuild,
    /// The CDCL search itself.
    SatSolve,
    /// Generic polynomial algebra outside any more specific phase.
    Algebra,
    /// An artifact-cache probe by the batch engine (hit or miss).
    CacheLookup,
    /// One fuzz-campaign case: generate, fault, run the differential
    /// oracle (label = `arch/k/fault`).
    FuzzCase,
    /// Delta-debugging shrink of one failing fuzz specimen.
    Shrink,
}

impl Phase {
    /// Stable kebab-case identifier used in the JSONL schema.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Phase::Check => "check",
            Phase::Extract => "extract",
            Phase::Block => "block",
            Phase::Compose => "compose",
            Phase::ModelBuild => "model-build",
            Phase::GuidedReduction => "guided-reduction",
            Phase::Case2Completion => "case2-completion",
            Phase::Buchberger => "buchberger",
            Phase::BasisReduction => "basis-reduction",
            Phase::Simulation => "simulation",
            Phase::MiterBuild => "miter-build",
            Phase::TseitinEncode => "tseitin-encode",
            Phase::SolverBuild => "solver-build",
            Phase::SatSolve => "sat-solve",
            Phase::Algebra => "algebra",
            Phase::CacheLookup => "cache-lookup",
            Phase::FuzzCase => "fuzz-case",
            Phase::Shrink => "shrink",
        }
    }

    /// Inverse of [`Phase::slug`]; `None` for unknown identifiers.
    #[must_use]
    pub fn from_slug(s: &str) -> Option<Phase> {
        Some(match s {
            "check" => Phase::Check,
            "extract" => Phase::Extract,
            "block" => Phase::Block,
            "compose" => Phase::Compose,
            "model-build" => Phase::ModelBuild,
            "guided-reduction" => Phase::GuidedReduction,
            "case2-completion" => Phase::Case2Completion,
            "buchberger" => Phase::Buchberger,
            "basis-reduction" => Phase::BasisReduction,
            "simulation" => Phase::Simulation,
            "miter-build" => Phase::MiterBuild,
            "tseitin-encode" => Phase::TseitinEncode,
            "solver-build" => Phase::SolverBuild,
            "sat-solve" => Phase::SatSolve,
            "algebra" => Phase::Algebra,
            "cache-lookup" => Phase::CacheLookup,
            "fuzz-case" => Phase::FuzzCase,
            "shrink" => Phase::Shrink,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Check => "equivalence check",
            Phase::Extract => "extraction",
            Phase::Block => "block extraction",
            Phase::Compose => "word-level composition",
            Phase::ModelBuild => "model construction",
            Phase::GuidedReduction => "guided reduction",
            Phase::Case2Completion => "case-2 completion",
            Phase::Buchberger => "Buchberger completion",
            Phase::BasisReduction => "basis reduction",
            Phase::Simulation => "simulation sweep",
            Phase::MiterBuild => "miter construction",
            Phase::TseitinEncode => "CNF encoding",
            Phase::SolverBuild => "solver construction",
            Phase::SatSolve => "SAT search",
            Phase::Algebra => "polynomial algebra",
            Phase::CacheLookup => "artifact-cache lookup",
            Phase::FuzzCase => "fuzz case",
            Phase::Shrink => "counterexample shrinking",
        })
    }
}

/// A typed work counter attached to the span that performed the work.
///
/// [`Counter::slug`] is the stable key used in the JSONL schema and the
/// human-readable renderers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Counter {
    /// Gates modelled into polynomials.
    Gates,
    /// Division steps taken by a reduction (lead-term rewrites).
    ReductionSteps,
    /// Peak number of live monomials during a reduction.
    PeakTerms,
    /// Coefficient cancellations observed during a reduction.
    Cancellations,
    /// Terms left in the remainder of a reduction.
    RemainderTerms,
    /// Cooperative-budget polls issued by a phase.
    BudgetPolls,
    /// S-polynomials formed and reduced by Buchberger.
    SPolynomials,
    /// Critical pairs discarded by the product/chain criteria.
    PairsSkipped,
    /// Size of the (reduced) Gröbner basis.
    BasisSize,
    /// Random vectors pushed through a simulation sweep.
    SimVectors,
    /// CNF variables produced by the Tseitin encoding.
    CnfVars,
    /// CNF clauses produced by the Tseitin encoding.
    CnfClauses,
    /// CDCL conflicts.
    Conflicts,
    /// CDCL decisions.
    Decisions,
    /// CDCL unit propagations.
    Propagations,
    /// CDCL restarts.
    Restarts,
    /// Clauses learned by the CDCL solver.
    LearnedClauses,
    /// Hierarchical blocks extracted.
    Blocks,
    /// Artifact-cache lookups that found a byte-verified entry.
    CacheHits,
    /// Artifact-cache lookups that fell through to a fresh computation.
    CacheMisses,
    /// Artifact-cache entries evicted under capacity pressure.
    CacheEvictions,
    /// Fuzz cases executed by a campaign.
    FuzzCases,
    /// Faults injected into fuzz specimens.
    FaultsInjected,
    /// Faulted specimens the differential oracle refuted (caught bugs).
    FuzzCaught,
    /// Oracle findings (engine disagreements, escapes, bogus
    /// counterexamples, unexpected Unknowns).
    FuzzFindings,
    /// Shrink candidates evaluated by the delta-debugging loop.
    ShrinkSteps,
    /// Field coefficient multiplications performed by the GF kernels.
    CoeffMuls,
    /// Field coefficient squarings performed by the GF kernels.
    CoeffSquares,
    /// Word-level modular-reduction folds performed by the precomputed
    /// reducer (one per folded overflow limb).
    ReductionFolds,
    /// Coefficient-kernel results that landed in inline (stack) limb
    /// storage — the zero-allocation fast path.
    CoeffsInline,
    /// Coefficient-kernel results that spilled to heap limb storage
    /// (only possible for k > 576).
    CoeffsHeap,
}

impl Counter {
    /// Stable kebab-case key used in the JSONL schema.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Counter::Gates => "gates",
            Counter::ReductionSteps => "reduction-steps",
            Counter::PeakTerms => "peak-terms",
            Counter::Cancellations => "cancellations",
            Counter::RemainderTerms => "remainder-terms",
            Counter::BudgetPolls => "budget-polls",
            Counter::SPolynomials => "s-polynomials",
            Counter::PairsSkipped => "pairs-skipped",
            Counter::BasisSize => "basis-size",
            Counter::SimVectors => "sim-vectors",
            Counter::CnfVars => "cnf-vars",
            Counter::CnfClauses => "cnf-clauses",
            Counter::Conflicts => "conflicts",
            Counter::Decisions => "decisions",
            Counter::Propagations => "propagations",
            Counter::Restarts => "restarts",
            Counter::LearnedClauses => "learned-clauses",
            Counter::Blocks => "blocks",
            Counter::CacheHits => "cache-hits",
            Counter::CacheMisses => "cache-misses",
            Counter::CacheEvictions => "cache-evictions",
            Counter::FuzzCases => "fuzz-cases",
            Counter::FaultsInjected => "faults-injected",
            Counter::FuzzCaught => "fuzz-caught",
            Counter::FuzzFindings => "fuzz-findings",
            Counter::ShrinkSteps => "shrink-steps",
            Counter::CoeffMuls => "coeff-muls",
            Counter::CoeffSquares => "coeff-squares",
            Counter::ReductionFolds => "reduction-folds",
            Counter::CoeffsInline => "coeff-inline",
            Counter::CoeffsHeap => "coeff-heap",
        }
    }

    /// Whether this counter is a *work-unit* counter: a deterministic
    /// measure of algebraic/search effort that is bit-identical across
    /// thread counts and machines (division steps, Gröbner pairs, gate
    /// models, simulation vectors, CDCL conflicts). Work units are what
    /// `gfab trace-diff` gates regressions on — never wall time.
    #[must_use]
    pub fn is_work(self) -> bool {
        matches!(
            self,
            Counter::Gates
                | Counter::ReductionSteps
                | Counter::SPolynomials
                | Counter::SimVectors
                | Counter::Conflicts
                | Counter::ShrinkSteps
        )
    }

    /// Inverse of [`Counter::slug`]; `None` for unknown keys.
    #[must_use]
    pub fn from_slug(s: &str) -> Option<Counter> {
        Some(match s {
            "gates" => Counter::Gates,
            "reduction-steps" => Counter::ReductionSteps,
            "peak-terms" => Counter::PeakTerms,
            "cancellations" => Counter::Cancellations,
            "remainder-terms" => Counter::RemainderTerms,
            "budget-polls" => Counter::BudgetPolls,
            "s-polynomials" => Counter::SPolynomials,
            "pairs-skipped" => Counter::PairsSkipped,
            "basis-size" => Counter::BasisSize,
            "sim-vectors" => Counter::SimVectors,
            "cnf-vars" => Counter::CnfVars,
            "cnf-clauses" => Counter::CnfClauses,
            "conflicts" => Counter::Conflicts,
            "decisions" => Counter::Decisions,
            "propagations" => Counter::Propagations,
            "restarts" => Counter::Restarts,
            "learned-clauses" => Counter::LearnedClauses,
            "blocks" => Counter::Blocks,
            "cache-hits" => Counter::CacheHits,
            "cache-misses" => Counter::CacheMisses,
            "cache-evictions" => Counter::CacheEvictions,
            "fuzz-cases" => Counter::FuzzCases,
            "faults-injected" => Counter::FaultsInjected,
            "fuzz-caught" => Counter::FuzzCaught,
            "fuzz-findings" => Counter::FuzzFindings,
            "shrink-steps" => Counter::ShrinkSteps,
            "coeff-muls" => Counter::CoeffMuls,
            "coeff-squares" => Counter::CoeffSquares,
            "reduction-folds" => Counter::ReductionFolds,
            "coeff-inline" => Counter::CoeffsInline,
            "coeff-heap" => Counter::CoeffsHeap,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_PHASES: [Phase; 18] = [
        Phase::Check,
        Phase::Extract,
        Phase::Block,
        Phase::Compose,
        Phase::ModelBuild,
        Phase::GuidedReduction,
        Phase::Case2Completion,
        Phase::Buchberger,
        Phase::BasisReduction,
        Phase::Simulation,
        Phase::MiterBuild,
        Phase::TseitinEncode,
        Phase::SolverBuild,
        Phase::SatSolve,
        Phase::Algebra,
        Phase::CacheLookup,
        Phase::FuzzCase,
        Phase::Shrink,
    ];

    #[test]
    fn phase_slugs_round_trip() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_slug(p.slug()), Some(p));
            assert!(!p.to_string().is_empty());
        }
        assert_eq!(Phase::from_slug("no-such-phase"), None);
    }

    #[test]
    fn counter_slugs_round_trip() {
        const ALL: [Counter; 31] = [
            Counter::Gates,
            Counter::ReductionSteps,
            Counter::PeakTerms,
            Counter::Cancellations,
            Counter::RemainderTerms,
            Counter::BudgetPolls,
            Counter::SPolynomials,
            Counter::PairsSkipped,
            Counter::BasisSize,
            Counter::SimVectors,
            Counter::CnfVars,
            Counter::CnfClauses,
            Counter::Conflicts,
            Counter::Decisions,
            Counter::Propagations,
            Counter::Restarts,
            Counter::LearnedClauses,
            Counter::Blocks,
            Counter::CacheHits,
            Counter::CacheMisses,
            Counter::CacheEvictions,
            Counter::FuzzCases,
            Counter::FaultsInjected,
            Counter::FuzzCaught,
            Counter::FuzzFindings,
            Counter::ShrinkSteps,
            Counter::CoeffMuls,
            Counter::CoeffSquares,
            Counter::ReductionFolds,
            Counter::CoeffsInline,
            Counter::CoeffsHeap,
        ];
        for c in ALL {
            assert_eq!(Counter::from_slug(c.slug()), Some(c));
        }
        assert_eq!(Counter::from_slug("no-such-counter"), None);
    }

    #[test]
    fn cache_counters_are_not_work_units() {
        // Hit/miss/eviction patterns depend on scheduling and capacity,
        // so they must never feed the trace-diff work-unit gate.
        for c in [
            Counter::CacheHits,
            Counter::CacheMisses,
            Counter::CacheEvictions,
        ] {
            assert!(!c.is_work());
        }
    }

    #[test]
    fn kernel_counters_are_informational() {
        // The coefficient-kernel counters are deterministic, but they are
        // *implementation* measures (they change whenever the arithmetic
        // kernels change), not algorithmic work units. Keeping them out of
        // is_work() means trace-diff gates stay comparable across kernel
        // generations; the dedicated kernel baseline in perf_gate.sh pins
        // them exactly instead.
        for c in [
            Counter::CoeffMuls,
            Counter::CoeffSquares,
            Counter::ReductionFolds,
            Counter::CoeffsInline,
            Counter::CoeffsHeap,
        ] {
            assert!(!c.is_work());
        }
    }
}
