//! Minimal strict JSON parser shared by the trace codec and the batch
//! manifest loader.
//!
//! Just enough JSON for GFAB's own file formats: objects, arrays,
//! strings, unsigned integers and `null` — no floats, no booleans, no
//! comments. In-repo so the workspace stays dependency-free (DESIGN.md
//! §10). The [`jsonl`](crate::Trace::from_jsonl) trace codec parses one
//! object per *line* with a shallow nesting cap; the batch manifest
//! loader parses one object per *file* (whitespace including newlines
//! is insignificant) with a deeper cap.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers are unsigned 64-bit integers only — every number in GFAB's
/// schemas (span ids, counters, bit widths, exponents) is one, and
/// rejecting floats keeps round trips exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An object, in source order with duplicate keys rejected.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

/// A parsed JSON object with ordered key lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct Obj(pub Vec<(String, Json)>);

impl Obj {
    /// Looks up a key; `None` when absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Nesting cap for the single-line trace schema. The deepest legal
/// chain is span obj → `"hists"` obj → histogram obj → `"buckets"`
/// array.
pub const LINE_DEPTH: usize = 4;

/// Nesting cap for whole-file documents (batch manifests).
pub const FILE_DEPTH: usize = 16;

/// Parses one JSON object from a single line (no newlines allowed in
/// the insignificant whitespace), with the shallow [`LINE_DEPTH`]
/// nesting cap of the trace schema.
///
/// # Errors
///
/// A human-readable message naming the offending byte position for any
/// syntax violation, trailing garbage, or a non-object top level.
pub fn parse_object(line: &str) -> Result<Obj, String> {
    parse_with(line, false, LINE_DEPTH)
}

/// Parses one JSON object from a whole document: newlines are ordinary
/// insignificant whitespace and nesting up to [`FILE_DEPTH`] is
/// accepted. This is what the batch manifest loader uses.
///
/// # Errors
///
/// As [`parse_object`].
pub fn parse_document(text: &str) -> Result<Obj, String> {
    parse_with(text, true, FILE_DEPTH)
}

fn parse_with(text: &str, multiline: bool, max_depth: usize) -> Result<Obj, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        multiline,
        max_depth,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after JSON object".into());
    }
    match value {
        Json::Obj(pairs) => Ok(Obj(pairs)),
        _ => Err("top level is not a JSON object".into()),
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    multiline: bool,
    max_depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b' ' | b'\t') => self.pos += 1,
                Some(b'\n' | b'\r') if self.multiline => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > self.max_depth {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_objects_reject_newlines() {
        assert!(parse_object("{\"a\":1}").is_ok());
        assert!(parse_object("{\"a\":\n1}").is_err());
    }

    #[test]
    fn documents_span_lines_and_nest_deeper() {
        let doc = "{\n  \"queries\": [\n    {\"name\": \"q0\", \"op\": \"equiv\"},\n    {\"name\": \"q1\", \"op\": \"extract\"}\n  ]\n}";
        let obj = parse_document(doc).expect("manifest-shaped document parses");
        let Some(Json::Arr(items)) = obj.get("queries") else {
            panic!("queries array");
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn duplicate_keys_and_trailing_garbage_are_errors() {
        assert!(parse_document("{\"a\":1,\"a\":2}")
            .unwrap_err()
            .contains("duplicate key"));
        assert!(parse_document("{\"a\":1} x")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_document("[1,2]").unwrap_err().contains("top level"));
    }

    #[test]
    fn strings_unescape_and_reescape() {
        let obj = parse_document("{\"s\":\"a\\\"b\\\\c\\u0041\"}").unwrap();
        assert_eq!(obj.get("s"), Some(&Json::Str("a\"b\\cA".into())));
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\n");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000a\"");
    }
}
