//! The query side: a finished [`Trace`] and its renderers.

use crate::{Counter, Gauge, Hist, HistData, Phase, SpanRecord};
use std::fmt::Write as _;
use std::time::Duration;

/// A finished, queryable span tree.
///
/// Obtained from [`crate::Collector::snapshot`] (after a traced query)
/// or [`Trace::from_jsonl`] (from a `--trace-json` file). Spans are held
/// sorted by id, which is also span-creation order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    spans: Vec<SpanRecord>,
}

impl Trace {
    /// Builds a trace directly from span records (sorted by id on the
    /// way in). Collectors and the JSONL parser are the usual sources;
    /// this is public so trace *tools* — aggregation tests, hand-built
    /// fixtures, merge utilities — can assemble span trees too. Parent
    /// links are not validated here; [`Trace::from_jsonl`] is the strict
    /// gate for untrusted input.
    #[must_use]
    pub fn from_spans(mut spans: Vec<SpanRecord>) -> Trace {
        spans.sort_by_key(|s| s.id);
        Trace { spans }
    }

    /// Stitches several traces into one: span ids (and parent links) of
    /// each part are renumbered above the ids already taken, and every
    /// span's start offset is shifted by the part's `shift` — so a batch
    /// run can merge its per-query traces onto the pass timeline (shift
    /// = the query's queue delay) and shard runs can be recombined for
    /// aggregation. Durations, counters, gauges and histograms are
    /// untouched.
    #[must_use]
    pub fn merged<'a, I>(parts: I) -> Trace
    where
        I: IntoIterator<Item = (&'a Trace, Duration)>,
    {
        let mut spans = Vec::new();
        let mut offset = 0u64;
        for (t, shift) in parts {
            let mut hi = offset;
            for s in t.spans() {
                let mut s = s.clone();
                s.id += offset;
                if let Some(p) = &mut s.parent {
                    *p += offset;
                }
                s.start += shift;
                hi = hi.max(s.id);
                spans.push(s);
            }
            offset = hi;
        }
        Trace::from_spans(spans)
    }

    /// All spans, sorted by id (= creation order).
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Spans with no parent.
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Direct children of span `id`, in creation order.
    pub fn children(&self, id: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// Spans of the given phase, in creation order.
    pub fn phase_spans(&self, phase: Phase) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Sum of `duration` over all spans of `phase`.
    #[must_use]
    pub fn phase_total(&self, phase: Phase) -> Duration {
        self.phase_spans(phase).map(|s| s.duration).sum()
    }

    /// Sum of `counter` over all spans.
    #[must_use]
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.spans
            .iter()
            .flat_map(|s| &s.counters)
            .filter(|(c, _)| *c == counter)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Combines `gauge` over all spans per [`Gauge::combine`]; `None`
    /// when no span recorded it.
    #[must_use]
    pub fn gauge_total(&self, gauge: Gauge) -> Option<u64> {
        self.spans
            .iter()
            .flat_map(|s| &s.gauges)
            .filter(|(g, _)| *g == gauge)
            .map(|(_, v)| *v)
            .reduce(|a, b| gauge.combine(a, b))
    }

    /// Merges `hist` over all spans; empty when no span recorded it.
    #[must_use]
    pub fn hist_total(&self, hist: Hist) -> HistData {
        let mut out = HistData::new();
        for s in &self.spans {
            for (h, d) in &s.hists {
                if *h == hist {
                    out.merge(d);
                }
            }
        }
        out
    }

    /// Sum of the deterministic work-unit counters
    /// (see [`Counter::is_work`]) over all spans.
    #[must_use]
    pub fn work_units(&self) -> u64 {
        self.spans
            .iter()
            .flat_map(|s| &s.counters)
            .filter(|(c, _)| c.is_work())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Trace wall clock: latest span end minus earliest span start.
    #[must_use]
    pub fn wall(&self) -> Duration {
        let start = self.spans.iter().map(|s| s.start).min();
        let end = self.spans.iter().map(|s| s.start + s.duration).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => Duration::ZERO,
        }
    }

    /// Self time of span `s`: its duration minus the duration of its
    /// direct children (work attributed to the span itself).
    #[must_use]
    pub fn self_time(&self, s: &SpanRecord) -> Duration {
        let nested: Duration = self.children(s.id).map(|c| c.duration).sum();
        s.duration.saturating_sub(nested)
    }

    /// Per-phase aggregation: `(phase, span count, total duration, self
    /// time)`, ordered by descending self time.
    ///
    /// Self times partition each thread's wall clock exactly (every
    /// instant inside a span tree is the self time of exactly one span),
    /// so their sum is the honest "where did the time go" answer even
    /// with nested phases — and exceeds the wall clock precisely when
    /// phases ran in parallel.
    #[must_use]
    pub fn phase_table(&self) -> Vec<(Phase, usize, Duration, Duration)> {
        let mut rows: Vec<(Phase, usize, Duration, Duration)> = Vec::new();
        for s in &self.spans {
            let own = self.self_time(s);
            match rows.iter_mut().find(|r| r.0 == s.phase) {
                Some(r) => {
                    r.1 += 1;
                    r.2 += s.duration;
                    r.3 += own;
                }
                None => rows.push((s.phase, 1, s.duration, own)),
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.3));
        rows
    }

    /// Renders the per-phase table shown by the CLI `--stats`/`--trace`.
    ///
    /// One row per phase with span count, cumulative time and self time
    /// as a percentage of the trace wall clock (self times sum to ≥100%
    /// of the covered wall; >100% means parallel phases).
    #[must_use]
    pub fn render_table(&self) -> String {
        let wall = self.wall();
        let has_mem = self.gauge_total(Gauge::MemPeakBytes).is_some();
        let mut out = String::new();
        let _ = write!(
            out,
            "{:<24} {:>5} {:>12} {:>12} {:>8}",
            "phase", "spans", "total", "self", "% wall"
        );
        if has_mem {
            let _ = write!(out, " {:>10}", "peak mem");
        }
        out.push('\n');
        for (phase, count, total, own) in self.phase_table() {
            let pct = if wall.is_zero() {
                0.0
            } else {
                100.0 * own.as_secs_f64() / wall.as_secs_f64()
            };
            let _ = write!(
                out,
                "{:<24} {:>5} {:>12} {:>12} {:>7.1}%",
                phase.to_string(),
                count,
                fmt_duration(total),
                fmt_duration(own),
                pct
            );
            if has_mem {
                let peak = self
                    .phase_spans(phase)
                    .flat_map(|s| &s.gauges)
                    .filter(|(g, _)| *g == Gauge::MemPeakBytes)
                    .map(|(_, v)| *v)
                    .max();
                match peak {
                    Some(p) => {
                        let _ = write!(out, " {:>10}", fmt_bytes(p));
                    }
                    None => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "wall clock: {}", fmt_duration(wall));
        // Distribution summaries: every histogram kind recorded anywhere
        // in the trace, merged over all spans, as percentiles rather
        // than raw bucket arrays.
        let mut kinds: Vec<Hist> = Vec::new();
        for s in &self.spans {
            for (h, _) in &s.hists {
                if !kinds.contains(h) {
                    kinds.push(*h);
                }
            }
        }
        kinds.sort_by_key(|h| h.slug());
        if !kinds.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
                "histogram", "n", "mean", "p50", "p90", "p99", "max"
            );
            for h in kinds {
                let d = self.hist_total(h);
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
                    h.to_string(),
                    d.count,
                    d.mean(),
                    d.percentile(50.0),
                    d.percentile(90.0),
                    d.percentile(99.0),
                    d.max
                );
            }
        }
        out
    }

    /// Renders the span tree (the CLI `--trace` view): one line per
    /// span, indented under its parent, with duration and counters.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let roots: Vec<u64> = self.roots().map(|s| s.id).collect();
        for id in roots {
            self.render_subtree(id, 0, &mut out);
        }
        out
    }

    fn render_subtree(&self, id: u64, depth: usize, out: &mut String) {
        let Some(s) = self.spans.iter().find(|s| s.id == id) else {
            return;
        };
        let _ = write!(out, "{:indent$}{}", "", s.phase, indent = depth * 2);
        if let Some(label) = &s.label {
            let _ = write!(out, " [{label}]");
        }
        let _ = write!(out, "  {}", fmt_duration(s.duration));
        if s.thread != 0 {
            let _ = write!(out, "  (thread {})", s.thread);
        }
        for (c, v) in &s.counters {
            let _ = write!(out, "  {c}={v}");
        }
        for (g, v) in &s.gauges {
            match g {
                Gauge::MemPeakBytes | Gauge::MemAllocBytes => {
                    let _ = write!(out, "  {g}={}", fmt_bytes(*v));
                }
                _ => {
                    let _ = write!(out, "  {g}={v}");
                }
            }
        }
        for (h, d) in &s.hists {
            let _ = write!(
                out,
                "  {h}[n={} mean={:.1} p50={} p99={} max={}]",
                d.count,
                d.mean(),
                d.percentile(50.0),
                d.percentile(99.0),
                d.max
            );
        }
        out.push('\n');
        let children: Vec<u64> = self.children(id).map(|c| c.id).collect();
        for child in children {
            self.render_subtree(child, depth + 1, out);
        }
    }
}

/// Compact human byte count (KiB/MiB/GiB with one decimal).
pub(crate) fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if bf < KIB {
        format!("{b}B")
    } else if bf < KIB * KIB {
        format!("{:.1}KiB", bf / KIB)
    } else if bf < KIB * KIB * KIB {
        format!("{:.1}MiB", bf / (KIB * KIB))
    } else {
        format!("{:.1}GiB", bf / (KIB * KIB * KIB))
    }
}

/// Compact human duration: microseconds under 1 ms, milliseconds under
/// 1 s, else seconds.
pub(crate) fn fmt_duration(d: Duration) -> String {
    if d < Duration::from_millis(1) {
        format!("{}µs", d.as_micros())
    } else if d < Duration::from_secs(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.3}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, phase: Phase, start_ms: u64, dur_ms: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            phase,
            label: None,
            thread: 0,
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    fn sample() -> Trace {
        let mut root = span(1, None, Phase::Extract, 0, 100);
        root.label = Some("spec".into());
        let mut model = span(2, Some(1), Phase::ModelBuild, 0, 30);
        model.counters = vec![(Counter::Gates, 7)];
        let reduce = span(3, Some(1), Phase::GuidedReduction, 30, 60);
        Trace::from_spans(vec![root, model, reduce])
    }

    #[test]
    fn tree_queries() {
        let t = sample();
        assert_eq!(t.roots().count(), 1);
        assert_eq!(t.children(1).count(), 2);
        assert_eq!(t.phase_total(Phase::ModelBuild), Duration::from_millis(30));
        assert_eq!(t.counter_total(Counter::Gates), 7);
        assert_eq!(t.wall(), Duration::from_millis(100));
    }

    #[test]
    fn self_time_subtracts_children() {
        let t = sample();
        let root = &t.spans()[0];
        assert_eq!(t.self_time(root), Duration::from_millis(10));
        let table = t.phase_table();
        let total: Duration = table.iter().map(|r| r.3).sum();
        assert_eq!(total, t.wall(), "self times partition the wall clock");
    }

    #[test]
    fn mem_gauges_add_a_peak_column() {
        let t = sample();
        assert!(!t.render_table().contains("peak mem"));
        let mut spans = t.spans().to_vec();
        spans[1].gauges.push((Gauge::MemPeakBytes, 3 * 1024 * 1024));
        let t = Trace::from_spans(spans);
        let table = t.render_table();
        assert!(table.contains("peak mem"));
        assert!(table.contains("3.0MiB"));
        assert_eq!(t.gauge_total(Gauge::MemPeakBytes), Some(3 * 1024 * 1024));
    }

    #[test]
    fn work_units_sum_deterministic_counters() {
        let t = sample();
        // Gates is a work counter; durations are not.
        assert_eq!(t.work_units(), 7);
    }

    #[test]
    fn renderers_cover_all_phases() {
        let t = sample();
        let table = t.render_table();
        assert!(table.contains("model construction"));
        assert!(table.contains("guided reduction"));
        assert!(table.contains("% wall"));
        let tree = t.render_tree();
        assert!(tree.contains("extraction [spec]"));
        assert!(tree.contains("gates=7"));
    }
}
