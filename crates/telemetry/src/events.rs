//! Live event streaming: the bounded, non-blocking channel behind
//! `--progress`, `--events FILE|-` and the reporter thread.
//!
//! Every observability surface before this one (span traces, metrics,
//! the run ledger) is *post-hoc*: nothing is visible until the query
//! exits. This module adds the in-flight view. Instrumented code —
//! span open/close in [`crate::Telemetry`], the budget poller, the
//! batch/fuzz worker loops — publishes typed [`Event`]s into an
//! [`EventBus`]; a dedicated reporter thread drains the matching
//! [`EventReceiver`] and feeds the sinks (live TTY renderer, NDJSON
//! file, …).
//!
//! # The hot path never blocks
//!
//! The bus wraps a bounded [`std::sync::mpsc::sync_channel`] and
//! publishes with `try_send`: when the reporter falls behind and the
//! channel fills, events are *dropped and counted* — never queued
//! unboundedly, never waited on. The drop counter is surfaced both as
//! a queryable metric ([`EventBus::dropped`]) and in the event stream
//! itself (the `events-end` footer line). A disabled bus (the
//! default) is a `None` inside an `Option`, so instrumented code pays
//! one branch when events are off — the same contract as disabled
//! tracing.
//!
//! Events carry wall-clock timestamps for display, but publishing
//! never feeds back into any computation: work-unit counters and
//! verdicts are bit-identical with events on or off, at any thread
//! count.
//!
//! # NDJSON schema (v4 `events` documents)
//!
//! One JSON object per line, validated by `gfab trace-check`:
//!
//! * **Header** (first line): `{"type":"events","version":4}` plus an
//!   optional `"producer"` string (the emitting tool's version).
//! * **Event lines**: `{"type":"event","seq":N,"ts_us":N,"thread":N,`
//!   `"event":"<kind>",...}` with kind-specific fields (see
//!   [`EventKind`]). `seq` values are unique but — because publishers
//!   race on a shared counter and drops leave gaps — not necessarily
//!   contiguous or sorted in file order.
//! * **Footer** (optional last line, written when the run completes):
//!   `{"type":"events-end","events":N,"dropped":D}` — `N` must equal
//!   the number of event lines, `D` is the backpressure drop counter.
//!   A file being tailed mid-run simply has no footer yet
//!   ([`EventStream::complete`] is `false`).

use crate::json::{parse_object, write_json_string, Json};
use crate::jsonl::{
    err, err_at, expect_keys, expect_keys_opt, get_str, get_u64, ParseError, JSONL_VERSION,
};
use crate::{Counter, Phase};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Work-unit cadence of in-flight [`EventKind::Progress`] snapshots: a
/// span publishes one snapshot each time its cumulative work-unit
/// total crosses a multiple of this stride. The cadence is defined in
/// *work units* — deterministic effort — so which totals get announced
/// depends only on the computation, never on wall clock or thread
/// count (only the announcements' timestamps are wall-clock).
pub const PROGRESS_STRIDE: u64 = 4096;

/// What happened, with the kind-specific payload. The `event` field of
/// the NDJSON line is the kind's slug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A phase span opened (`"phase-enter"`).
    PhaseEnter {
        /// The phase that started.
        phase: Phase,
        /// The span's free-form label, if any.
        label: Option<String>,
    },
    /// A phase span closed (`"phase-exit"`).
    PhaseExit {
        /// The phase that finished.
        phase: Phase,
        /// The span's free-form label, if any.
        label: Option<String>,
        /// Wall-clock duration of the span, microseconds.
        dur_us: u64,
        /// Work units attributed to the span while it was open.
        work_units: u64,
    },
    /// Periodic in-flight work snapshot of one open span, published at
    /// the deterministic [`PROGRESS_STRIDE`] cadence (`"progress"`).
    Progress {
        /// The phase doing the work.
        phase: Phase,
        /// Cumulative work units attributed to the span so far.
        work_units: u64,
    },
    /// A budget-poller tick (`"budget"`): how much work the query has
    /// charged and how much wall clock remains.
    BudgetTick {
        /// Cumulative work units charged to the query's budget.
        work_done: u64,
        /// Time left until the deadline (`None` when unlimited).
        remaining_us: Option<u64>,
    },
    /// A worker dequeued a batch/fuzz query (`"query-start"`).
    QueryStart {
        /// The query's name.
        query: String,
        /// Worker index that picked it up.
        worker: u64,
    },
    /// A batch/fuzz query finished (`"query-done"`).
    QueryDone {
        /// The query's name.
        query: String,
        /// Its verdict word (`equivalent`, `caught`, `timeout`, …).
        verdict: String,
        /// The exit severity the outcome maps to (0/1/2/3).
        exit: u64,
        /// Wall-clock time of the query, microseconds.
        wall_us: u64,
        /// Worker index that ran it.
        worker: u64,
    },
}

impl EventKind {
    /// Stable kebab-case identifier used in the NDJSON schema.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            EventKind::PhaseEnter { .. } => "phase-enter",
            EventKind::PhaseExit { .. } => "phase-exit",
            EventKind::Progress { .. } => "progress",
            EventKind::BudgetTick { .. } => "budget",
            EventKind::QueryStart { .. } => "query-start",
            EventKind::QueryDone { .. } => "query-done",
        }
    }

    /// The work-unit total this event reports, if it reports one.
    #[must_use]
    pub fn work_units(&self) -> Option<u64> {
        match self {
            EventKind::PhaseExit { work_units, .. } | EventKind::Progress { work_units, .. } => {
                Some(*work_units)
            }
            EventKind::BudgetTick { work_done, .. } => Some(*work_done),
            _ => None,
        }
    }
}

/// One published event: a unique sequence number, a wall-clock offset
/// from the bus epoch, the publishing thread's display index, and the
/// kind-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Unique (but not necessarily file-ordered) sequence number.
    pub seq: u64,
    /// Microseconds since the bus was created. Informational only.
    pub ts_us: u64,
    /// Display index of the publishing thread (same assignment as span
    /// records).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct BusInner {
    tx: SyncSender<Event>,
    seq: AtomicU64,
    dropped: Arc<AtomicU64>,
    epoch: Instant,
}

/// The publishing side of the live event channel.
///
/// Cheap to clone (an `Arc` bump) and cheap to carry disabled (a
/// `None`): [`EventBus::default`] publishes nothing at the cost of one
/// branch. Publishing never blocks — see the module docs.
#[derive(Debug, Clone, Default)]
pub struct EventBus {
    inner: Option<Arc<BusInner>>,
}

impl EventBus {
    /// A bus that publishes nothing. Equivalent to `EventBus::default()`.
    #[must_use]
    pub fn disabled() -> EventBus {
        EventBus::default()
    }

    /// Creates a live channel bounded at `capacity` queued events
    /// (minimum 1) and returns the publishing and draining halves.
    #[must_use]
    pub fn bounded(capacity: usize) -> (EventBus, EventReceiver) {
        let (tx, rx) = sync_channel(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        let bus = EventBus {
            inner: Some(Arc::new(BusInner {
                tx,
                seq: AtomicU64::new(0),
                dropped: Arc::clone(&dropped),
                epoch: Instant::now(),
            })),
        };
        (bus, EventReceiver { rx, dropped })
    }

    /// Whether publishes go anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Publishes one event. Non-blocking: on a full (or closed)
    /// channel the event is dropped and counted instead. No-op on a
    /// disabled bus.
    pub fn publish(&self, kind: EventKind) {
        // The single enabled/disabled branch.
        let Some(inner) = &self.inner else { return };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            thread: crate::span::thread_index(),
            kind,
        };
        if inner.tx.try_send(event).is_err() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped under backpressure so far (0 on a disabled bus).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }
}

/// The outcome of one [`EventReceiver::recv_timeout`] poll.
#[derive(Debug)]
pub enum Recv {
    /// An event arrived.
    Event(Event),
    /// Nothing arrived within the timeout; the channel is still open.
    Timeout,
    /// Every [`EventBus`] clone was dropped; no more events will come.
    Closed,
}

/// The draining side of the live event channel, owned by the reporter
/// thread.
#[derive(Debug)]
pub struct EventReceiver {
    rx: Receiver<Event>,
    dropped: Arc<AtomicU64>,
}

impl EventReceiver {
    /// Waits up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Recv {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Recv::Event(ev),
            Err(RecvTimeoutError::Timeout) => Recv::Timeout,
            Err(RecvTimeoutError::Disconnected) => Recv::Closed,
        }
    }

    /// Events dropped under backpressure so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The NDJSON header line (no trailing newline); see the module docs.
#[must_use]
pub fn events_header(producer: Option<&str>) -> String {
    let mut out = format!("{{\"type\":\"events\",\"version\":{JSONL_VERSION}");
    if let Some(p) = producer {
        out.push_str(",\"producer\":");
        write_json_string(&mut out, p);
    }
    out.push('}');
    out
}

/// The NDJSON footer line (no trailing newline); see the module docs.
#[must_use]
pub fn events_footer(events: u64, dropped: u64) -> String {
    format!("{{\"type\":\"events-end\",\"events\":{events},\"dropped\":{dropped}}}")
}

impl Event {
    /// Serializes the event as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"ts_us\":{},\"thread\":{},\"event\":\"{}\"",
            self.seq,
            self.ts_us,
            self.thread,
            self.kind.slug()
        );
        let label_field = |out: &mut String, label: &Option<String>| {
            out.push_str(",\"label\":");
            match label {
                Some(l) => write_json_string(out, l),
                None => out.push_str("null"),
            }
        };
        match &self.kind {
            EventKind::PhaseEnter { phase, label } => {
                let _ = write!(out, ",\"phase\":\"{}\"", phase.slug());
                label_field(&mut out, label);
            }
            EventKind::PhaseExit {
                phase,
                label,
                dur_us,
                work_units,
            } => {
                let _ = write!(out, ",\"phase\":\"{}\"", phase.slug());
                label_field(&mut out, label);
                let _ = write!(out, ",\"dur_us\":{dur_us},\"work_units\":{work_units}");
            }
            EventKind::Progress { phase, work_units } => {
                let _ = write!(
                    out,
                    ",\"phase\":\"{}\",\"work_units\":{work_units}",
                    phase.slug()
                );
            }
            EventKind::BudgetTick {
                work_done,
                remaining_us,
            } => {
                let _ = write!(out, ",\"work_done\":{work_done},\"remaining_us\":");
                match remaining_us {
                    Some(r) => {
                        let _ = write!(out, "{r}");
                    }
                    None => out.push_str("null"),
                }
            }
            EventKind::QueryStart { query, worker } => {
                out.push_str(",\"query\":");
                write_json_string(&mut out, query);
                let _ = write!(out, ",\"worker\":{worker}");
            }
            EventKind::QueryDone {
                query,
                verdict,
                exit,
                wall_us,
                worker,
            } => {
                out.push_str(",\"query\":");
                write_json_string(&mut out, query);
                out.push_str(",\"verdict\":");
                write_json_string(&mut out, verdict);
                let _ = write!(
                    out,
                    ",\"exit\":{exit},\"wall_us\":{wall_us},\"worker\":{worker}"
                );
            }
        }
        out.push('}');
        out
    }
}

/// A parsed (and strictly validated) `--events` NDJSON stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStream {
    /// Every event line, in file order.
    pub events: Vec<Event>,
    /// The producing tool's version string, when the header carried one.
    pub producer: Option<String>,
    /// The footer's backpressure drop counter; `None` while the stream
    /// is still being written (no footer yet).
    pub dropped: Option<u64>,
    /// Whether the `events-end` footer was present — `false` for a
    /// file captured mid-run.
    pub complete: bool,
}

impl EventStream {
    /// Parses and validates an `--events` NDJSON stream (see the
    /// module docs for the schema).
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the offending line and field path for
    /// any syntax or schema violation.
    pub fn from_jsonl(text: &str) -> Result<EventStream, ParseError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());

        let (hline, header) = lines.next().ok_or_else(|| err(0, "empty events file"))?;
        let header = parse_object(header).map_err(|m| err(hline, m))?;
        expect_keys_opt(&header, &["type", "version"], &["producer"])
            .map_err(|e| e.on_line(hline))?;
        if header.get("type") != Some(&Json::Str("events".into())) {
            return Err(err_at(hline, "type", "header \"type\" must be \"events\""));
        }
        let version = get_u64(&header, "version").map_err(|e| e.on_line(hline))?;
        if !(4..=JSONL_VERSION).contains(&version) {
            return Err(err_at(
                hline,
                "version",
                format!("unsupported events version {version} (want 4..={JSONL_VERSION})"),
            ));
        }
        let producer = match header.get("producer") {
            None => None,
            Some(_) => Some(get_str(&header, "producer").map_err(|e| e.on_line(hline))?),
        };

        let mut events = Vec::new();
        let mut seqs = BTreeSet::new();
        let mut footer: Option<(u64, u64)> = None;
        for (lineno, line) in lines {
            if footer.is_some() {
                return Err(err(lineno, "content after the events-end footer"));
            }
            let obj = parse_object(line).map_err(|m| err(lineno, m))?;
            match obj.get("type") {
                Some(Json::Str(t)) if t == "events-end" => {
                    expect_keys(&obj, &["type", "events", "dropped"])
                        .map_err(|e| e.on_line(lineno))?;
                    let declared = get_u64(&obj, "events").map_err(|e| e.on_line(lineno))?;
                    if declared != events.len() as u64 {
                        return Err(err_at(
                            lineno,
                            "events",
                            format!(
                                "footer declares {declared} event(s), found {}",
                                events.len()
                            ),
                        ));
                    }
                    let dropped = get_u64(&obj, "dropped").map_err(|e| e.on_line(lineno))?;
                    footer = Some((declared, dropped));
                }
                Some(Json::Str(t)) if t == "event" => {
                    let ev = parse_event_line(&obj, lineno)?;
                    if !seqs.insert(ev.seq) {
                        return Err(err_at(
                            lineno,
                            "seq",
                            format!("duplicate event seq {}", ev.seq),
                        ));
                    }
                    events.push(ev);
                }
                _ => {
                    return Err(err_at(
                        lineno,
                        "type",
                        "line \"type\" must be \"event\" or \"events-end\"",
                    ))
                }
            }
        }
        Ok(EventStream {
            events,
            producer,
            dropped: footer.map(|(_, d)| d),
            complete: footer.is_some(),
        })
    }

    /// Per-kind event counts, for summaries (slug → count, sorted).
    #[must_use]
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
        for ev in &self.events {
            *counts.entry(ev.kind.slug()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

const COMMON_KEYS: [&str; 5] = ["type", "seq", "ts_us", "thread", "event"];

fn parse_event_line(obj: &crate::json::Obj, lineno: usize) -> Result<Event, ParseError> {
    let slug = get_str(obj, "event").map_err(|e| e.on_line(lineno))?;
    let kind_keys: &[&str] = match slug.as_str() {
        "phase-enter" => &["phase", "label"],
        "phase-exit" => &["phase", "label", "dur_us", "work_units"],
        "progress" => &["phase", "work_units"],
        "budget" => &["work_done", "remaining_us"],
        "query-start" => &["query", "worker"],
        "query-done" => &["query", "verdict", "exit", "wall_us", "worker"],
        other => {
            return Err(err_at(
                lineno,
                "event",
                format!("unknown event kind {other:?}"),
            ))
        }
    };
    let mut keys: Vec<&str> = COMMON_KEYS.to_vec();
    keys.extend_from_slice(kind_keys);
    expect_keys(obj, &keys).map_err(|e| e.on_line(lineno))?;

    let phase = |key: &str| -> Result<Phase, ParseError> {
        let s = get_str(obj, key).map_err(|e| e.on_line(lineno))?;
        Phase::from_slug(&s).ok_or_else(|| err_at(lineno, key, format!("unknown phase slug {s:?}")))
    };
    let label = || -> Result<Option<String>, ParseError> {
        match obj.get("label") {
            Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            _ => Err(err_at(
                lineno,
                "label",
                "\"label\" must be a string or null",
            )),
        }
    };
    let num = |key: &str| get_u64(obj, key).map_err(|e| e.on_line(lineno));
    let string = |key: &str| get_str(obj, key).map_err(|e| e.on_line(lineno));

    let kind = match slug.as_str() {
        "phase-enter" => EventKind::PhaseEnter {
            phase: phase("phase")?,
            label: label()?,
        },
        "phase-exit" => EventKind::PhaseExit {
            phase: phase("phase")?,
            label: label()?,
            dur_us: num("dur_us")?,
            work_units: num("work_units")?,
        },
        "progress" => EventKind::Progress {
            phase: phase("phase")?,
            work_units: num("work_units")?,
        },
        "budget" => EventKind::BudgetTick {
            work_done: num("work_done")?,
            remaining_us: match obj.get("remaining_us") {
                Some(Json::Null) => None,
                Some(Json::Num(n)) => Some(*n),
                _ => {
                    return Err(err_at(
                        lineno,
                        "remaining_us",
                        "\"remaining_us\" must be an integer or null",
                    ))
                }
            },
        },
        "query-start" => EventKind::QueryStart {
            query: string("query")?,
            worker: num("worker")?,
        },
        "query-done" => EventKind::QueryDone {
            query: string("query")?,
            verdict: string("verdict")?,
            exit: num("exit")?,
            wall_us: num("wall_us")?,
            worker: num("worker")?,
        },
        _ => unreachable!("slug matched above"),
    };
    Ok(Event {
        seq: num("seq")?,
        ts_us: num("ts_us")?,
        thread: num("thread")?,
        kind,
    })
}

/// The per-span progress tracker behind [`PROGRESS_STRIDE`]: spans feed
/// their work-unit counter increments through it and it publishes one
/// [`EventKind::Progress`] snapshot per stride crossing.
#[derive(Debug)]
pub(crate) struct ProgressMeter {
    work: u64,
    next_mark: u64,
}

impl ProgressMeter {
    pub(crate) fn new() -> ProgressMeter {
        ProgressMeter {
            work: 0,
            next_mark: PROGRESS_STRIDE,
        }
    }

    /// Total work units fed through so far.
    pub(crate) fn work(&self) -> u64 {
        self.work
    }

    /// Accumulates `value` units of work counter `counter`; publishes a
    /// progress snapshot on `bus` when the total crosses a stride mark.
    pub(crate) fn note(&mut self, bus: &EventBus, phase: Phase, counter: Counter, value: u64) {
        if !counter.is_work() {
            return;
        }
        self.work += value;
        if self.work >= self.next_mark {
            self.next_mark = (self.work / PROGRESS_STRIDE + 1) * PROGRESS_STRIDE;
            bus.publish(EventKind::Progress {
                phase,
                work_units: self.work,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                ts_us: 10,
                thread: 0,
                kind: EventKind::PhaseEnter {
                    phase: Phase::Extract,
                    label: Some("spec \"q\"\\".into()),
                },
            },
            Event {
                seq: 1,
                ts_us: 20,
                thread: 1,
                kind: EventKind::Progress {
                    phase: Phase::GuidedReduction,
                    work_units: 4096,
                },
            },
            Event {
                seq: 2,
                ts_us: 30,
                thread: 0,
                kind: EventKind::BudgetTick {
                    work_done: 5000,
                    remaining_us: Some(120_000),
                },
            },
            Event {
                seq: 3,
                ts_us: 31,
                thread: 0,
                kind: EventKind::BudgetTick {
                    work_done: 6000,
                    remaining_us: None,
                },
            },
            Event {
                seq: 4,
                ts_us: 40,
                thread: 2,
                kind: EventKind::QueryStart {
                    query: "mont-eq".into(),
                    worker: 2,
                },
            },
            Event {
                seq: 5,
                ts_us: 90,
                thread: 2,
                kind: EventKind::QueryDone {
                    query: "mont-eq".into(),
                    verdict: "equivalent".into(),
                    exit: 0,
                    wall_us: 50,
                    worker: 2,
                },
            },
            Event {
                seq: 6,
                ts_us: 95,
                thread: 0,
                kind: EventKind::PhaseExit {
                    phase: Phase::Extract,
                    label: None,
                    dur_us: 85,
                    work_units: 6100,
                },
            },
        ]
    }

    fn render(events: &[Event], footer: bool) -> String {
        let mut text = events_header(Some("gfab 0.5.0"));
        text.push('\n');
        for ev in events {
            text.push_str(&ev.to_json_line());
            text.push('\n');
        }
        if footer {
            text.push_str(&events_footer(events.len() as u64, 3));
            text.push('\n');
        }
        text
    }

    #[test]
    fn round_trip_preserves_every_kind() {
        let events = sample_events();
        let text = render(&events, true);
        let stream = EventStream::from_jsonl(&text).expect("round trip");
        assert_eq!(stream.events, events);
        assert_eq!(stream.producer.as_deref(), Some("gfab 0.5.0"));
        assert_eq!(stream.dropped, Some(3));
        assert!(stream.complete);
        for line in text.lines() {
            parse_object(line).expect("each line parses standalone");
        }
    }

    #[test]
    fn footerless_stream_parses_as_incomplete() {
        let stream = EventStream::from_jsonl(&render(&sample_events(), false)).unwrap();
        assert!(!stream.complete);
        assert_eq!(stream.dropped, None);
        assert_eq!(stream.events.len(), 7);
    }

    #[test]
    fn strict_parser_names_line_and_field() {
        let good = render(&sample_events(), true);

        let e =
            EventStream::from_jsonl(&good.replace("\"version\":4", "\"version\":1")).unwrap_err();
        assert_eq!(e.path, "version");

        let e =
            EventStream::from_jsonl(&good.replace("\"event\":\"progress\"", "\"event\":\"warp\""))
                .unwrap_err();
        assert_eq!(e.path, "event");
        assert!(e.message.contains("unknown event kind"));

        let e = EventStream::from_jsonl(&good.replace("\"work_units\":4096", "\"bogus\":1"))
            .unwrap_err();
        assert!(e.message.contains("missing required field") || e.message.contains("unexpected"));

        let e = EventStream::from_jsonl(&good.replace("\"events\":7", "\"events\":9")).unwrap_err();
        assert_eq!(e.path, "events");
        assert!(e.message.contains("declares 9"));

        let e = EventStream::from_jsonl(&good.replace("\"seq\":5", "\"seq\":0")).unwrap_err();
        assert_eq!(e.path, "seq");
        assert!(e.message.contains("duplicate"));

        let mut after_footer = good.clone();
        after_footer.push_str("{\"type\":\"event\"}\n");
        assert!(EventStream::from_jsonl(&after_footer)
            .unwrap_err()
            .message
            .contains("after the events-end footer"));

        assert!(EventStream::from_jsonl("").is_err());
    }

    #[test]
    fn disabled_bus_is_inert() {
        let bus = EventBus::disabled();
        assert!(!bus.is_enabled());
        bus.publish(EventKind::Progress {
            phase: Phase::Extract,
            work_units: 1,
        });
        assert_eq!(bus.dropped(), 0);
    }

    #[test]
    fn full_channel_drops_with_counter_without_blocking() {
        let (bus, rx) = EventBus::bounded(2);
        for i in 0..10 {
            bus.publish(EventKind::Progress {
                phase: Phase::Extract,
                work_units: i,
            });
        }
        // Capacity 2: exactly 2 queued, 8 dropped — and no publish blocked.
        assert_eq!(bus.dropped(), 8);
        assert_eq!(rx.dropped(), 8);
        let mut received = 0;
        while let Recv::Event(_) = rx.recv_timeout(Duration::from_millis(10)) {
            received += 1;
        }
        assert_eq!(received, 2);
    }

    #[test]
    fn receiver_sees_closed_after_all_buses_drop() {
        let (bus, rx) = EventBus::bounded(4);
        let clone = bus.clone();
        clone.publish(EventKind::Progress {
            phase: Phase::Extract,
            work_units: 7,
        });
        drop(bus);
        drop(clone);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Recv::Event(_)
        ));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Recv::Closed
        ));
    }

    #[test]
    fn progress_meter_publishes_on_stride_crossings_only() {
        let (bus, rx) = EventBus::bounded(64);
        let mut meter = ProgressMeter::new();
        // Non-work counters never count.
        meter.note(&bus, Phase::GuidedReduction, Counter::PeakTerms, 1 << 20);
        assert_eq!(meter.work(), 0);
        // Work accumulates; one snapshot per stride crossing, even when a
        // single increment jumps several strides.
        meter.note(
            &bus,
            Phase::GuidedReduction,
            Counter::ReductionSteps,
            PROGRESS_STRIDE - 1,
        );
        meter.note(&bus, Phase::GuidedReduction, Counter::ReductionSteps, 1);
        meter.note(
            &bus,
            Phase::GuidedReduction,
            Counter::ReductionSteps,
            3 * PROGRESS_STRIDE,
        );
        drop(bus);
        let mut marks = Vec::new();
        while let Recv::Event(ev) = rx.recv_timeout(Duration::from_millis(10)) {
            marks.push(ev.kind.work_units().unwrap());
        }
        assert_eq!(marks, vec![PROGRESS_STRIDE, 4 * PROGRESS_STRIDE]);
    }
}
